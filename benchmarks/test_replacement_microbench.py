"""Microbenchmark: victim selection is O(1), not a scan of the cache.

The seed implementation selected victims by scanning every clean resident
block (O(n) per eviction).  The event-driven policies keep intrusive lists
and answer ``victim()`` from the eviction end, so the number of list nodes
examined per eviction must stay a small constant as the cache grows.

``CacheStatistics.victim_scan_steps`` counts every node examined during
victim selection, which measures the claim exactly (and robustly, unlike
wall-clock timing): the steps-per-eviction ratio must neither exceed a
small constant nor grow with the cache size.
"""

import random

from benchmarks.conftest import BENCH_SEED, run_once
from repro.config import CacheConfig
from repro.core.cache import BlockCache
from repro.core.clock import VirtualClock
from repro.core.scheduler import Scheduler

#: policies whose victim selection must be O(1) amortised.
POLICIES = ("lru", "slru", "lru-k", "lfu", "clock", "2q", "arc")

#: cache sizes in blocks; spanning 16x so linear scans would show up.
CACHE_SIZES = (128, 512, 2048)

#: accesses per run (enough evictions at every size).
ACCESSES = 12_000


def drive_cache(policy: str, num_blocks: int) -> dict:
    """Zipf-skewed read-only traffic over ~4x more blocks than the cache."""
    scheduler = Scheduler(clock=VirtualClock(), seed=BENCH_SEED)
    config = CacheConfig(size_bytes=num_blocks * 4096, block_size=4096, replacement=policy)
    cache = BlockCache(scheduler, config, with_data=False)
    rng = random.Random(BENCH_SEED)
    population = 4 * num_blocks

    def body():
        for _ in range(ACCESSES):
            # Simple skew: half the references go to a hot eighth.
            if rng.random() < 0.5:
                block_no = rng.randrange(max(population // 8, 1))
            else:
                block_no = rng.randrange(population)
            if cache.lookup(0, block_no) is None:
                yield from cache.allocate(0, block_no)
        return cache.stats

    thread = scheduler.spawn(body)
    stats = scheduler.run_until_complete(thread)
    return {
        "evictions": stats.evictions,
        "scan_steps": stats.victim_scan_steps,
        "per_eviction": stats.victim_scan_steps / max(stats.evictions, 1),
    }


def run_all():
    return {
        policy: {size: drive_cache(policy, size) for size in CACHE_SIZES}
        for policy in POLICIES
    }


def test_victim_selection_is_o1(benchmark):
    results = run_once(benchmark, run_all)
    print()
    header = f"{'policy':<8}" + "".join(f"  steps/evict @{size:<5}" for size in CACHE_SIZES)
    print(header)
    print("-" * len(header))
    for policy, by_size in results.items():
        print(
            f"{policy:<8}"
            + "".join(f"  {by_size[size]['per_eviction']:>12.2f}    " for size in CACHE_SIZES)
        )
    for policy, by_size in results.items():
        for size, stats in by_size.items():
            assert stats["evictions"] > 1000, (policy, size)
            # A scanning implementation would examine ~size/2 nodes per
            # eviction (64+ at the smallest size); O(1) selection stays
            # within a small constant at every size.
            assert stats["per_eviction"] < 4.0, (policy, size)
        # And the cost must not grow with the cache: 16x more blocks may
        # not even double the examined nodes per eviction.
        smallest = by_size[CACHE_SIZES[0]]["per_eviction"]
        largest = by_size[CACHE_SIZES[-1]]["per_eviction"]
        assert largest < 2.0 * smallest + 1.0, policy
