"""Policy comparison across access patterns: hotset, zipf, scan, loop.

The replacement ablation replays one skewed workload; this benchmark runs
the interesting policies against the four synthetic access patterns of
:mod:`repro.patsy.workload` and prints a pattern x policy hit-rate matrix.
The patterns are chosen to stress different policy properties:

* ``hotset`` — plain skew; every reasonable policy does fine,
* ``zipf``   — heavier tail than hotset; frequency information helps,
* ``scan``   — hot-set reuse interleaved with one-shot sweeps; ghost-list
  policies (ARC, 2Q) resist the pollution,
* ``loop``   — cyclic reuse larger than the cache; LRU's pathological
  case (random replacement famously degrades more gracefully).
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.config import CacheConfig, SimulationConfig, small_test_config
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import ACCESS_PATTERNS, WorkloadProfile, generate_workload
from repro.units import KB

POLICIES = ("lru", "random", "slru", "clock", "2q", "arc")


def make_profile(pattern: str) -> WorkloadProfile:
    return WorkloadProfile(
        name=f"policy-comparison-{pattern}",
        duration=180.0,
        num_clients=3,
        mean_think_time=0.8,
        read_fraction=0.9,
        initial_files=60,
        hot_set_size=8,
        hot_read_fraction=0.7,
        mean_file_size=16 * KB,
        large_file_fraction=0.0,
        access_pattern=pattern,
    )


def run_pattern(pattern: str) -> dict:
    rates = {}
    trace = generate_workload(make_profile(pattern), seed=BENCH_SEED)
    for policy in POLICIES:
        base = small_test_config(seed=BENCH_SEED)
        config = SimulationConfig(
            cache=CacheConfig(size_bytes=40 * 4096, replacement=policy),
            flush=base.flush,
            layout=base.layout,
            host=base.host,
            seed=BENCH_SEED,
            report_interval=base.report_interval,
        )
        simulator = PatsySimulator(config)
        result = simulator.replay(trace)
        rates[policy] = result.cache_stats["hit_rate"]
    return rates


def run_all():
    return {pattern: run_pattern(pattern) for pattern in ACCESS_PATTERNS}


def test_policy_comparison_across_patterns(benchmark):
    matrix = run_once(benchmark, run_all)
    print()
    header = f"{'pattern':<8}" + "".join(f"{policy:>9}" for policy in POLICIES)
    print(header)
    print("-" * len(header))
    for pattern, rates in matrix.items():
        print(f"{pattern:<8}" + "".join(f"{rates[p] * 100:>8.1f}%" for p in POLICIES))
    # Every pattern/policy combination completes and measures something.
    for pattern, rates in matrix.items():
        assert set(rates) == set(POLICIES)
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())
    # The skewed patterns must show real caching at this cache size.
    assert max(matrix["hotset"].values()) > 0.10
    assert max(matrix["zipf"].values()) > 0.10
