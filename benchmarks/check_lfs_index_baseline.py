#!/usr/bin/env python3
"""Perf-smoke regression gate for the LFS segment-index benchmark.

Compares the freshly generated ``BENCH_lfs_index.json`` against the
committed ``benchmarks/baseline_lfs_index.json``.  Every gated metric is
deterministic — simulated (virtual-clock) latencies and structural disk
read / candidate counters under a fixed seed — so unlike the replay gate
the tolerance here only covers deliberate workload retuning, not host
noise:

* mount with the index on must stay a constant number of disk reads
  (checkpoint + superblock), independent of segment count,
* the cleaner's candidate set must stay bounded at every sweep size,
* the cold-read median speedup (index off p50 / index on p50) must stay
  within ``tolerance`` of the committed baseline,
* the index-on run must keep issuing fewer disk reads than index-off,
* the in-core index footprint must stay under the cache-budget cap.

Exits non-zero on regression.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_lfs_index.json"
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_lfs_index.json"


def main() -> int:
    report = json.loads(RESULT_PATH.read_text())
    baseline = json.loads(BASELINE_PATH.read_text())
    tolerance = float(baseline.get("tolerance", 0.25))
    failures = []

    def check(label: str, ok: bool, detail: str) -> None:
        verdict = "ok" if ok else "REGRESSION"
        print(f"{label}: {detail} -> {verdict}")
        if not ok:
            failures.append(f"{label}: {detail}")

    mount_cap = int(baseline["mount_disk_reads_index_on"])
    for entry in report["mount"]:
        reads = entry["index_on"]["disk_reads"]
        check(
            f"mount reads ({entry['non_free_segments']} segments)",
            reads <= mount_cap,
            f"{reads} disk reads with index on (cap {mount_cap})",
        )

    candidate_cap = int(baseline["cleaner_candidate_bound"])
    for entry in report["cleaner_scan"]:
        considered = entry["index_on"]["candidates_per_choose"]
        check(
            f"cleaner candidates ({entry['sealed_segments']} segments)",
            considered <= candidate_cap,
            f"{considered} candidates/choose with index on (cap {candidate_cap})",
        )

    cold = report["cold_read"]
    on_p50 = cold["index_on"]["latency"]["p50"]
    off_p50 = cold["index_off"]["latency"]["p50"]
    speedup = off_p50 / on_p50 if on_p50 else float("inf")
    floor = float(baseline["cold_read_p50_speedup"]) * (1.0 - tolerance)
    check(
        "cold-read p50 speedup",
        speedup >= floor,
        f"{speedup:.2f}x vs baseline {baseline['cold_read_p50_speedup']}x "
        f"(floor {floor:.2f}x, tolerance {tolerance:.0%})",
    )

    read_ratio = cold["index_on"]["disk_reads"] / max(
        1, cold["index_off"]["disk_reads"]
    )
    ratio_cap = float(baseline["cold_read_disk_read_ratio"]) * (1.0 + tolerance)
    check(
        "cold-read disk reads",
        read_ratio <= min(ratio_cap, 1.0),
        f"on/off ratio {read_ratio:.3f} (cap {min(ratio_cap, 1.0):.3f})",
    )

    fraction = cold["index_on"]["index_fraction_of_cache"]
    fraction_cap = float(baseline["index_fraction_of_cache_max"])
    check(
        "index footprint",
        fraction <= fraction_cap,
        f"{fraction:.4f} of cache budget (cap {fraction_cap})",
    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
