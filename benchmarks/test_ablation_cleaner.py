"""Ablation: greedy vs cost-benefit cleaning on hot-and-cold data.

Sprite LFS's case for cost-benefit cleaning (Rosenblum & Ousterhout §5) is
a *hot-and-cold* workload: a small fraction of the data takes most of the
writes while the rest sits still.  Greedy always cleans the emptiest
segment — which is usually a hot segment whose remaining live blocks were
about to die anyway, so it copies data just ahead of its overwrite and
must come back again.  Cost-benefit weighs utilisation against age
(``(1-u) * (1 + age/age_scale) / (1+u)``): cold segments get cleaned once
at moderate utilisation and then stay compact, which lowers the blocks
copied per new block written (the cleaner's write amplification).

This benchmark reproduces that divergence on a real (byte-moving) LFS:
~20% hot blocks taking 90% of the writes, interleaved with cold data so
segments mix both, under continuous space pressure.  Cost-benefit must
measurably beat greedy on write amplification — the ROADMAP open item.
"""

from __future__ import annotations

import random

from benchmarks.conftest import run_once
from repro.core.blocks import CacheBlock
from repro.core.clock import VirtualClock
from repro.core.inode import FileKind
from repro.core.scheduler import Scheduler
from repro.core.storage.cleaner import CleanerDaemon, make_cleaner
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import LocalVolume
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB

SEED = 1
FILE_BLOCKS = 220
HOT_FRACTION = 0.2
HOT_WRITE_PROB = 0.9
ROUNDS = 400
BATCH = 4


def drive(scheduler, target, *args):
    return scheduler.run_until_complete(scheduler.spawn(target, *args))


def payload_block():
    return CacheBlock(0, 4 * KB, with_data=True)


def run_cleaner_experiment(policy_name: str) -> dict:
    rng = random.Random(SEED)
    scheduler = Scheduler(clock=VirtualClock(), seed=SEED)
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=2 * MB)
    volume = LocalVolume([driver], block_size=4 * KB)
    layout = LogStructuredLayout(
        scheduler, volume, block_size=4 * KB, segment_blocks=8, simulated=False
    )
    drive(scheduler, layout.format)
    drive(scheduler, layout.mount)
    daemon = CleanerDaemon(
        scheduler, layout, make_cleaner(policy_name), low_water=0.22, high_water=0.32
    )
    inode = layout.allocate_inode(FileKind.REGULAR)
    hot_count = int(FILE_BLOCKS * HOT_FRACTION)

    def sleep(seconds: float):
        def body():
            yield from scheduler.sleep(seconds)

        drive(scheduler, body)

    # Initial load: every block once, in shuffled order so segments mix hot
    # and cold data (the condition under which cleaning has to copy).
    order = list(range(FILE_BLOCKS))
    rng.shuffle(order)
    for index in range(0, FILE_BLOCKS, BATCH):
        drive(
            scheduler,
            layout.write_file_blocks,
            inode,
            [(bn, payload_block()) for bn in order[index : index + BATCH]],
        )
    sleep(20.0)

    new_blocks = 0
    for _round in range(ROUNDS):
        chosen = set()
        for _ in range(BATCH):
            if rng.random() < HOT_WRITE_PROB:
                chosen.add(rng.randrange(hot_count))
            else:
                chosen.add(hot_count + rng.randrange(FILE_BLOCKS - hot_count))
        drive(
            scheduler,
            layout.write_file_blocks,
            inode,
            [(bn, payload_block()) for bn in sorted(chosen)],
        )
        new_blocks += len(chosen)
        sleep(1.0)
        if layout.free_segment_fraction < daemon.low_water:
            drive(scheduler, daemon.clean_until, daemon.high_water)

    return {
        "policy": policy_name,
        "segments_cleaned": daemon.segments_cleaned,
        "blocks_copied": daemon.blocks_copied,
        "new_blocks": new_blocks,
        "write_amplification": daemon.blocks_copied / max(new_blocks, 1),
        "free_fraction": layout.free_segment_fraction,
    }


def run_both():
    return {name: run_cleaner_experiment(name) for name in ("greedy", "cost-benefit")}


def test_cost_benefit_beats_greedy_on_hot_and_cold_data(benchmark):
    results = run_once(benchmark, run_both)
    print()
    for name, stats in results.items():
        print(
            f"{name:>14}: cleaned={stats['segments_cleaned']:3d} segments, "
            f"copied={stats['blocks_copied']:4d} live blocks for "
            f"{stats['new_blocks']} new -> write amp {stats['write_amplification']:.3f}"
        )
    greedy = results["greedy"]
    cost_benefit = results["cost-benefit"]
    # Both must have survived the pressure loop with the cleaner working.
    assert greedy["segments_cleaned"] > 0 and cost_benefit["segments_cleaned"] > 0
    assert greedy["free_fraction"] > 0.05 and cost_benefit["free_fraction"] > 0.05
    # The divergence the Sprite model predicts: cost-benefit copies
    # measurably fewer live blocks per new block written (>= 5% here;
    # observed ~10-23% across seeds).
    assert (
        cost_benefit["write_amplification"] < greedy["write_amplification"] * 0.95
    ), f"no divergence: {results}"
