"""Figure 4: cumulative latency distribution, Sprite trace 5 (large writes + reads/stats)."""

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.analysis.report import format_latency_cdf_table, format_policy_comparison
from repro.patsy.experiments import run_policy_comparison


def test_fig4_trace_5_latency_cdf(benchmark):
    results = run_once(
        benchmark,
        run_policy_comparison,
        "5",
        trace_scale=BENCH_TRACE_SCALE,
        seed=BENCH_SEED,
    )
    latencies = {name: result.latency.latencies() for name, result in results.items()}
    print()
    print(format_policy_comparison(results, "5 (Figure 4)"))
    print()
    print(format_latency_cdf_table(latencies))

    ups = results["ups"]
    write_delay = results["write-delay"]
    whole = results["nvram-whole-file"]
    partial = results["nvram-partial-file"]
    # Paper shape for trace 5: write-saving still avoids the writes, but its
    # latency advantage narrows (the cache fills with dirty data and read hit
    # rates drop), and the NVRAM again forces extra writes.
    assert ups.blocks_written_to_disk == 0
    assert whole.blocks_written_to_disk >= write_delay.blocks_written_to_disk * 0.8
    assert whole.mean_latency <= partial.mean_latency
    assert ups.cache_stats["hit_rate"] <= write_delay.cache_stats["hit_rate"] + 0.02
