"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation artefacts
(Figures 2-5) or an ablation called out in DESIGN.md.  The heavy work is a
full trace-driven simulation, so each benchmark runs one round via
``benchmark.pedantic`` and prints the regenerated table/figure so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's numbers in
one go.  ``BENCH_TRACE_SCALE`` trims the synthetic traces so a full
benchmark run stays in the minutes range.
"""

from __future__ import annotations

import os

#: fraction of the full synthetic trace replayed by the benchmarks.
#: Overridable via the environment so CI can run a reduced smoke pass
#: (e.g. ``BENCH_TRACE_SCALE=0.25``) while local runs keep the default.
BENCH_TRACE_SCALE = float(os.environ.get("BENCH_TRACE_SCALE", "0.4"))

#: seed shared by every benchmark run (results are deterministic).
BENCH_SEED = 2


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
