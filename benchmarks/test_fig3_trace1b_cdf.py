"""Figure 3: cumulative latency distribution, Sprite trace 1b (large parallel writes)."""

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.analysis.report import format_latency_cdf_table, format_policy_comparison
from repro.patsy.experiments import run_policy_comparison


def test_fig3_trace_1b_latency_cdf(benchmark):
    results = run_once(
        benchmark,
        run_policy_comparison,
        "1b",
        trace_scale=BENCH_TRACE_SCALE,
        seed=BENCH_SEED,
    )
    latencies = {name: result.latency.latencies() for name, result in results.items()}
    print()
    print(format_policy_comparison(results, "1b (Figure 3)"))
    print()
    print(format_latency_cdf_table(latencies))

    ups = results["ups"]
    write_delay = results["write-delay"]
    whole = results["nvram-whole-file"]
    partial = results["nvram-partial-file"]
    # Paper shape for 1b: the NVRAM becomes the bottleneck — the buffer drains
    # dirty data before deletes can absorb it, so the NVRAM systems write at
    # least as much as the 30-second baseline and save far less than UPS,
    # while the UPS system still avoids writes entirely.
    assert ups.blocks_written_to_disk == 0
    assert whole.blocks_written_to_disk >= write_delay.blocks_written_to_disk * 0.8
    assert whole.write_savings_blocks <= ups.write_savings_blocks
    assert ups.mean_latency <= write_delay.mean_latency * 1.10
    assert whole.mean_latency <= partial.mean_latency
