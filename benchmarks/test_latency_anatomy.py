"""Latency anatomy (Section 5.1 discussion of Figures 2-4).

"All operations that complete within 2-milliseconds are serviced from the
file-system caches.  The 2-milliseconds boundary is the minimal latency when
a request is serviced by the disk.  The period up to 17-milliseconds
represents the time waiting for the rotation on disk (HP97560 disks spin at
4002 rpm) ... The periods larger than 17-milliseconds are those when the
disk queues were longer than one entry or when the disk required head and/or
cylinder switches."
"""

from benchmarks.conftest import run_once
from repro.config import small_test_config
from repro.patsy.diskspec import HP97560
from repro.patsy.simulator import PatsySimulator
from repro.patsy.traces import TraceRecord
from repro.units import KB


def build_probe_trace():
    records = []
    # Cold reads of distinct files: each pays seek + rotation.
    for i in range(40):
        records.append(TraceRecord(i * 0.5, 0, "read", f"/cold/f{i:03d}", offset=0, size=4 * KB))
    # Warm re-reads: served from the file-system cache.
    for i in range(40):
        records.append(
            TraceRecord(25.0 + i * 0.5, 0, "read", f"/cold/f{i:03d}", offset=0, size=4 * KB)
        )
    return records


def run_probe():
    config = small_test_config()
    simulator = PatsySimulator(config)
    return simulator.replay(build_probe_trace(), trace_name="latency-anatomy")


def test_latency_anatomy(benchmark):
    result = run_once(benchmark, run_probe)
    latencies = result.latency.latencies("read")
    cold, warm = latencies[:40], latencies[40:]
    rotation = HP97560.rotation_time  # ~15 ms

    cache_fraction = sum(1 for value in warm if value < 0.002) / len(warm)
    cold_mean = sum(cold) / len(cold)
    print()
    print(f"cache-served reads under 2 ms : {cache_fraction * 100:.1f}%")
    print(f"mean cold read latency        : {cold_mean * 1000:.2f} ms")
    print(f"one full rotation             : {rotation * 1000:.2f} ms")

    # Cache hits sit below the 2 ms boundary; cold reads sit between the
    # controller overhead and roughly one rotation plus a long seek.
    assert cache_fraction >= 0.95
    assert 0.002 < cold_mean < rotation + 0.03
    assert max(cold) <= 4 * rotation
