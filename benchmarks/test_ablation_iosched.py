"""Ablation: disk-queue scheduling policy (FCFS vs. C-LOOK vs. SCAN).

The production driver uses C-LOOK (Section 3); this ablation shows why —
under a random-access load with a deep queue, positional ordering beats
first-come-first-served on total seek distance and mean response time.
"""

import random

from benchmarks.conftest import run_once
from repro.core.iosched import make_io_scheduler
from repro.core.scheduler import Scheduler
from repro.core.clock import VirtualClock
from repro.patsy.bus import ScsiBus
from repro.patsy.diskspec import HP97560
from repro.patsy.simdisk import SimulatedDisk
from repro.patsy.simdriver import SimulatedDiskDriver

NUM_REQUESTS = 150


def run_policy(policy_name: str) -> dict:
    scheduler = Scheduler(clock=VirtualClock(), seed=9)
    bus = ScsiBus(scheduler)
    disk = SimulatedDisk(scheduler, HP97560, bus)
    driver = SimulatedDiskDriver(
        scheduler, disk, bus, io_scheduler=make_io_scheduler(policy_name)
    )
    rng = random.Random(42)
    sectors = [rng.randrange(0, disk.num_sectors - 64) for _ in range(NUM_REQUESTS)]

    def client(sector):
        yield from driver.read(sector, 8)

    threads = [scheduler.spawn(client, sector) for sector in sectors]
    for thread in threads:
        scheduler.run_until_complete(thread)
    return {
        "mean_response": driver.stats.mean_response_time(),
        "total_seek_time": disk.stats.total_seek_time,
        "makespan": scheduler.now,
    }


def run_all_policies():
    return {name: run_policy(name) for name in ("fcfs", "clook", "scan", "cscan", "look")}


def test_ablation_io_scheduler(benchmark):
    results = run_once(benchmark, run_all_policies)
    print()
    for name, stats in results.items():
        print(
            f"{name:>6}: mean response={stats['mean_response'] * 1000:7.2f} ms  "
            f"total seek={stats['total_seek_time'] * 1000:8.1f} ms  "
            f"makespan={stats['makespan'] * 1000:8.1f} ms"
        )
    # Positional scheduling (C-LOOK, the production policy) spends less time
    # seeking than FCFS under a deep random queue.
    assert results["clook"]["total_seek_time"] < results["fcfs"]["total_seek_time"]
    assert results["clook"]["makespan"] <= results["fcfs"]["makespan"] * 1.02
