"""Recovery cost: WAL replay time vs journal length, group commit on/off.

Two measurements around the durable metadata tier:

1. **Replay** — recover a routing table from journals of growing length,
   with and without a manifest checkpoint folding the log in first.  The
   charged (simulated) replay time must grow with the journal and collapse
   to near zero once the manifest absorbs it — the trade-off the
   checkpoint exists for.
2. **Group commit** — journal the same stream of flip records with
   batching on (default knobs) and off (a device write per record).  The
   batched journal must reach durability in far fewer, larger commits and
   correspondingly less charged device time.

Results land in ``BENCH_recovery.json`` at the repository root so CI can
track recovery cost per PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.config import ClusterConfig
from repro.core.cluster.placement import ClusterPlacement
from repro.core.metadata import (
    DurableStore,
    ManifestStore,
    MemoryMetadataDevice,
    MetadataTier,
    WriteAheadLog,
)
from repro.core.metadata.wal import REC_FLIP
from repro.core.scheduler import Scheduler
from repro.core.storage.array import HashPlacement

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"

NODES = 4
VOLUMES_PER_NODE = 2
NUM_VOLUMES = NODES * VOLUMES_PER_NODE

#: how many migrations each journal describes (4 records per migration).
MIGRATION_STEPS = tuple(
    max(16, int(n * max(BENCH_TRACE_SCALE, 0.1) / 0.4)) for n in (250, 1000, 4000)
)


def make_tier(store, group_commit=True):
    config = ClusterConfig(nodes=NODES)
    scheduler = Scheduler(seed=BENCH_SEED)
    placement = ClusterPlacement(HashPlacement(NUM_VOLUMES), NODES, VOLUMES_PER_NODE)
    device = MemoryMetadataDevice(
        scheduler,
        store=store,
        latency=config.metadata_latency,
        bandwidth=config.metadata_bandwidth,
    )
    wal = WriteAheadLog(
        scheduler,
        device,
        commit_records=config.wal_commit_records,
        commit_bytes=config.wal_commit_bytes,
        commit_interval=0.0,  # no daemon: the benchmark drives every sync
        group_commit=group_commit,
    )
    manifest_store = ManifestStore(scheduler, device)
    tier = MetadataTier(scheduler, placement, wal, manifest_store, config)
    return tier, placement, scheduler


def drive(scheduler, generator_fn, *args):
    thread = scheduler.spawn(generator_fn, *args)
    return scheduler.run_until_complete(thread)


def journal_migrations(tier, scheduler, count):
    """Journal ``count`` migrations (BEGIN/FLIP/COMMIT/END) the way the
    rebalancer does: buffered appends, a forced sync at each COMMIT."""

    def body():
        for i in range(count):
            file_id = 2 + i
            target = i % NUM_VOLUMES
            tier.journal_begin(file_id, (target + 1) % NUM_VOLUMES, target)
            tier.placement.flip(file_id, target)
            tier.journal_flip(file_id, target)
            yield from tier.journal_commit(file_id)
            tier.journal_end(file_id)
        yield from tier.wal.sync()

    drive(scheduler, body)


def replay_row(migrations, checkpointed):
    store = DurableStore()
    writer, _, write_scheduler = make_tier(store)
    journal_migrations(writer, write_scheduler, migrations)
    if checkpointed:
        drive(write_scheduler, writer.checkpoint)

    reader, placement, scheduler = make_tier(store)
    started_sim = scheduler.now
    started_wall = time.perf_counter()
    drive(scheduler, reader.recover)
    wall_ms = (time.perf_counter() - started_wall) * 1e3
    return {
        "migrations": migrations,
        "checkpointed": checkpointed,
        "wal_bytes": len(store.wal),
        "replayed_records": reader.replayed_records,
        "applied_flips": reader.applied_flips,
        "displaced_files": placement.displaced_files,
        "replay_time_simulated": scheduler.now - started_sim,
        "replay_wall_ms": wall_ms,
    }


def commit_row(group_commit, records):
    store = DurableStore()
    tier, _, scheduler = make_tier(store, group_commit=group_commit)
    wal = tier.wal

    def body():
        for i in range(records):
            wal.append(REC_FLIP, 2 + i, i % NUM_VOLUMES)
            yield from wal.maybe_sync()
        yield from wal.sync()

    drive(scheduler, body)
    return {
        "group_commit": group_commit,
        "records": records,
        "commits": wal.commits,
        "bytes_committed": wal.bytes_committed,
        "journal_time_simulated": scheduler.now,
    }


def run_recovery_benchmarks():
    replay_rows = [replay_row(n, checkpointed=False) for n in MIGRATION_STEPS]
    checkpoint_rows = [replay_row(MIGRATION_STEPS[-1], checkpointed=True)]
    records = 4 * MIGRATION_STEPS[-1]
    commit_rows = [commit_row(True, records), commit_row(False, records)]
    return replay_rows, checkpoint_rows, commit_rows


def test_recovery_replay_and_group_commit(benchmark):
    replay_rows, checkpoint_rows, commit_rows = run_once(
        benchmark, run_recovery_benchmarks
    )
    print()
    header = (
        f"{'migrations':>10} {'ckpt':>5} {'wal-bytes':>10} {'replayed':>9} "
        f"{'sim-replay':>11} {'wall':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in replay_rows + checkpoint_rows:
        print(
            f"{row['migrations']:>10} {str(row['checkpointed']):>5} "
            f"{row['wal_bytes']:>10} {row['replayed_records']:>9} "
            f"{row['replay_time_simulated'] * 1000:>9.2f}ms {row['replay_wall_ms']:>7.2f}ms"
        )
    print()
    for row in commit_rows:
        label = "group-commit" if row["group_commit"] else "per-record"
        print(
            f"  {label:<13} records={row['records']} commits={row['commits']} "
            f"journal-time={row['journal_time_simulated'] * 1000:.2f}ms"
        )

    # Replay cost grows with the journal...
    sim_times = [row["replay_time_simulated"] for row in replay_rows]
    assert sim_times == sorted(sim_times) and sim_times[0] < sim_times[-1]
    for row in replay_rows:
        assert row["applied_flips"] > 0 and row["replayed_records"] >= row["migrations"]
    # ...and the manifest checkpoint bounds it: nothing left to replay.
    folded = checkpoint_rows[0]
    assert folded["replayed_records"] == 0
    assert folded["replay_time_simulated"] < sim_times[-1]
    assert folded["displaced_files"] == replay_rows[-1]["displaced_files"]
    # Group commit amortises the per-commit latency over whole batches.
    grouped, per_record = commit_rows
    assert grouped["commits"] < per_record["commits"] / 4
    assert grouped["journal_time_simulated"] < per_record["journal_time_simulated"]

    RESULT_PATH.write_text(
        json.dumps(
            {
                "replay": replay_rows,
                "checkpointed": checkpoint_rows,
                "group_commit": commit_rows,
            },
            indent=2,
        )
        + "\n"
    )
