"""Storage-array scaling: aggregate throughput from 1 to 10 disks.

The paper's evaluation machine is a Sun 4/280 with ten HP 97560 disks on
three SCSI buses (Section 5.1).  This benchmark drives a deliberately
disk-bound workload (an op rate far above what one 1996 disk can serve)
through growing slices of that machine — 1, 2, 5 and the full 10 disks of
the ``sun4_280`` preset — and measures aggregate throughput: operations
divided by the simulated time the run needed to absorb them.  With the
storage array routing files over per-volume layouts, cache shards and
flush daemons, adding spindles must increase throughput monotonically;
the run also prints the per-volume table for the full machine.

Results land in ``BENCH_array.json`` at the repository root so CI can
track the scaling curve per PR.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.analysis.report import format_volume_table
from repro.config import sun4_280_config
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_array.json"

#: (disks, volumes, buses) steps up to the full Sun 4/280 complement.
STEPS = ((1, 1, 1), (2, 2, 1), (5, 5, 2), (10, 5, 3))


def scaling_workload():
    profile = WorkloadProfile(
        name="array-scaling",
        duration=60.0 * max(BENCH_TRACE_SCALE, 0.1) / 0.4,
        num_clients=12,
        read_fraction=0.7,
        stat_fraction=1.0,
        stat_burst=1,
        initial_files=300,
        mean_file_size=32 * KB,
        large_file_fraction=0.05,
        large_file_size=256 * KB,
        mean_think_time=0.25,
        intra_op_gap=0.01,
        overwrite_fraction=0.2,
        delete_fraction=0.1,
        hot_read_fraction=0.2,
        hot_set_size=20,
    )
    return generate_workload(profile, seed=BENCH_SEED)


def run_scaling():
    trace = scaling_workload()
    rows = []
    last_result = None
    for disks, volumes, buses in STEPS:
        config = sun4_280_config(
            scale=0.001, seed=BENCH_SEED, volumes=volumes, num_disks=disks, buses=buses
        )
        result = PatsySimulator(config).replay(trace, trace_name=f"{disks}-disk")
        rows.append(
            {
                "disks": disks,
                "volumes": volumes,
                "buses": buses,
                "operations": result.operations,
                "errors": result.errors,
                "simulated_time": result.simulated_time,
                "throughput_ops_per_s": result.operations / result.simulated_time,
                "mean_latency": result.mean_latency,
                "cache_hit_rate": result.cache_stats["hit_rate"],
            }
        )
        last_result = result
    return rows, last_result


def test_array_scaling_throughput_monotonic(benchmark):
    rows, full_machine = run_once(benchmark, run_scaling)
    print()
    header = f"{'disks':>6} {'vols':>5} {'buses':>6} {'sim-time':>10} {'ops/s':>9} {'mean-lat':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['disks']:>6} {row['volumes']:>5} {row['buses']:>6} "
            f"{row['simulated_time']:>9.1f}s {row['throughput_ops_per_s']:>9.1f} "
            f"{row['mean_latency'] * 1000:>8.1f}ms"
        )
    print()
    print(format_volume_table(full_machine.volume_stats, title="sun4_280 (10 disks, 5 volumes)"))

    assert all(row["errors"] == 0 for row in rows)
    # The contract: aggregate throughput grows monotonically from 1 to 10
    # disks — each step must add real parallel service, not noise.
    throughputs = [row["throughput_ops_per_s"] for row in rows]
    for slower, faster in zip(throughputs, throughputs[1:]):
        assert faster > slower * 1.1, f"scaling stalled: {throughputs}"
    # Per-volume stats exist for the full machine (5 volumes, 2 disks each).
    per_volume = full_machine.volume_stats["per_volume"]
    assert len(per_volume) == 5
    assert all(len(entry["disks"]) == 2 for entry in per_volume.values())

    RESULT_PATH.write_text(json.dumps({"steps": rows}, indent=2) + "\n")
