"""Ablation (Section 5.2 lesson): synchronous vs. asynchronous cache flushing.

"In our original system, the thread that needed a cache block was also the
one that initiated a cache flush and waited for the flush to complete ...
The obvious solution was to make the flush policy an a-synchronous
operation."  This benchmark replays the same write-heavy workload with the
flush daemon enabled and disabled and compares the latency experienced by
the foreground operations.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.config import FlushConfig, small_test_config
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB


PROFILE = WorkloadProfile(
    name="flush-ablation",
    duration=120.0,
    num_clients=4,
    mean_think_time=1.0,
    read_fraction=0.4,
    mean_file_size=32 * KB,
    delete_fraction=0.2,
    overwrite_fraction=0.2,
)


def run_variant(asynchronous: bool):
    config = small_test_config(seed=BENCH_SEED)
    config = config.with_flush(FlushConfig(policy="ups", asynchronous=asynchronous))
    simulator = PatsySimulator(config)
    records = generate_workload(PROFILE, seed=BENCH_SEED)
    return simulator.replay(records, trace_name=f"async={asynchronous}")


def run_both():
    return {"synchronous": run_variant(False), "asynchronous": run_variant(True)}


def test_ablation_asynchronous_flush(benchmark):
    results = run_once(benchmark, run_both)
    sync_result = results["synchronous"]
    async_result = results["asynchronous"]
    print()
    for name, result in results.items():
        print(
            f"{name:>12}: mean={result.mean_latency * 1000:.3f} ms  "
            f"p95={result.latency.percentile(0.95) * 1000:.3f} ms  "
            f"allocation stalls={result.cache_stats['allocation_stalls']}"
        )
    assert sync_result.errors == 0 and async_result.errors == 0
    # Under UPS the daemon runs strictly on demand (daemon_low_water=0), so
    # in this cache-exhausted regime every stalled allocation pays a daemon
    # wakeup round trip and the asynchronous variant carries a modest
    # constant overhead over flushing inline.  The bound guards against
    # that overhead regressing into something structural.
    assert async_result.mean_latency <= sync_result.mean_latency * 1.25
