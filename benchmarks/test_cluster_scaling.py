"""Cluster scaling and skew rebalancing: throughput from 1 to 4 nodes.

Two experiments above the storage array:

1. **Scaling** — a disk-bound workload (op rate far above what one node's
   spindles can serve) replayed over 1, 2, 3 and 4 nodes of two disks /
   two volumes each.  Node 0 is the front end; every other node's volumes
   are reached over simulated network links (per-NIC queueing, bandwidth,
   latency).  Aggregate throughput must grow monotonically: the spindles
   gained must beat the network latency paid.

2. **Rebalancing** — the same cluster under a pathologically *skewed*
   workload: every file lives in one directory, so directory-affinity
   placement piles the whole load onto one volume of one node.  With the
   skew monitor off the cluster performs like a single overloaded machine;
   with it on, hot files migrate online (copy-forward through the cache,
   atomic routing flip) and both throughput and tail latency must improve
   measurably.

Results land in ``BENCH_cluster.json`` at the repository root so CI can
track the scaling curve and the rebalancing win per PR.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.analysis.report import format_cluster_table
from repro.config import cluster_config
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"

NODE_STEPS = (1, 2, 3, 4)


def scaling_workload():
    profile = WorkloadProfile(
        name="cluster-scaling",
        duration=60.0 * max(BENCH_TRACE_SCALE, 0.1) / 0.4,
        num_clients=12,
        read_fraction=0.7,
        stat_fraction=1.0,
        stat_burst=1,
        initial_files=300,
        mean_file_size=32 * KB,
        large_file_fraction=0.05,
        large_file_size=256 * KB,
        mean_think_time=0.25,
        intra_op_gap=0.01,
        overwrite_fraction=0.2,
        delete_fraction=0.1,
        hot_read_fraction=0.2,
        hot_set_size=20,
    )
    return generate_workload(profile, seed=BENCH_SEED)


def skewed_workload():
    """Everything in one directory: directory-affinity placement turns the
    whole trace into single-volume load — the rebalancer's worst case."""
    profile = WorkloadProfile(
        name="cluster-skew",
        duration=60.0 * max(BENCH_TRACE_SCALE, 0.1) / 0.4,
        num_clients=12,
        read_fraction=0.75,
        stat_fraction=1.0,
        stat_burst=1,
        initial_files=120,
        directory_count=1,
        mean_file_size=32 * KB,
        mean_think_time=0.25,
        intra_op_gap=0.01,
        overwrite_fraction=0.2,
        delete_fraction=0.05,
        hot_read_fraction=0.4,
        hot_set_size=30,
    )
    return generate_workload(profile, seed=BENCH_SEED)


def _cluster(nodes: int, placement: str, rebalance: bool):
    config = cluster_config(
        nodes=nodes,
        scale=0.001,
        seed=BENCH_SEED,
        volumes_per_node=2,
        disks_per_node=2,
        buses_per_node=1,
        placement=placement,
        rebalance=rebalance,
    )
    if rebalance:
        config = replace(
            config,
            cluster=replace(
                config.cluster,
                rebalance_interval=2.0,
                imbalance_threshold=1.5,
                max_migrations_per_round=8,
            ),
        )
    return config


def _row(result, **extra):
    return dict(
        {
            "operations": result.operations,
            "errors": result.errors,
            "simulated_time": result.simulated_time,
            "throughput_ops_per_s": result.operations / result.simulated_time,
            "mean_latency": result.mean_latency,
            "p99_latency": result.latency.percentile(0.99),
        },
        **extra,
    )


def run_cluster_benchmarks():
    scaling_trace = scaling_workload()
    scaling_rows = []
    last_result = None
    for nodes in NODE_STEPS:
        config = _cluster(nodes, placement="hash", rebalance=False)
        result = PatsySimulator(config).replay(scaling_trace, trace_name=f"{nodes}-node")
        scaling_rows.append(_row(result, nodes=nodes))
        last_result = result

    skew_trace = skewed_workload()
    skew_rows = {}
    for rebalance in (False, True):
        config = _cluster(NODE_STEPS[-1], placement="directory", rebalance=rebalance)
        result = PatsySimulator(config).replay(skew_trace, trace_name="skew")
        label = "rebalance-on" if rebalance else "rebalance-off"
        extra = {"rebalance": rebalance}
        if rebalance:
            rebalancer = result.cluster_stats["rebalancer"]
            extra["migrations"] = rebalancer["migrations"]
            extra["blocks_copied"] = rebalancer["blocks_copied"]
        skew_rows[label] = (_row(result, **extra), result)
    return scaling_rows, skew_rows, last_result


def test_cluster_scaling_and_rebalancing(benchmark):
    scaling_rows, skew_rows, full_cluster = run_once(benchmark, run_cluster_benchmarks)
    print()
    header = f"{'nodes':>6} {'sim-time':>10} {'ops/s':>9} {'mean-lat':>10} {'p99':>10}"
    print(header)
    print("-" * len(header))
    for row in scaling_rows:
        print(
            f"{row['nodes']:>6} {row['simulated_time']:>9.1f}s "
            f"{row['throughput_ops_per_s']:>9.1f} {row['mean_latency'] * 1000:>8.1f}ms "
            f"{row['p99_latency'] * 1000:>8.1f}ms"
        )
    print()
    print(format_cluster_table(full_cluster.cluster_stats, title="4-node cluster (scaling run)"))
    print()
    off, off_result = skew_rows["rebalance-off"]
    on, on_result = skew_rows["rebalance-on"]
    print("skewed directory-affinity workload, 4 nodes:")
    for label, row in (("rebalance-off", off), ("rebalance-on", on)):
        print(
            f"  {label:<14} ops/s={row['throughput_ops_per_s']:>7.1f} "
            f"mean={row['mean_latency'] * 1000:>7.1f}ms p99={row['p99_latency'] * 1000:>8.1f}ms"
            + (f" migrations={row['migrations']}" if "migrations" in row else "")
        )
    print()
    print(format_cluster_table(on_result.cluster_stats, title="4-node cluster (rebalance on)"))

    assert all(row["errors"] == 0 for row in scaling_rows)
    assert off["errors"] == 0 and on["errors"] == 0
    # Contract 1: aggregate throughput grows monotonically from 1 to 4
    # nodes — each node's spindles must add real parallel service over the
    # network, not noise.
    throughputs = [row["throughput_ops_per_s"] for row in scaling_rows]
    for slower, faster in zip(throughputs, throughputs[1:]):
        assert faster > slower * 1.1, f"cluster scaling stalled: {throughputs}"
    # Contract 2: under skew, online rebalancing buys a measurable win on
    # *both* axes — throughput and tail latency.
    assert on["migrations"] > 0
    assert on["throughput_ops_per_s"] > off["throughput_ops_per_s"] * 1.2, (
        f"rebalancing did not lift throughput: {on['throughput_ops_per_s']:.1f} "
        f"vs {off['throughput_ops_per_s']:.1f}"
    )
    assert on["p99_latency"] < off["p99_latency"] * 0.8, (
        f"rebalancing did not cut the tail: {on['p99_latency']:.3f}s "
        f"vs {off['p99_latency']:.3f}s"
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "scaling": scaling_rows,
                "skew": {label: row for label, (row, _res) in skew_rows.items()},
            },
            indent=2,
        )
        + "\n"
    )
