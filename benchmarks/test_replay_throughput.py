"""Replay-pipeline throughput: streaming loader + constant-memory recorder
vs the pre-streaming (materialise-everything) pipeline on a 1M-op trace.

The measured pipeline is the measurement hot path of a trace replay: parse
every record of an on-disk trace, group it per client, feed every operation
into the latency recorder and produce the end-of-run summary (mean, p50,
p95, p99, per-operation means).  The *legacy* side reproduces the pre-PR
implementation verbatim — one ``OperationSample`` object per operation,
full-list sorts for every percentile; the *streaming* side is the current
code: tuple-parsing trace iteration into the log-bucketed
:class:`LatencyRecorder`.

Results land in ``BENCH_replay.json`` at the repository root so the
throughput trajectory is tracked from this PR on.  Asserted invariants:

* streaming throughput is at least 2x the legacy pipeline (typically >3x;
  the floor is conservative because the legacy side's million live sample
  objects make it very sensitive to ambient memory pressure, so the ratio
  swings with machine load — the absolute ops/s floor lives in
  ``check_replay_baseline.py``),
* recorder memory is O(1) in the trace length (retained sample objects are
  identical for a 100k-op and a 1M-op run),
* streaming summary statistics agree with the exact legacy ones within the
  2% bucket resolution.
"""

from __future__ import annotations

import gc
import json
import math
import os
import time
import tracemalloc
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.config import cluster_config
from repro.patsy.simulator import PatsySimulator
from repro.patsy.stats import LatencyRecorder
from repro.patsy.traces import TraceReader, iter_trace_tuples
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB

TRACE_OPS = 1_000_000
NUM_CLIENTS = 8
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_replay.json"

_OPS = ("open", "read", "read", "write", "stat", "write", "read", "close")
_BASE_LATENCY = {
    "open": 0.0021,
    "close": 0.0004,
    "read": 0.0043,
    "write": 0.0061,
    "stat": 0.0012,
}


def synthetic_latency(op: str, size: int, index: int) -> float:
    """Deterministic per-operation latency (no RNG in the timed loop)."""
    return _BASE_LATENCY[op] + (size & 4095) * 1e-8 + ((index * 2654435761) & 1023) * 2e-6


def write_trace(path: Path, operations: int) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("# repro-trace v1: timestamp\tclient\top\tpath\toffset\tsize\tpath2\n")
        chunk: list[str] = []
        for i in range(operations):
            op = _OPS[i & 7]
            chunk.append(
                f"{i * 0.001:.6f}\t{i % NUM_CLIENTS}\t{op}\t/data/f{i % 512}\t"
                f"{(i & 63) * 4096}\t{(i % 17) * 1024}\t"
            )
            if len(chunk) == 10_000:
                stream.write("\n".join(chunk) + "\n")
                chunk.clear()
        if chunk:
            stream.write("\n".join(chunk) + "\n")


# --------------------------------------------------------------------------- the pre-PR pipeline


class _LegacySample:
    __slots__ = ("start_time", "op", "latency", "client")

    def __init__(self, start_time, op, latency, client):
        self.start_time = start_time
        self.op = op
        self.latency = latency
        self.client = client


class _LegacyRecorder:
    """The pre-streaming LatencyRecorder, reproduced faithfully: one sample
    object per operation, percentiles by sorting the full latency list."""

    def __init__(self, report_interval: float = 900.0):
        self.report_interval = report_interval
        self.samples = []
        self.interval_reports = []
        self._interval_start = 0.0
        self._interval_samples = []

    def record(self, start_time, op, latency, client=0):
        sample = _LegacySample(start_time, op, latency, client)
        self.samples.append(sample)
        while start_time >= self._interval_start + self.report_interval:
            self._close_interval()
        self._interval_samples.append(sample)

    def finish(self):
        if self._interval_samples:
            self._close_interval()

    def _close_interval(self):
        samples = self._interval_samples
        latencies = [s.latency for s in samples]
        self.interval_reports.append(
            {
                "start": self._interval_start,
                "end": self._interval_start + self.report_interval,
                "operations": len(samples),
                "mean_latency": sum(latencies) / len(latencies) if latencies else 0.0,
            }
        )
        self._interval_samples = []
        self._interval_start += self.report_interval

    def latencies(self, op=None):
        if op is None:
            return [sample.latency for sample in self.samples]
        return [sample.latency for sample in self.samples if sample.op == op]

    def percentile(self, fraction, op=None):
        values = sorted(self.latencies(op))
        if not values:
            return 0.0
        index = min(int(math.ceil(fraction * len(values))) - 1, len(values) - 1)
        return values[max(index, 0)]

    def per_operation_means(self):
        ops = sorted({sample.op for sample in self.samples})
        means = {}
        for op in ops:
            values = self.latencies(op)
            means[op] = sum(values) / len(values) if values else 0.0
        return means

    def summary(self):
        values = self.latencies()
        return {
            "operations": len(self.samples),
            "mean_latency": sum(values) / len(values) if values else 0.0,
            "median_latency": self.percentile(0.5),
            "p95_latency": self.percentile(0.95),
            "p99_latency": self.percentile(0.99),
            "per_operation": self.per_operation_means(),
        }


def run_legacy_pipeline(trace_path: Path):
    """Materialise the trace, group per client, record, summarise — the
    pre-PR shape of ``load_trace`` + ``records_by_client`` + recorder."""
    with open(trace_path, "r", encoding="utf-8") as stream:
        records = list(TraceReader(stream))
    streams: dict[int, list] = {}
    for record in records:
        streams.setdefault(record.client, []).append(record)
    for stream_records in streams.values():
        stream_records.sort(key=lambda record: record.timestamp)
    recorder = _LegacyRecorder()
    index = 0
    for client in sorted(streams):
        for record in streams[client]:
            recorder.record(
                record.timestamp,
                record.op,
                synthetic_latency(record.op, record.size, index),
                client,
            )
            index += 1
    recorder.finish()
    summary = recorder.summary()
    return summary, len(recorder.samples)


def run_streaming_pipeline(trace_path: Path, max_ops: int | None = None):
    """Stream the trace straight into the constant-memory recorder."""
    recorder = LatencyRecorder()
    record = recorder.record
    index = 0
    for timestamp, client, op, _path, _offset, size, _path2 in iter_trace_tuples(trace_path):
        record(timestamp, op, synthetic_latency(op, size, index), client)
        index += 1
        if max_ops is not None and index >= max_ops:
            break
    recorder.finish()
    return recorder.summary(), recorder.retained_samples


def compare_pipelines(trace_path: Path):
    # Pause the cyclic GC for the timed sections: when this benchmark runs
    # late in the full suite the accumulated live heap makes collection
    # pauses dominate the streaming loop's steady tuple allocation, skewing
    # the ratio by tens of percent between runs.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        legacy_summary, legacy_retained = run_legacy_pipeline(trace_path)
        legacy_seconds = time.perf_counter() - start

        gc.collect()
        start = time.perf_counter()
        streaming_summary, streaming_retained = run_streaming_pipeline(trace_path)
        streaming_seconds = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()

    # O(1)-memory check: a 10x shorter replay retains exactly as many
    # verbatim sample objects as the full one.
    _, short_retained = run_streaming_pipeline(trace_path, max_ops=TRACE_OPS // 10)

    tracemalloc.start()
    run_streaming_pipeline(trace_path, max_ops=TRACE_OPS // 10)
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "trace_ops": legacy_summary["operations"],
        "legacy": {
            "seconds": round(legacy_seconds, 3),
            "ops_per_sec": round(legacy_summary["operations"] / legacy_seconds),
            "retained_sample_objects": legacy_retained,
            "p50_latency": legacy_summary["median_latency"],
            "p95_latency": legacy_summary["p95_latency"],
            "p99_latency": legacy_summary["p99_latency"],
        },
        "streaming": {
            "seconds": round(streaming_seconds, 3),
            "ops_per_sec": round(streaming_summary["operations"] / streaming_seconds),
            "retained_sample_objects": streaming_retained,
            "retained_at_tenth_length": short_retained,
            "peak_tracemalloc_bytes": traced_peak,
            "p50_latency": streaming_summary["median_latency"],
            "p95_latency": streaming_summary["p95_latency"],
            "p99_latency": streaming_summary["p99_latency"],
        },
        "speedup": round(legacy_seconds / streaming_seconds, 2),
        "legacy_summary": {k: v for k, v in legacy_summary.items() if k != "per_operation"},
        "streaming_summary": {
            k: v for k, v in streaming_summary.items() if k != "per_operation"
        },
    }


# --------------------------------------------------------------------------- parallel cluster replay

CLUSTER_NODES = 4
CLUSTER_CLIENTS = 8


def partitioned_cluster_workload():
    """A 4-node-partitionable trace: every client works inside its own
    ``/c{i}`` subtree, so per-node worker processes never share state."""
    merged = []
    for client in range(CLUSTER_CLIENTS):
        profile = WorkloadProfile(
            name=f"cluster-parallel-c{client}",
            duration=60.0 * max(BENCH_TRACE_SCALE, 0.1) / 0.4,
            num_clients=1,
            read_fraction=0.7,
            stat_fraction=1.0,
            stat_burst=1,
            initial_files=25,
            mean_file_size=32 * KB,
            large_file_fraction=0.05,
            large_file_size=256 * KB,
            mean_think_time=0.25,
            intra_op_gap=0.01,
            overwrite_fraction=0.2,
            delete_fraction=0.1,
            hot_read_fraction=0.2,
            hot_set_size=5,
        )
        for record in generate_workload(profile, seed=BENCH_SEED + client):
            merged.append(
                replace(
                    record,
                    client=client,
                    path=f"/c{client}{record.path}",
                    path2=f"/c{client}{record.path2}" if record.path2 else record.path2,
                )
            )
    merged.sort(key=lambda record: record.timestamp)
    return merged


def _cluster_replay_config(*, sharded_loop: bool, parallel: bool):
    config = cluster_config(
        nodes=CLUSTER_NODES,
        scale=0.001,
        seed=BENCH_SEED,
        volumes_per_node=2,
        disks_per_node=2,
        buses_per_node=1,
        placement="node",
        rebalance=False,
    )
    return replace(
        config,
        cluster=replace(
            config.cluster,
            client_entry="home",
            sharded_loop=sharded_loop,
            parallel=parallel,
        ),
    )


def _timed_replay(config, trace):
    gc.collect()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    result = PatsySimulator(config).replay(trace, trace_name="cluster-parallel")
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    return result, wall, cpu


def _cluster_leg(result, wall, cpu):
    return {
        "elapsed_seconds": round(wall, 3),
        "cpu_seconds": round(cpu, 3),
        "operations": result.operations,
        "errors": result.errors,
        "simulated_time": result.simulated_time,
        "mean_latency": result.mean_latency,
    }


def run_cluster_replay_benchmarks():
    """The three execution modes of the same 4-node replay.

    ``sequential`` is the single global event heap (node-merge policy),
    ``sharded`` the per-node sub-queues in one process (Stage A), and
    ``parallel`` one worker process per node (Stage B).  All three produce
    identical simulation results; the parallel leg additionally reports its
    critical path — the largest per-worker CPU time, i.e. the wall-clock
    the replay takes once every worker has its own core.  On boxes with
    fewer cores than nodes (``cpu_count`` is recorded alongside) the
    workers time-slice and elapsed wall-clock shows no win; the
    per-worker CPU seconds are scheduling-independent, so the critical
    path is the honest multi-core number either way.
    """
    trace = partitioned_cluster_workload()

    sequential, seq_wall, seq_cpu = _timed_replay(
        _cluster_replay_config(sharded_loop=False, parallel=False), trace
    )
    sharded, shard_wall, shard_cpu = _timed_replay(
        _cluster_replay_config(sharded_loop=True, parallel=False), trace
    )
    parallel, par_wall, par_cpu = _timed_replay(
        _cluster_replay_config(sharded_loop=True, parallel=True), trace
    )

    stats = parallel.parallel_stats
    critical_path = stats["critical_path_seconds"]
    section = {
        "nodes": CLUSTER_NODES,
        "trace_ops": len(trace),
        "cpu_count": os.cpu_count(),
        "sequential": _cluster_leg(sequential, seq_wall, seq_cpu),
        "sharded": _cluster_leg(sharded, shard_wall, shard_cpu),
        "parallel": dict(
            _cluster_leg(parallel, par_wall, par_cpu),
            workers=stats["workers"],
            worker_cpu_seconds={
                node: round(seconds, 3)
                for node, seconds in sorted(stats["worker_cpu_seconds"].items())
            },
            critical_path_seconds=round(critical_path, 3),
        ),
        "speedup_sharded": round(seq_cpu / shard_cpu, 2),
        "speedup_parallel_critical_path": round(seq_cpu / critical_path, 2),
    }
    return section, sequential, sharded, parallel


def test_parallel_cluster_replay(benchmark):
    section, sequential, sharded, parallel = run_once(
        benchmark, run_cluster_replay_benchmarks
    )

    # Merge the cluster section into BENCH_replay.json next to the pipeline
    # numbers (test_replay_throughput writes the base report first when the
    # whole directory runs; standalone runs update the committed file).
    report = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    report["cluster"] = section
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    for leg in ("sequential", "sharded", "parallel"):
        row = section[leg]
        print(
            f"{leg:<11} wall={row['elapsed_seconds']:>6.2f}s "
            f"cpu={row['cpu_seconds']:>6.2f}s "
            f"sim-time={row['simulated_time']:.2f}s ops={row['operations']}"
        )
    print(
        f"critical path (max worker cpu): "
        f"{section['parallel']['critical_path_seconds']:.2f}s on "
        f"{section['parallel']['workers']} workers (cpu_count={section['cpu_count']})"
    )
    print(
        f"speedup: sharded {section['speedup_sharded']}x, "
        f"parallel critical-path {section['speedup_parallel_critical_path']}x "
        f"-> {RESULT_PATH.name}"
    )

    # Unchanged simulated-time results across all three execution modes.
    # Beyond the recorder's exact-replay window the merged mean is a sum of
    # per-node partial sums, so float summation *order* differs from the
    # sequential stream — everything else (simulated time, counts, blocks)
    # must match exactly, the means to the last few ulps.
    assert sequential.summary() == sharded.summary()
    seq_summary = sequential.summary()
    par_summary = parallel.summary()
    float_keys = {
        key
        for key in seq_summary
        if isinstance(seq_summary[key], float) and "latency" in key
    }
    for key in seq_summary:
        if key in float_keys:
            assert math.isclose(par_summary[key], seq_summary[key], rel_tol=1e-12), key
        else:
            assert par_summary[key] == seq_summary[key], key
    assert sequential.simulated_time == parallel.simulated_time
    assert sequential.errors == 0
    # The acceptance bar: with one worker per node, the replay's critical
    # path is at least 2x faster than the sequential event loop.
    assert section["speedup_parallel_critical_path"] >= 2.0, (
        f"parallel critical path {section['parallel']['critical_path_seconds']}s "
        f"vs sequential {section['sequential']['cpu_seconds']}s cpu"
    )


def test_replay_throughput(benchmark, tmp_path):
    trace_path = tmp_path / "replay-1m.tsv"
    write_trace(trace_path, TRACE_OPS)

    report = run_once(benchmark, compare_pipelines, trace_path)

    # Preserve the cluster section written by test_parallel_cluster_replay
    # (either earlier in this run or committed from a previous one).
    if RESULT_PATH.exists():
        previous = json.loads(RESULT_PATH.read_text())
        if "cluster" in previous:
            report["cluster"] = previous["cluster"]
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(
        f"legacy:    {report['legacy']['ops_per_sec']:>9} ops/s  "
        f"({report['legacy']['retained_sample_objects']} sample objects)"
    )
    print(
        f"streaming: {report['streaming']['ops_per_sec']:>9} ops/s  "
        f"({report['streaming']['retained_sample_objects']} sample objects, "
        f"peak traced {report['streaming']['peak_tracemalloc_bytes'] / 1e6:.1f} MB)"
    )
    print(f"speedup:   {report['speedup']}x  -> {RESULT_PATH.name}")

    assert report["trace_ops"] == TRACE_OPS
    # >= 2x throughput over the pre-PR recorder+loader.  Typically >3x; the
    # legacy side holds a million live sample objects, so its speed (and
    # hence this ratio) swings with ambient memory pressure.  The absolute
    # streaming ops/s regression gate is benchmarks/check_replay_baseline.py.
    assert report["speedup"] >= 2.0, f"streaming speedup {report['speedup']}x < 2x"
    # Recorder memory is O(1) in trace length: the verbatim-sample count is
    # capped and does not grow between a 100k-op and a 1M-op replay.
    legacy_retained = report["legacy"]["retained_sample_objects"]
    streaming = report["streaming"]
    assert legacy_retained == TRACE_OPS
    assert streaming["retained_sample_objects"] <= LatencyRecorder.DEFAULT_EXACT_WINDOW
    assert streaming["retained_sample_objects"] == streaming["retained_at_tenth_length"]
    # Summary statistics: mean is exact, quantiles within the 2% bucket width.
    legacy_summary = report["legacy_summary"]
    streaming_summary = report["streaming_summary"]
    assert streaming_summary["operations"] == legacy_summary["operations"]
    # Means are computed from exact running sums; only float summation order
    # differs between the pipelines.
    assert math.isclose(
        streaming_summary["mean_latency"], legacy_summary["mean_latency"], rel_tol=1e-9
    )
    for key in ("median_latency", "p95_latency", "p99_latency"):
        assert abs(streaming_summary[key] - legacy_summary[key]) <= 0.02 * legacy_summary[key]
