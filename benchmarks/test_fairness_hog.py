"""Fairness under concurrency: one hog client vs many small clients.

PR 2 sharded the latency recorder per client precisely so that effects
like this become visible: a single "hog" streaming large writes through
the shared cache, flush daemon and disk queue inflates the *tail* latency
of every small interactive client, even though the small clients' medians
stay near zero (their working sets remain cached).  This benchmark replays
the same small-client population twice — once alone, once next to the hog
— and reports the per-client p99 spread through
``format_per_client_latency_table``, asserting that the hog measurably
inflates the small clients' tails.

Results land in ``BENCH_fairness.json`` at the repository root.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.analysis.report import format_per_client_latency_table
from repro.config import small_test_config
from repro.patsy.simulator import PatsySimulator
from repro.patsy.traces import TraceRecord
from repro.units import KB

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fairness.json"

SMALL_CLIENTS = 6
DURATION = 60.0 * max(BENCH_TRACE_SCALE, 0.1) / 0.4


def small_client_records(duration: float) -> list[TraceRecord]:
    """Interactive traffic: stat + one cached-size read every ~0.7 s."""
    records = []
    for client in range(1, SMALL_CLIENTS + 1):
        t = 0.05 * client
        index = 0
        while t < duration:
            path = f"/small/c{client}-{index % 8}.dat"
            records.append(TraceRecord(t, client, "stat", path))
            records.append(TraceRecord(t + 0.02, client, "open", path))
            records.append(TraceRecord(t + 0.04, client, "read", path, offset=0, size=8 * KB))
            records.append(TraceRecord(t + 0.06, client, "close", path))
            t += 0.7
            index += 1
    return records


def hog_records(duration: float) -> list[TraceRecord]:
    """The hog: 256 KB files written back to back for the whole run."""
    records = []
    t = 0.0
    fileno = 0
    while t < duration:
        path = f"/hog/big-{fileno:04d}.dat"
        records.append(TraceRecord(t, 0, "open", path))
        t += 0.01
        for offset in range(0, 256 * 1024, 16 * 1024):
            records.append(TraceRecord(t, 0, "write", path, offset=offset, size=16 * KB))
            t += 0.02
        records.append(TraceRecord(t, 0, "close", path))
        t += 0.05
        fileno += 1
    return records


def replay(records) -> dict:
    records = sorted(records, key=lambda r: (r.timestamp, r.client))
    result = PatsySimulator(small_test_config(seed=BENCH_SEED)).replay(
        records, trace_name="fairness"
    )
    return result.per_client_latency()


def run_fairness():
    small = small_client_records(DURATION)
    baseline = replay(small)
    contended = replay(small + hog_records(DURATION))
    return baseline, contended


def test_hog_client_inflates_small_client_tails(benchmark):
    baseline, contended = run_once(benchmark, run_fairness)
    print()
    print(format_per_client_latency_table(baseline, title="small clients alone"))
    print()
    print(format_per_client_latency_table(contended, title="same clients next to the hog"))

    clients = list(range(1, SMALL_CLIENTS + 1))
    assert set(clients) <= set(contended) and 0 in contended
    base_p99 = [baseline[c]["p99_latency"] for c in clients]
    hog_p99 = [contended[c]["p99_latency"] for c in clients]
    inflation = [
        with_hog / max(alone, 1e-9) for alone, with_hog in zip(base_p99, hog_p99)
    ]
    print()
    print(
        "p99 inflation per small client: "
        + "  ".join(f"c{c}={f:.1f}x" for c, f in zip(clients, inflation))
    )
    # Every small client's tail must be visibly inflated by the hog, and the
    # hog itself must dominate the operation count.
    assert all(f > 2.0 for f in inflation), f"no contention visible: {inflation}"
    assert contended[0]["operations"] > max(contended[c]["operations"] for c in clients)
    # The medians stay cheap (cached): the damage is a *tail* phenomenon,
    # which is exactly what per-client percentile shards exist to expose.
    assert all(
        contended[c]["median_latency"] < contended[c]["p99_latency"] / 10 for c in clients
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "baseline_p99": dict(zip(map(str, clients), base_p99)),
                "contended_p99": dict(zip(map(str, clients), hog_p99)),
                "inflation": dict(zip(map(str, clients), inflation)),
                "hog_operations": contended[0]["operations"],
            },
            indent=2,
        )
        + "\n"
    )
