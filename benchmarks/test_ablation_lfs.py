"""Ablation: LFS segment size and cleaner policy.

DESIGN.md calls out the segment size and the cleaner policy (greedy vs.
cost-benefit) as the main free parameters of the storage layout.  This
benchmark writes and rewrites files on a small real (memory-backed) LFS and
reports how much cleaning each configuration needed.
"""

from benchmarks.conftest import run_once
from repro.core.blocks import CacheBlock
from repro.core.clock import VirtualClock
from repro.core.inode import FileKind
from repro.core.scheduler import Scheduler
from repro.core.storage.cleaner import CleanerDaemon, make_cleaner
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import LocalVolume
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB

REWRITE_ROUNDS = 45
FILE_BLOCKS = 24


def run_configuration(segment_blocks: int, cleaner_policy: str) -> dict:
    scheduler = Scheduler(clock=VirtualClock(), seed=5)
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=4 * MB)
    volume = LocalVolume([driver], block_size=4 * KB)
    layout = LogStructuredLayout(
        scheduler, volume, block_size=4 * KB, segment_blocks=segment_blocks, simulated=False
    )
    daemon = CleanerDaemon(
        scheduler, layout, make_cleaner(cleaner_policy), low_water=0.3, high_water=0.5
    )

    def body():
        yield from layout.format()
        yield from layout.mount()
        inode = layout.allocate_inode(FileKind.REGULAR)
        block = CacheBlock(0, 4 * KB, with_data=True)
        block.data[:4] = b"lfsd"
        for _round in range(REWRITE_ROUNDS):
            yield from layout.write_file_blocks(
                inode, [(i, block) for i in range(FILE_BLOCKS)]
            )
            yield from layout.write_inode(inode)
            if layout.free_segment_fraction < daemon.low_water:
                yield from daemon.clean_until(daemon.high_water)

    thread = scheduler.spawn(body)
    scheduler.run_until_complete(thread)
    return {
        "segments_cleaned": daemon.segments_cleaned,
        "blocks_copied": daemon.blocks_copied,
        "disk_writes": layout.stats.disk_writes,
        "free_fraction": layout.free_segment_fraction,
    }


def run_all():
    results = {}
    for segment_blocks in (16, 64):
        for policy in ("greedy", "cost-benefit"):
            results[f"seg={segment_blocks} {policy}"] = run_configuration(segment_blocks, policy)
    return results


def test_ablation_lfs_segment_and_cleaner(benchmark):
    results = run_once(benchmark, run_all)
    print()
    for name, stats in results.items():
        print(
            f"{name:>22}: cleaned={stats['segments_cleaned']:3d} segments, "
            f"copied={stats['blocks_copied']:4d} blocks, disk writes={stats['disk_writes']:4d}"
        )
    # Every configuration must survive the rewrite workload with free space left.
    assert all(stats["free_fraction"] > 0.05 for stats in results.values())
    # Overwriting the same file repeatedly forces the cleaner to work.
    assert any(stats["segments_cleaned"] > 0 for stats in results.values())
