"""Figure 2: cumulative latency distribution, Sprite trace 1a, four policies."""

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.analysis.report import ascii_cdf_plot, format_latency_cdf_table, format_policy_comparison
from repro.patsy.experiments import run_policy_comparison


def test_fig2_trace_1a_latency_cdf(benchmark):
    results = run_once(
        benchmark,
        run_policy_comparison,
        "1a",
        trace_scale=BENCH_TRACE_SCALE,
        seed=BENCH_SEED,
    )
    latencies = {name: result.latency.latencies() for name, result in results.items()}
    print()
    print(format_policy_comparison(results, "1a (Figure 2)"))
    print()
    print(format_latency_cdf_table(latencies))
    print()
    print(ascii_cdf_plot(latencies, max_latency=0.06))

    ups = results["ups"]
    write_delay = results["write-delay"]
    whole = results["nvram-whole-file"]
    partial = results["nvram-partial-file"]
    # Paper shape: write saving beats the 30-second baseline; whole-file NVRAM
    # flushing beats partial-file flushing; UPS writes nothing at all.
    assert ups.blocks_written_to_disk == 0
    assert ups.write_savings_blocks >= write_delay.write_savings_blocks
    assert ups.mean_latency <= write_delay.mean_latency * 1.10
    assert whole.mean_latency <= partial.mean_latency * 1.05
