"""Ablation: cache replacement policy (LRU vs. random vs. LFU vs. SLRU vs. LRU-K).

Section 2 lists these as drop-in replacements for the base cache's LRU
lists; this benchmark measures the hit rate each achieves on the same
skewed (hot-set) read workload.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.config import CacheConfig, SimulationConfig, small_test_config
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB


PROFILE = WorkloadProfile(
    name="replacement-ablation",
    duration=120.0,
    num_clients=3,
    mean_think_time=0.8,
    read_fraction=0.85,
    initial_files=120,
    hot_set_size=10,
    hot_read_fraction=0.8,
    mean_file_size=16 * KB,
)


def run_replacement(policy: str) -> float:
    base = small_test_config(seed=BENCH_SEED)
    config = SimulationConfig(
        cache=CacheConfig(size_bytes=48 * 4096, replacement=policy),
        flush=base.flush,
        layout=base.layout,
        host=base.host,
        seed=BENCH_SEED,
        report_interval=base.report_interval,
    )
    simulator = PatsySimulator(config)
    result = simulator.replay(generate_workload(PROFILE, seed=BENCH_SEED))
    return result.cache_stats["hit_rate"]


def run_all():
    return {name: run_replacement(name) for name in ("lru", "random", "lfu", "slru", "lru-k")}


def test_ablation_replacement_policies(benchmark):
    hit_rates = run_once(benchmark, run_all)
    print()
    for name, rate in sorted(hit_rates.items(), key=lambda item: -item[1]):
        print(f"{name:>8}: hit rate {rate * 100:5.1f}%")
    # Every policy must achieve a non-degenerate hit rate on a strongly
    # skewed workload, and the default (LRU) should not lose badly to random.
    assert all(rate > 0.02 for rate in hit_rates.values())
    assert max(hit_rates.values()) > 0.10
    assert hit_rates["lru"] >= hit_rates["random"] - 0.05
