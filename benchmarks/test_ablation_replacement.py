"""Ablation: cache replacement policies, classic and adaptive.

Section 2 lists RR, LFU, SLRU, LRU-K and "adaptive" policies as drop-in
replacements for the base cache's LRU lists; the event-driven subsystem in
:mod:`repro.core.replacement` adds the adaptive ones (CLOCK, 2Q, ARC).
This benchmark replays the same skewed (hot-set) read workload under every
policy and compares hit rates plus the adaptive-policy counters (ghost
hits, adaptations, amortised victim-selection cost).

The workload keeps a stable hot set (``large_file_fraction=0`` — a single
512 KB "hot" file would be bigger than the whole 48-block cache and no
policy could hold it).
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.analysis.report import format_replacement_comparison
from repro.config import CacheConfig, SimulationConfig, small_test_config
from repro.core.replacement import POLICY_NAMES
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB


PROFILE = WorkloadProfile(
    name="replacement-ablation",
    duration=240.0,
    num_clients=3,
    mean_think_time=0.8,
    read_fraction=0.85,
    initial_files=120,
    hot_set_size=10,
    hot_read_fraction=0.8,
    mean_file_size=16 * KB,
    large_file_fraction=0.0,
)


def run_replacement(policy: str) -> dict:
    base = small_test_config(seed=BENCH_SEED)
    config = SimulationConfig(
        cache=CacheConfig(size_bytes=48 * 4096, replacement=policy),
        flush=base.flush,
        layout=base.layout,
        host=base.host,
        seed=BENCH_SEED,
        report_interval=base.report_interval,
    )
    simulator = PatsySimulator(config)
    result = simulator.replay(generate_workload(PROFILE, seed=BENCH_SEED))
    return result.cache_stats


def run_all():
    return {name: run_replacement(name) for name in POLICY_NAMES}


def test_ablation_replacement_policies(benchmark):
    stats = run_once(benchmark, run_all)
    print()
    print(format_replacement_comparison(stats))
    hit_rates = {name: s["hit_rate"] for name, s in stats.items()}
    # Every policy must achieve a non-degenerate hit rate on a strongly
    # skewed workload, and the default (LRU) should not lose badly to random.
    assert all(rate > 0.02 for rate in hit_rates.values())
    assert max(hit_rates.values()) > 0.10
    assert hit_rates["lru"] >= hit_rates["random"] - 0.05
    # The adaptive policies must clear the threshold on their own.
    assert max(hit_rates["arc"], hit_rates["2q"]) > 0.10
    # The ghost lists actually see reuse on this workload.
    assert stats["arc"]["ghost_hits"] > 0
    # Victim selection is O(1): a handful of list nodes examined per
    # eviction, not a scan over the resident blocks.
    for name, s in stats.items():
        if s["evictions"]:
            assert s["victim_scan_steps"] / s["evictions"] < 4.0, name
