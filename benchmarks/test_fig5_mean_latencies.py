"""Figure 5: mean file-system latencies for all traces under all four policies."""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.analysis.report import format_mean_latency_table
from repro.patsy.experiments import mean_latency_table

#: Figure 5 covers every trace; a smaller per-trace scale keeps the full
#: 6 traces x 4 policies sweep in the minutes range.
FIG5_TRACE_SCALE = 0.25


def test_fig5_mean_latency_table(benchmark):
    table = run_once(
        benchmark,
        mean_latency_table,
        trace_scale=FIG5_TRACE_SCALE,
        seed=BENCH_SEED,
    )
    print()
    print(format_mean_latency_table(table))

    assert set(table) == {"1a", "1b", "2a", "2b", "5", "6"}
    for trace, row in table.items():
        assert set(row) == {"write-delay", "ups", "nvram-whole-file", "nvram-partial-file"}
        # The write-saving (UPS) policy is never slower than the 30-second
        # baseline on any trace — the paper's headline Figure 5 conclusion.
        assert row["ups"] <= row["write-delay"] * 1.10
        # Whole-file NVRAM flushing never loses to partial-file flushing.
        assert row["nvram-whole-file"] <= row["nvram-partial-file"] * 1.05
