#!/usr/bin/env python3
"""Perf-smoke regression gate for the replay benchmark.

Compares the freshly generated ``BENCH_replay.json`` against the committed
``benchmarks/baseline_replay.json`` with a generous tolerance (default
30%), so CI flags real throughput regressions without tripping on runner
noise:

* the streaming pipeline's ops/s must stay within ``tolerance`` of the
  committed baseline,
* the 4-node cluster section's parallel critical-path speedup must stay
  >= 2x sequential (the acceptance bar of the parallel-replay work — an
  absolute floor, not baseline-relative).

Also writes the cluster section to ``BENCH_replay_cluster.json`` so CI can
upload it as a standalone artefact.  Exits non-zero on regression.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_replay.json"
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_replay.json"
CLUSTER_ARTIFACT_PATH = REPO_ROOT / "BENCH_replay_cluster.json"

MIN_PARALLEL_SPEEDUP = 2.0


def main() -> int:
    report = json.loads(RESULT_PATH.read_text())
    baseline = json.loads(BASELINE_PATH.read_text())
    tolerance = float(baseline.get("tolerance", 0.3))
    failures = []

    measured_ops = report["streaming"]["ops_per_sec"]
    baseline_ops = baseline["streaming_ops_per_sec"]
    floor = baseline_ops * (1.0 - tolerance)
    verdict = "ok" if measured_ops >= floor else "REGRESSION"
    print(
        f"streaming ops/s: {measured_ops} vs baseline {baseline_ops} "
        f"(floor {floor:.0f}, tolerance {tolerance:.0%}) -> {verdict}"
    )
    if measured_ops < floor:
        failures.append(
            f"streaming throughput regressed: {measured_ops} ops/s < "
            f"{floor:.0f} (baseline {baseline_ops} - {tolerance:.0%})"
        )

    cluster = report.get("cluster")
    if cluster is None:
        failures.append("BENCH_replay.json has no cluster section")
    else:
        CLUSTER_ARTIFACT_PATH.write_text(json.dumps(cluster, indent=2) + "\n")
        speedup = cluster["speedup_parallel_critical_path"]
        verdict = "ok" if speedup >= MIN_PARALLEL_SPEEDUP else "REGRESSION"
        print(
            f"parallel critical-path speedup ({cluster['nodes']} nodes): "
            f"{speedup}x (floor {MIN_PARALLEL_SPEEDUP}x, committed baseline "
            f"{baseline['parallel_critical_path_speedup']}x) -> {verdict}"
        )
        print(f"cluster section -> {CLUSTER_ARTIFACT_PATH.name}")
        if speedup < MIN_PARALLEL_SPEEDUP:
            failures.append(
                f"parallel replay speedup regressed: {speedup}x < "
                f"{MIN_PARALLEL_SPEEDUP}x sequential"
            )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
