"""LFS segment indexes: lazy mounts, bounded cleaner scans, coalesced reads.

Three costs of the pre-index LFS grew with volume size, not with the work
actually requested:

* **mount** re-read one summary block per non-free segment;
* every **cleaner wakeup** rebuilt an O(num_segments) candidate list;
* **cold sequential reads** paid one disk operation per 4 KB block even
  when LFS had laid the file out contiguously.

This benchmark measures all three with the LSM-style per-segment indexes
on and off, plus a 4-node cluster replay of the cold-read workload:

1. ``mount`` — a real (byte-moving) layout is filled and checkpointed,
   then remounted: disk reads and wall time per mount, on vs off, at two
   fill levels.
2. ``cleaner_scan`` — simulated layouts with growing segment counts; wall
   time per victim selection for the bucket-backed bounded candidate set
   vs the full ``segment_infos()`` scan.
3. ``cold_read`` — the ``sun4_280`` 10-disk preset replaying a
   write-then-sequential-scan trace through a deliberately small cache:
   read p50/p95 and disk operations, on vs off, plus the in-core index
   memory as a fraction of the cache budget (must stay under 1%).
4. ``cluster`` — the same trace on the 4-node cluster preset.

Results land in ``BENCH_lfs_index.json`` at the repository root;
``check_lfs_index_baseline.py`` gates CI on the committed baseline.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.config import cluster_config, sun4_280_config
from repro.core.clock import VirtualClock
from repro.core.inode import FileKind
from repro.core.scheduler import Scheduler
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.segindex import SegmentIndexConfig
from repro.core.storage.volume import LocalVolume
from repro.core.blocks import CacheBlock
from repro.patsy.simulator import PatsySimulator
from repro.patsy.traces import TraceRecord
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_lfs_index.json"
INDEX = SegmentIndexConfig()
BLOCK = 4 * KB


def run(scheduler, target, *args, **kwargs):
    thread = scheduler.spawn(target, *args, **kwargs)
    return scheduler.run_until_complete(thread)


# --------------------------------------------------------------------------- 1. mount


def _filled_volume(scheduler, files, blocks_per_file=12, segment_blocks=16):
    """A real layout filled with ``files`` files and checkpointed; returns
    its volume (the 'disk image' the mount benchmark remounts over)."""
    disk_mb = max(8, (files * blocks_per_file * BLOCK * 3) // MB)
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB)
    volume = LocalVolume([driver], block_size=BLOCK)
    layout = LogStructuredLayout(
        scheduler, volume, block_size=BLOCK, segment_blocks=segment_blocks,
        index_config=INDEX,
    )
    run(scheduler, layout.format)
    run(scheduler, layout.mount)
    for i in range(files):
        inode = layout.allocate_inode(FileKind.REGULAR)
        pairs = []
        for j in range(blocks_per_file):
            block = CacheBlock(0, BLOCK, with_data=True)
            block.data[:16] = bytes([(i + j) % 251]) * 16
            pairs.append((j, block))
        run(scheduler, layout.write_file_blocks, inode, pairs)
        run(scheduler, layout.write_inode, inode)
    run(scheduler, layout.checkpoint)
    non_free = layout.num_segments - layout.free_segment_count
    return volume, non_free, segment_blocks


def _measure_mount(scheduler, volume, segment_blocks, index_config):
    layout = LogStructuredLayout(
        scheduler, volume, block_size=BLOCK, segment_blocks=segment_blocks,
        index_config=index_config,
    )
    started = time.perf_counter()
    run(scheduler, layout.mount)
    elapsed = time.perf_counter() - started
    return {
        "disk_reads": layout.stats.disk_reads,
        "wall_seconds": round(elapsed, 6),
    }


def bench_mount():
    rows = []
    for files in (40, 160):
        scheduler = Scheduler(clock=VirtualClock(), seed=BENCH_SEED)
        volume, non_free, segment_blocks = _filled_volume(scheduler, files)
        on = _measure_mount(scheduler, volume, segment_blocks, INDEX)
        off = _measure_mount(scheduler, volume, segment_blocks, None)
        rows.append(
            {
                "files": files,
                "non_free_segments": non_free,
                "index_on": on,
                "index_off": off,
            }
        )
    return rows


# --------------------------------------------------------------------------- 2. cleaner scan


def _simulated_layout_with_segments(target_segments, index_config):
    scheduler = Scheduler(clock=VirtualClock(), seed=BENCH_SEED)
    segment_blocks = 16
    disk_mb = max(8, (target_segments + 8) * segment_blocks * BLOCK // MB + 1)
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB)
    volume = LocalVolume([driver], block_size=BLOCK)
    layout = LogStructuredLayout(
        scheduler, volume, block_size=BLOCK, segment_blocks=segment_blocks,
        simulated=True, index_config=index_config,
    )
    run(scheduler, layout.format)
    run(scheduler, layout.mount)
    inode = layout.allocate_inode(FileKind.REGULAR)
    blocks_needed = target_segments * (segment_blocks - 1)
    written = 0
    while written < blocks_needed:
        batch = [
            (written + j, CacheBlock(0, BLOCK, with_data=False))
            for j in range(min(64, blocks_needed - written))
        ]
        run(scheduler, layout.write_file_blocks, inode, batch)
        written += len(batch)
    # Vary utilisation: retire the most recent third of the log's blocks.
    run(scheduler, layout.release_blocks, inode, written - written // 3)
    return layout


def bench_cleaner_scan(choose_calls=200):
    rows = []
    for segments in (64, 256, 1024):
        row = {"sealed_segments": segments}
        for label, config in (("index_on", INDEX), ("index_off", None)):
            layout = _simulated_layout_with_segments(segments, config)
            started = time.perf_counter()
            considered = 0
            for _ in range(choose_calls):
                considered += len(layout.cleaner_candidates())
            elapsed = time.perf_counter() - started
            row[label] = {
                "microseconds_per_choose": round(elapsed / choose_calls * 1e6, 2),
                "candidates_per_choose": considered / choose_calls,
            }
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- 3/4. cold reads


def scan_trace(files=48, file_kb=96, read_chunk=4 * KB):
    """Write ``files`` files, then scan every one sequentially in
    block-sized reads, over a working set larger than the scaled-down
    cache — every scan read is cold.  One block per read op keeps the
    cache from fanning a single op's misses out concurrently, which is
    the regime run coalescing targets: op N's run stages the blocks ops
    N+1..N+7 are about to ask for."""
    records = []
    clock = 0.0
    for i in range(files):
        records.append(
            TraceRecord(clock, i % 8, "write", f"/scan/f{i}", 0, file_kb * KB)
        )
        clock += 0.05
    clock += 5.0
    for i in range(files):
        for offset in range(0, file_kb * KB, read_chunk):
            records.append(
                TraceRecord(clock, i % 8, "read", f"/scan/f{i}", offset, read_chunk)
            )
            clock += 0.01
    return records


def _cold_read_config(segment_index):
    # scale=0.1: a 12.8 MB cache, deliberately smaller than the ~19 MB scan
    # working set so every scan read misses — while keeping the cache budget
    # large enough that the <=1% index-memory bound is a meaningful claim.
    config = sun4_280_config(scale=0.1, seed=BENCH_SEED)
    return replace(
        config, layout=replace(config.layout, segment_index=segment_index)
    )


def _read_percentiles(result):
    summary = result.latency.summary()
    return {
        "p50": summary["median_latency"],
        "p95": summary["p95_latency"],
        "mean": summary["mean_latency"],
    }


def _run_cold_read(segment_index):
    config = _cold_read_config(segment_index)
    result = PatsySimulator(config).replay(
        scan_trace(files=200), trace_name="lfs-index-scan"
    )
    assert result.errors == 0
    layout = result.volume_stats["rollup"]["layout"]
    entry = {
        "operations": result.operations,
        "simulated_time": round(result.simulated_time, 3),
        "latency": _read_percentiles(result),
        "disk_reads": layout["disk_reads"],
        "cold_read_runs": layout.get("cold_read_runs", 0),
        "coalesced_read_hits": layout.get("coalesced_read_hits", 0),
    }
    index_rollup = result.volume_stats["rollup"].get("index")
    if index_rollup is not None:
        entry["index_memory_bytes"] = index_rollup["memory_bytes"]
        entry["index_fraction_of_cache"] = round(
            index_rollup["fraction_of_cache"], 5
        )
    return entry


def bench_cold_read():
    return {"index_on": _run_cold_read(True), "index_off": _run_cold_read(False)}


def _run_cluster(segment_index):
    config = cluster_config(nodes=4, scale=0.002, seed=BENCH_SEED, rebalance=False)
    config = replace(
        config, layout=replace(config.layout, segment_index=segment_index)
    )
    result = PatsySimulator(config).replay(
        scan_trace(files=32), trace_name="lfs-index-cluster"
    )
    assert result.errors == 0
    return {
        "operations": result.operations,
        "simulated_time": round(result.simulated_time, 3),
        "latency": _read_percentiles(result),
    }


def bench_cluster():
    return {"index_on": _run_cluster(True), "index_off": _run_cluster(False)}


# --------------------------------------------------------------------------- the benchmark


def run_all():
    return {
        "mount": bench_mount(),
        "cleaner_scan": bench_cleaner_scan(),
        "cold_read": bench_cold_read(),
        "cluster": bench_cluster(),
    }


def test_lfs_index_read_and_cleaner_path(benchmark):
    report = run_once(benchmark, run_all)
    report["trace_scale"] = BENCH_TRACE_SCALE
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print("mount (disk reads, on vs off):")
    for row in report["mount"]:
        print(
            f"  {row['non_free_segments']:>4} non-free segments: "
            f"on={row['index_on']['disk_reads']} reads  "
            f"off={row['index_off']['disk_reads']} reads"
        )
        # Lazy mount: superblock + checkpoint, never one read per segment.
        assert row["index_on"]["disk_reads"] <= 4
        assert row["index_off"]["disk_reads"] > row["non_free_segments"]

    print("cleaner victim selection (per choose):")
    for row in report["cleaner_scan"]:
        on, off = row["index_on"], row["index_off"]
        print(
            f"  {row['sealed_segments']:>5} segments: "
            f"on={on['microseconds_per_choose']:>8}us ({on['candidates_per_choose']:.0f} cands)  "
            f"off={off['microseconds_per_choose']:>8}us ({off['candidates_per_choose']:.0f} cands)"
        )
        # The candidate set is bounded; the full scan grows with the volume.
        assert on["candidates_per_choose"] <= INDEX.cleaner_candidates
    scans = report["cleaner_scan"]
    assert scans[-1]["index_off"]["candidates_per_choose"] > 4 * INDEX.cleaner_candidates

    cold = report["cold_read"]
    on, off = cold["index_on"], cold["index_off"]
    print(
        f"cold sequential scan (10-disk sun4_280): "
        f"p50 on={on['latency']['p50'] * 1000:.2f}ms off={off['latency']['p50'] * 1000:.2f}ms  "
        f"disk-reads on={on['disk_reads']} off={off['disk_reads']}"
    )
    assert on["cold_read_runs"] > 0 and on["coalesced_read_hits"] > 0
    assert on["disk_reads"] < off["disk_reads"]
    assert on["latency"]["p50"] <= off["latency"]["p50"]
    assert on["index_fraction_of_cache"] <= 0.01

    cluster = report["cluster"]
    print(
        f"4-node cluster: p50 on={cluster['index_on']['latency']['p50'] * 1000:.2f}ms "
        f"off={cluster['index_off']['latency']['p50'] * 1000:.2f}ms"
    )
    print(f"results -> {RESULT_PATH.name}")
