"""Availability under faults: replication on vs off on the same disaster.

One trace, one scripted fault schedule — a whole node crashes at 20% of
the run, then, after the repairer has restored full replication, a disk
on a *different* node fails near the end — replayed twice over a 3-node
cluster:

* **replication off** (the baseline stack): every read of a file homed on
  dead hardware fails with ``DataUnavailable``; the run loses data and
  the error count is the measure of unavailability.
* **replication on** (``replicas=1``): reads fail over to the surviving
  copy, the repair daemon re-replicates onto the remaining failure
  domains, and the run must finish with **zero** errors.

The contract is the paper-style availability story: n-way replication
turns hardware loss from data loss into a throughput/latency tax.  The
regenerated table (and ``BENCH_availability.json`` at the repository
root, for CI tracking) reports both runs' throughput, tail latency,
error counts, and the replication/repair counters, plus an analytic
durability audit: after the dust settles every replicated file must
still have a live, fresh copy.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, BENCH_TRACE_SCALE, run_once
from repro.analysis.report import format_cluster_table
from repro.config import cluster_config
from repro.core.faults import FaultEvent
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_availability.json"

DURATION = 60.0 * max(BENCH_TRACE_SCALE, 0.1) / 0.4


def availability_workload():
    profile = WorkloadProfile(
        name="availability",
        duration=DURATION,
        num_clients=8,
        read_fraction=0.7,
        stat_fraction=0.5,
        stat_burst=1,
        initial_files=120,
        mean_file_size=16 * KB,
        mean_think_time=0.3,
        intra_op_gap=0.01,
        overwrite_fraction=0.2,
        delete_fraction=0.0,  # deletions would mask unavailability errors
        hot_read_fraction=0.3,
        hot_set_size=25,
    )
    return generate_workload(profile, seed=BENCH_SEED)


def fault_schedule():
    """A node crash early, then a disk failure on another node: the second
    hit lands after repair restored full replication, so it exercises the
    re-replicated copies, not just the original ones.  (With one replica,
    a fault landing *mid-repair* can legitimately lose files whose two
    copies sat on the two dead domains — that is the off-run's story, not
    a failure mode replication claims to beat.)  Both events sit inside
    the trace window, so they fire in both runs."""
    return [
        FaultEvent(time=DURATION * 0.2, kind="node_crash", target=1),
        FaultEvent(time=DURATION * 0.95, kind="disk_fail", target=4),
    ]


def _run(replicas: int):
    config = cluster_config(
        nodes=3,
        scale=0.001,
        seed=BENCH_SEED,
        volumes_per_node=2,
        disks_per_node=2,
        buses_per_node=1,
        placement="hash",
        rebalance=False,
        replicas=replicas,
    )
    # Repair in parallel: a serial scan queues behind workload disk I/O
    # and can lose the race against the second fault at small trace
    # scales.  Real clusters re-replicate many files concurrently.
    config = dataclasses.replace(
        config, cluster=dataclasses.replace(config.cluster, repair_workers=6)
    )
    sim = PatsySimulator(config)
    sim.inject_faults(fault_schedule())
    result = sim.replay(availability_workload(), trace_name=f"replicas={replicas}")
    return sim, result


def _row(result, **extra):
    return dict(
        {
            "operations": result.operations,
            "errors": result.errors,
            "simulated_time": result.simulated_time,
            "throughput_ops_per_s": result.operations / result.simulated_time,
            "mean_latency": result.mean_latency,
            "p99_latency": result.latency.percentile(0.99),
            "availability": 1.0 - result.errors / max(result.operations, 1),
        },
        **extra,
    )


def run_availability_benchmark():
    rows = {}
    sims = {}
    for replicas in (0, 1):
        sim, result = _run(replicas)
        label = "replication-on" if replicas else "replication-off"
        extra = {"replicas": replicas}
        stats = result.cluster_stats
        if replicas:
            extra["replication"] = stats["replication"]
            extra["repairer"] = stats["repairer"]
        extra["faults"] = {
            key: value
            for key, value in stats.get("faults", {}).items()
            if key != "log"
        }
        rows[label] = (_row(result, **extra), result)
        sims[label] = sim
    return rows, sims


def durability_audit(sim):
    """Analytic survivability: every replicated file must have a live,
    fresh copy — primary on an available volume, or a replica that is
    neither dead nor stale."""
    manager = sim.cluster.replication
    placement = sim.cluster.placement
    faults = sim.cluster.faults
    lost = []
    for file_id in sorted(manager.files):
        primary_ok = not faults.volume_unavailable(placement.volume_of_file(file_id))
        replica_ok = any(
            not faults.volume_unavailable(volume)
            and not manager.is_stale(file_id, volume)
            for volume in placement.replica_set(file_id)
        )
        if not (primary_ok or replica_ok):
            lost.append(file_id)
    return lost


def test_availability_with_and_without_replication(benchmark):
    rows, sims = run_once(benchmark, run_availability_benchmark)
    off, off_result = rows["replication-off"]
    on, on_result = rows["replication-on"]
    print()
    print(f"availability workload, 3 nodes, node 1 crashed + disk 4 failed:")
    for label in ("replication-off", "replication-on"):
        row = rows[label][0]
        print(
            f"  {label:<16} ops/s={row['throughput_ops_per_s']:>7.1f} "
            f"p99={row['p99_latency'] * 1000:>8.1f}ms errors={row['errors']:>4} "
            f"availability={row['availability'] * 100:>6.2f}%"
        )
    print()
    print(format_cluster_table(on_result.cluster_stats, title="replication-on cluster"))

    # The baseline really lost data: the schedule is harsh enough to hurt.
    assert off["errors"] > 0, "fault schedule too gentle: baseline lost nothing"
    # Replication turned the same schedule into zero failed operations.
    assert on["errors"] == 0, f"{on['errors']} operations failed despite replication"
    assert on["availability"] == 1.0 and off["availability"] < 1.0
    # The machinery did real work: fail-overs served reads, repair rebuilt
    # copies, and nothing is left unsurvivable.
    replication = on["replication"]
    assert replication["failover_reads"] > 0
    repairer = on["repairer"]
    assert repairer["promoted_files"] + repairer["repaired_copies"] > 0
    assert repairer["lost_files"] == 0
    lost = durability_audit(sims["replication-on"])
    assert not lost, f"files left with no live copy: {lost}"

    RESULT_PATH.write_text(
        json.dumps(
            {
                "trace_scale": BENCH_TRACE_SCALE,
                "duration": DURATION,
                "schedule": [
                    {"time": e.time, "kind": e.kind, "target": e.target}
                    for e in fault_schedule()
                ],
                "replication_off": off,
                "replication_on": on,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"\nwrote {RESULT_PATH}")
