"""Units and small numeric helpers used throughout the framework.

Time is expressed in **seconds** (floats) everywhere; sizes in **bytes**
(ints).  These helpers exist so that configuration code reads like the
paper: ``4 * MB`` of NVRAM, ``30 * SECONDS`` update interval, a ``10 * MB``
per second SCSI-2 bus, and so on.
"""

from __future__ import annotations

# --- sizes -----------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Default file-system block size (bytes).  Sprite's LFS used 4 KB blocks.
DEFAULT_BLOCK_SIZE = 4 * KB

#: Default disk sector size (bytes).
SECTOR_SIZE = 512

# --- time ------------------------------------------------------------------

MICROSECONDS = 1e-6
MILLISECONDS = 1e-3
SECONDS = 1.0
MINUTES = 60.0
HOURS = 3600.0


def bytes_to_blocks(nbytes: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Number of blocks needed to hold ``nbytes`` (rounded up)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return (nbytes + block_size - 1) // block_size


def blocks_to_bytes(nblocks: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Size in bytes of ``nblocks`` whole blocks."""
    if nblocks < 0:
        raise ValueError(f"negative block count: {nblocks}")
    return nblocks * block_size


def block_span(offset: int, length: int, block_size: int = DEFAULT_BLOCK_SIZE) -> range:
    """Range of logical block numbers touched by a byte extent.

    >>> list(block_span(0, 4096))
    [0]
    >>> list(block_span(4095, 2, block_size=4096))
    [0, 1]
    """
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    if length == 0:
        return range(0)
    first = offset // block_size
    last = (offset + length - 1) // block_size
    return range(first, last + 1)


def human_bytes(nbytes: float) -> str:
    """Human readable byte count, e.g. ``human_bytes(4096) == '4.0KB'``."""
    value = float(nbytes)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or suffix == "TB":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_time(seconds: float) -> str:
    """Human readable duration, e.g. ``human_time(0.0172) == '17.2ms'``."""
    if seconds < 0:
        return "-" + human_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    if seconds < 3600.0:
        return f"{seconds / 60.0:.1f}min"
    return f"{seconds / 3600.0:.2f}h"
