"""Shared command-line flags for the example scripts.

Every script in ``examples/`` accepts the same pair of hardware flags:

* ``--full-hardware`` — run on the paper's evaluation machine, the
  ``sun4_280`` preset (ten HP 97560 disks on three SCSI buses, carved into
  volumes with per-volume cache shards and flush daemons), instead of the
  fast single-disk default.
* ``--volumes N`` — how many volumes the ten disks are carved into
  (default 5, the preset's shape; only meaningful with ``--full-hardware``).

``add_stack_flags`` puts the flags on an ``argparse`` parser;
``array_section``/``stack_config`` turn parsed arguments into the array
sub-config or a whole simulator configuration, both routed through the
:func:`repro.config.sun4_280_config` preset so the examples and the
benchmarks agree on what "the full machine" means.

Cluster replays additionally take the parallel-execution flags:

* ``--nodes N`` — replay on an N-node cluster instead of one machine.
* ``--parallel`` — run each node's event sub-queue in its own worker
  process (Stage B of the sharded scheduler); results are byte-identical
  to the sequential replay.
* ``--jobs N`` — cap the number of concurrent worker processes (0, the
  default, means one per node); implies ``--parallel``.

``add_cluster_flags`` installs them; ``cluster_replay_config`` turns the
parsed arguments into the node-partitioned cluster configuration the
parallel executor requires (``client_entry="home"``, node-affine
placement, rebalancing off).
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Optional

from repro.config import (
    ArrayConfig,
    SimulationConfig,
    cluster_config,
    small_test_config,
    sun4_280_config,
)
from repro.errors import ConfigurationError

__all__ = [
    "add_stack_flags",
    "array_section",
    "stack_config",
    "add_cluster_flags",
    "cluster_replay_config",
    "add_fault_flags",
    "fault_schedule",
]


def add_stack_flags(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Add the shared ``--full-hardware`` / ``--volumes`` flags."""
    parser.add_argument(
        "--full-hardware",
        action="store_true",
        help="run on the sun4_280 preset: 10 HP 97560 disks on 3 SCSI buses",
    )
    parser.add_argument(
        "--volumes",
        type=int,
        default=5,
        metavar="N",
        help="volumes the full machine's disks are carved into (default: 5)",
    )
    return parser


def array_section(
    args: argparse.Namespace, placement: str = "hash"
) -> Optional[ArrayConfig]:
    """The ``sun4_280`` array shape selected by the flags (None without
    ``--full-hardware``) — for callers that assemble their own stack, e.g.
    a :class:`~repro.pfs.filesystem.PegasusFileSystem` mounting the array."""
    if not args.full_hardware:
        return None
    preset = sun4_280_config(scale=0.01, volumes=args.volumes, placement=placement)
    return preset.array


def stack_config(
    args: argparse.Namespace,
    scale: float = 0.002,
    seed: int = 0,
    placement: str = "hash",
) -> SimulationConfig:
    """A full simulator configuration for the flags: the ``sun4_280``
    preset with ``--full-hardware``, the small test stack otherwise."""
    if args.volumes < 1:
        raise ConfigurationError("--volumes must be at least 1")
    if args.full_hardware:
        return sun4_280_config(
            scale=scale, seed=seed, volumes=args.volumes, placement=placement
        )
    return small_test_config(seed=seed)


def add_cluster_flags(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Add the ``--nodes`` / ``--parallel`` / ``--jobs`` replay flags."""
    parser.add_argument(
        "--nodes",
        type=int,
        default=1,
        metavar="N",
        help="replay on an N-node cluster (default: 1, a single machine)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="one worker process per node; byte-identical to the sequential replay",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="cap on concurrent worker processes (0 = one per node); implies --parallel",
    )
    return parser


def add_fault_flags(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Add the ``--replicas`` / ``--fault`` availability flags."""
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="K",
        help="keep K extra copies of every file on other failure domains "
        "(default: 0, replication off)",
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="KIND:TARGET@TIME[:DURATION]",
        help="schedule a fault: disk_fail / node_crash / nic_partition / "
        "slow_disk, e.g. --fault node_crash:1@20 "
        "--fault nic_partition:2@10:5 (repeatable)",
    )
    return parser


def fault_schedule(args: argparse.Namespace) -> list:
    """Parse ``--fault`` specs into :class:`repro.core.faults.FaultEvent`s."""
    from repro.core.faults import FaultEvent

    events = []
    for spec in args.fault:
        head, _, tail = spec.partition("@")
        kind, _, target = head.partition(":")
        if not target or not tail:
            raise ConfigurationError(
                f"bad --fault spec {spec!r} (want KIND:TARGET@TIME[:DURATION])"
            )
        time_str, _, duration = tail.partition(":")
        try:
            events.append(
                FaultEvent(
                    time=float(time_str),
                    kind=kind,
                    target=int(target),
                    duration=float(duration) if duration else 0.0,
                )
            )
        except ValueError as exc:
            raise ConfigurationError(f"bad --fault spec {spec!r}: {exc}") from exc
    return events


def cluster_replay_config(
    args: argparse.Namespace, scale: float = 0.01, seed: int = 0
) -> SimulationConfig:
    """The cluster configuration selected by the ``add_cluster_flags``
    flags, shaped for the node partition the parallel executor needs:
    clients enter the simulation at their home node, placement is
    node-affine and online rebalancing is off (it would migrate files
    across the partition mid-run).  Use with a trace whose clients stay
    inside per-client subtrees — see
    :func:`repro.patsy.traces.partition_by_client`."""
    if args.nodes < 1:
        raise ConfigurationError("--nodes must be at least 1")
    if args.jobs < 0:
        raise ConfigurationError("--jobs cannot be negative")
    config = cluster_config(
        nodes=args.nodes,
        scale=scale,
        seed=seed,
        placement="node",
        rebalance=False,
    )
    return replace(
        config,
        cluster=replace(
            config.cluster,
            client_entry="home",
            parallel=args.parallel or args.jobs > 0,
            jobs=args.jobs,
        ),
    )
