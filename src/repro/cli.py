"""Shared command-line flags for the example scripts.

Every script in ``examples/`` accepts the same pair of hardware flags:

* ``--full-hardware`` — run on the paper's evaluation machine, the
  ``sun4_280`` preset (ten HP 97560 disks on three SCSI buses, carved into
  volumes with per-volume cache shards and flush daemons), instead of the
  fast single-disk default.
* ``--volumes N`` — how many volumes the ten disks are carved into
  (default 5, the preset's shape; only meaningful with ``--full-hardware``).

``add_stack_flags`` puts the flags on an ``argparse`` parser;
``array_section``/``stack_config`` turn parsed arguments into the array
sub-config or a whole simulator configuration, both routed through the
:func:`repro.config.sun4_280_config` preset so the examples and the
benchmarks agree on what "the full machine" means.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.config import (
    ArrayConfig,
    SimulationConfig,
    small_test_config,
    sun4_280_config,
)
from repro.errors import ConfigurationError

__all__ = ["add_stack_flags", "array_section", "stack_config"]


def add_stack_flags(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Add the shared ``--full-hardware`` / ``--volumes`` flags."""
    parser.add_argument(
        "--full-hardware",
        action="store_true",
        help="run on the sun4_280 preset: 10 HP 97560 disks on 3 SCSI buses",
    )
    parser.add_argument(
        "--volumes",
        type=int,
        default=5,
        metavar="N",
        help="volumes the full machine's disks are carved into (default: 5)",
    )
    return parser


def array_section(
    args: argparse.Namespace, placement: str = "hash"
) -> Optional[ArrayConfig]:
    """The ``sun4_280`` array shape selected by the flags (None without
    ``--full-hardware``) — for callers that assemble their own stack, e.g.
    a :class:`~repro.pfs.filesystem.PegasusFileSystem` mounting the array."""
    if not args.full_hardware:
        return None
    preset = sun4_280_config(scale=0.01, volumes=args.volumes, placement=placement)
    return preset.array


def stack_config(
    args: argparse.Namespace,
    scale: float = 0.002,
    seed: int = 0,
    placement: str = "hash",
) -> SimulationConfig:
    """A full simulator configuration for the flags: the ``sun4_280``
    preset with ``--full-hardware``, the small test stack otherwise."""
    if args.volumes < 1:
        raise ConfigurationError("--volumes must be at least 1")
    if args.full_hardware:
        return sun4_280_config(
            scale=scale, seed=seed, volumes=args.volumes, placement=placement
        )
    return small_test_config(seed=seed)
