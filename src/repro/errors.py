"""Exception hierarchy for the cut-and-paste file-system framework.

Every error raised by the framework derives from :class:`ReproError`, so
callers can catch framework errors without catching unrelated Python
exceptions.  File-system level errors carry a POSIX-style ``errno`` name so
that front-ends (the NFS-like interface in :mod:`repro.pfs.nfs`) can map them
onto wire status codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all framework errors."""


class SchedulerError(ReproError):
    """Misuse of the thread scheduler (e.g. running a finished thread)."""


class DeadlockError(SchedulerError):
    """The scheduler ran out of runnable and delayed threads while work
    was still outstanding."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class CacheError(ReproError):
    """Block-cache invariant violation or misuse."""


class CacheExhaustedError(CacheError):
    """The cache cannot satisfy an allocation even after flushing."""


class StorageError(ReproError):
    """Storage-layout level error (bad address, corrupt metadata, ...)."""


class DiskError(ReproError):
    """Device-driver or disk-model level error."""


class DiskAddressError(DiskError):
    """An I/O request addressed a sector outside the disk."""


class TraceError(ReproError):
    """A trace file could not be parsed or replayed."""


class FileSystemError(ReproError):
    """Base class for errors visible through the client interface."""

    #: POSIX-style errno name used by RPC front-ends.
    errno_name = "EIO"


class FileNotFound(FileSystemError):
    """The named file or directory does not exist."""

    errno_name = "ENOENT"


class FileExists(FileSystemError):
    """An exclusive create found an existing entry."""

    errno_name = "EEXIST"


class NotADirectory(FileSystemError):
    """A path component that must be a directory is not one."""

    errno_name = "ENOTDIR"


class IsADirectory(FileSystemError):
    """A data operation was attempted on a directory."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(FileSystemError):
    """``rmdir`` was attempted on a non-empty directory."""

    errno_name = "ENOTEMPTY"


class InvalidArgument(FileSystemError):
    """A client supplied an out-of-range offset, bad name, etc."""

    errno_name = "EINVAL"


class NoSpaceLeft(FileSystemError):
    """The storage layout ran out of free segments/blocks."""

    errno_name = "ENOSPC"


class StaleHandle(FileSystemError):
    """A file handle refers to a file that has been removed."""

    errno_name = "ESTALE"


class PermissionDenied(FileSystemError):
    """The operation is not permitted on this file type."""

    errno_name = "EPERM"


class DataUnavailable(FileSystemError):
    """The data lives on a dead or partitioned volume and no surviving
    replica holds a copy (fault injection; ``repro.core.faults``)."""

    errno_name = "EIO"
