"""The delayed-write ("write saving") experiments of Section 5.1.

Four policies are compared on the (synthetic stand-ins for the) Sprite
traces, on a simulated Sprite file server — ten HP 97560 disks on three
SCSI-2 buses running a segmented LFS:

* ``write-delay`` — the ordinary Unix 30-second-update baseline,
* ``ups`` — flush only when the cache runs out of non-dirty blocks,
* ``nvram-whole-file`` — 4 MB NVRAM; when full, flush the whole file that
  owns the oldest dirty block,
* ``nvram-partial-file`` — 4 MB NVRAM; when full, flush only the oldest
  dirty block.

The helpers here build the right :class:`~repro.config.SimulationConfig`
for each policy, run a :class:`~repro.patsy.simulator.PatsySimulator` over a
trace and return the measurements that Figures 2-5 are drawn from.
Because the synthetic traces are minutes rather than 24 hours, the memory
sizes are scaled down by the same factor (``memory_scale``); the published
*ordering* of the policies is what the reproduction checks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Sequence

from repro.assembly.spec import StackSpec, spec_diff
from repro.config import (
    FlushConfig,
    HostConfig,
    SimulationConfig,
    sprite_server_config,
    sun4_280_config,
)
from repro.errors import ConfigurationError
from repro.patsy.simulator import PatsySimulator, SimulationResult
from repro.patsy.synthetic import SPRITE_TRACE_NAMES, sprite_like_trace
from repro.patsy.traces import TraceRecord

__all__ = [
    "EXPERIMENT_POLICIES",
    "FULL_HARDWARE_VOLUMES",
    "DelayedWriteExperiment",
    "experiment_config",
    "run_delayed_write_experiment",
    "run_policy_comparison",
    "mean_latency_table",
    "format_spec_delta",
]

#: the four policies of Section 5.1, in the order the paper discusses them.
EXPERIMENT_POLICIES: Dict[str, FlushConfig] = {
    "write-delay": FlushConfig(policy="periodic", update_interval=30.0, scan_interval=5.0),
    "ups": FlushConfig(policy="ups"),
    "nvram-whole-file": FlushConfig(policy="nvram", whole_file=True),
    "nvram-partial-file": FlushConfig(policy="nvram", whole_file=False),
}

#: default memory scale: the synthetic traces are minutes instead of 24 hours
#: and carry correspondingly less data, so the cache and NVRAM shrink by the
#: same factor (1/2 gives a 64 MB cache and a 2 MB NVRAM).  What matters for
#: the published effects is that (a) the live dirty set of a normal trace fits
#: in the cache, (b) a normal 30-second write burst fits in the NVRAM, and
#: (c) the write-heavy traces (1b, 5) overflow the NVRAM — all three regimes
#: are preserved at this scale.
DEFAULT_MEMORY_SCALE = 1.0 / 2.0

#: default number of disks/buses; the full Sprite complement (10 disks on
#: 3 buses, five volumes) is available via ``full_hardware=True`` but a
#: smaller complement keeps the default runs fast and concentrates the
#: queueing effects the experiments are about.
DEFAULT_HOST = HostConfig(num_disks=1, num_buses=1)

#: the paper machine's array shape used when ``full_hardware=True``.
FULL_HARDWARE_VOLUMES = 5


@dataclass(frozen=True)
class DelayedWriteExperiment:
    """A fully-specified experiment: one trace replayed under one policy.

    ``full_hardware=True`` puts the run on the paper's evaluation machine —
    the ``sun4_280`` preset's ten-disk/three-bus storage array, carved into
    ``volumes`` volumes with ``placement`` routing — instead of the fast
    single-disk default.  :meth:`with_array` is the fluent form.
    """

    trace_name: str
    policy_name: str
    memory_scale: float = DEFAULT_MEMORY_SCALE
    trace_scale: float = 1.0
    seed: int = 0
    full_hardware: bool = False
    volumes: int = FULL_HARDWARE_VOLUMES
    placement: str = "hash"

    def with_array(
        self, volumes: int = FULL_HARDWARE_VOLUMES, placement: str = "hash"
    ) -> "DelayedWriteExperiment":
        """This experiment on the paper's ten-disk array (fluent API)."""
        return replace(self, full_hardware=True, volumes=volumes, placement=placement)

    def config(self) -> SimulationConfig:
        return experiment_config(
            self.policy_name,
            memory_scale=self.memory_scale,
            seed=self.seed,
            full_hardware=self.full_hardware,
            volumes=self.volumes,
            placement=self.placement,
        )

    def spec(self) -> StackSpec:
        """The world-independent stack this experiment runs on."""
        return StackSpec.from_config(self.config())

    def spec_delta(self, other: "DelayedWriteExperiment") -> dict:
        """The manifest delta between this experiment's stack and another's
        (see :func:`repro.assembly.spec.spec_diff`): exactly the knobs that
        separate the two runs, nothing else."""
        return spec_diff(self.spec(), other.spec())

    def trace(self) -> list[TraceRecord]:
        return sprite_like_trace(self.trace_name, scale=self.trace_scale, seed=self.seed)

    def run(self) -> SimulationResult:
        simulator = PatsySimulator(self.config())
        result = simulator.replay(self.trace(), trace_name=self.trace_name)
        result.policy_name = self.policy_name
        return result


def experiment_config(
    policy_name: str,
    memory_scale: float = DEFAULT_MEMORY_SCALE,
    seed: int = 0,
    full_hardware: bool = False,
    volumes: int = FULL_HARDWARE_VOLUMES,
    placement: str = "hash",
) -> SimulationConfig:
    """The simulator configuration for one of the Section 5.1 policies.

    With ``full_hardware=True`` the stack is the ``sun4_280`` storage
    array — the Figure 2–5 benchmarks on the paper's real ten-disk,
    three-bus complement (the ROADMAP "array-aware experiments" item).
    """
    if policy_name not in EXPERIMENT_POLICIES:
        raise ConfigurationError(
            f"unknown experiment policy {policy_name!r}; "
            f"known policies: {sorted(EXPERIMENT_POLICIES)}"
        )
    if not full_hardware and (volumes != FULL_HARDWARE_VOLUMES or placement != "hash"):
        # The array shape only exists on the full-hardware stack; ignoring
        # these silently would report single-disk runs as array results.
        raise ConfigurationError(
            "volumes/placement only apply with full_hardware=True "
            "(use DelayedWriteExperiment.with_array(...) for the fluent form)"
        )
    if full_hardware:
        base = sun4_280_config(
            scale=memory_scale, seed=seed, volumes=volumes, placement=placement
        )
    else:
        base = sprite_server_config(scale=memory_scale, seed=seed)
    flush = EXPERIMENT_POLICIES[policy_name]
    # Keep the scaled NVRAM size from the base configuration.
    flush = FlushConfig(
        policy=flush.policy,
        update_interval=flush.update_interval,
        scan_interval=flush.scan_interval,
        nvram_bytes=base.flush.nvram_bytes,
        whole_file=flush.whole_file,
        asynchronous=flush.asynchronous,
    )
    config = base.with_flush(flush)
    if not full_hardware:
        config = SimulationConfig(
            cache=config.cache,
            flush=config.flush,
            layout=config.layout,
            host=DEFAULT_HOST,
            seed=seed,
            report_interval=config.report_interval,
        )
    return config


def format_spec_delta(delta: dict, indent: str = "  ") -> str:
    """Render a :func:`repro.assembly.spec.spec_diff` result for a log.

    One line per differing field — ``section.field: a -> b`` — so an
    experiment can print what separates two manifests instead of dumping
    two full specs.  Returns ``"(identical stacks)"`` for an empty delta.
    """
    if not delta:
        return f"{indent}(identical stacks)"
    lines = []
    for section, value in sorted(delta.items()):
        if isinstance(value, dict):
            for field_name, (a, b) in sorted(value.items()):
                lines.append(f"{indent}{section}.{field_name}: {a!r} -> {b!r}")
        else:
            a, b = value
            lines.append(f"{indent}{section}: {a!r} -> {b!r}")
    return "\n".join(lines)


def run_delayed_write_experiment(
    trace_name: str,
    policy_name: str,
    memory_scale: float = DEFAULT_MEMORY_SCALE,
    trace_scale: float = 1.0,
    seed: int = 0,
    full_hardware: bool = False,
    volumes: int = FULL_HARDWARE_VOLUMES,
    placement: str = "hash",
) -> SimulationResult:
    """Run one (trace, policy) cell of the evaluation."""
    experiment = DelayedWriteExperiment(
        trace_name=trace_name,
        policy_name=policy_name,
        memory_scale=memory_scale,
        trace_scale=trace_scale,
        seed=seed,
        full_hardware=full_hardware,
        volumes=volumes,
        placement=placement,
    )
    return experiment.run()


def run_policy_comparison(
    trace_name: str,
    policies: Optional[Iterable[str]] = None,
    memory_scale: float = DEFAULT_MEMORY_SCALE,
    trace_scale: float = 1.0,
    seed: int = 0,
    full_hardware: bool = False,
    volumes: int = FULL_HARDWARE_VOLUMES,
    placement: str = "hash",
) -> Dict[str, SimulationResult]:
    """Replay one trace under several policies (one Figure 2-4 panel)."""
    chosen = list(policies) if policies is not None else list(EXPERIMENT_POLICIES)
    results: Dict[str, SimulationResult] = {}
    for policy_name in chosen:
        results[policy_name] = run_delayed_write_experiment(
            trace_name,
            policy_name,
            memory_scale=memory_scale,
            trace_scale=trace_scale,
            seed=seed,
            full_hardware=full_hardware,
            volumes=volumes,
            placement=placement,
        )
    return results


def mean_latency_table(
    trace_names: Optional[Sequence[str]] = None,
    policies: Optional[Iterable[str]] = None,
    memory_scale: float = DEFAULT_MEMORY_SCALE,
    trace_scale: float = 1.0,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Figure 5: mean file-system latency for every trace under every policy.

    Returns ``{trace: {policy: mean latency in seconds}}``.
    """
    traces = list(trace_names) if trace_names is not None else list(SPRITE_TRACE_NAMES)
    table: Dict[str, Dict[str, float]] = {}
    for trace_name in traces:
        results = run_policy_comparison(
            trace_name,
            policies=policies,
            memory_scale=memory_scale,
            trace_scale=trace_scale,
            seed=seed,
        )
        table[trace_name] = {name: result.mean_latency for name, result in results.items()}
    return table
