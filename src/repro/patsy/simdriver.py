"""Simulated disk drivers.

"Simulated disks are accessed through simulation disk-drivers.  These
disk-drivers provide the same functions as their real counterparts, but also
provide mechanisms to simulate the sending and receiving of operations from
disk.  The simulated disk-drivers have exactly the same interface as a real
disk-driver: the differences are in the internal implementation."

The driver packages the operation in the shared I/O-request structure,
acquires the host/disk connection to send the command (and, for writes, the
data), hands the request to the simulated disk and waits for the disk to
signal completion.  The disk re-acquires the connection itself to return
read data, modelling SCSI disconnect/reconnect.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.driver import DiskDriver, IOKind, IORequest
from repro.core.iosched import IoScheduler
from repro.core.scheduler import Scheduler
from repro.patsy.bus import ScsiBus
from repro.patsy.simdisk import SimulatedDisk

__all__ = ["SimulatedDiskDriver"]

#: size of a SCSI command descriptor block, for charging command transfer time.
COMMAND_BYTES = 32


class SimulatedDiskDriver(DiskDriver):
    """A disk driver whose back-end is a :class:`SimulatedDisk`."""

    def __init__(
        self,
        scheduler: Scheduler,
        disk: SimulatedDisk,
        bus: Optional[ScsiBus] = None,
        name: str = "sim-disk0",
        io_scheduler: Optional[IoScheduler] = None,
        node: int = 0,
    ):
        self.disk = disk
        self.bus = bus if bus is not None else disk.bus
        super().__init__(
            scheduler,
            name=name,
            io_scheduler=io_scheduler,
            num_sectors=disk.num_sectors,
            sector_size=disk.spec.sector_size,
            node=node,
        )

    def _perform(self, request: IORequest) -> Generator[Any, Any, None]:
        # Send the command (and write data) over the shared connection, then
        # disconnect while the disk works.
        command_bytes = COMMAND_BYTES
        if request.kind is IOKind.WRITE:
            command_bytes += request.nbytes
        yield from self.bus.transfer(command_bytes)
        completion = self.scheduler.new_event(f"{self.name}-disk-done-{request.request_id}")
        self.disk.submit(request, completion)
        yield from completion.wait()
