"""The Patsy simulator: trace replay over a fully simulated file system.

This is the "general simulation class" of Section 4: it owns the simulated
hardware (disks, buses), the file-system components instantiated from the
cut-and-paste library (cache, storage layout, client interface), the trace
replay threads ("clients are modeled by separate threads of control"), and
the measurement machinery ("this class measures how long it takes before an
operation completes; the measurements are shown every 15 minutes of
simulation time and of the overall simulation").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.config import SimulationConfig, small_test_config
from repro.core.cache import BlockCache
from repro.core.client import AbstractClientInterface
from repro.core.clock import VirtualClock
from repro.core.datamover import DataMover
from repro.core.filesystem import FileSystem
from repro.core.flush import ShardedFlushPolicy, make_flush_policy
from repro.core.iosched import make_io_scheduler
from repro.core.scheduler import Scheduler
from repro.core.storage.array import (
    RoutedLayout,
    ShardedCache,
    VolumeSet,
    make_placement_policy,
)
from repro.core.storage.cleaner import CleanerDaemon, CleanerSet, make_cleaner
from repro.core.storage.ffs import FfsLikeLayout
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import Volume
from repro.errors import FileSystemError, TraceError
from repro.patsy.bus import ScsiBus
from repro.patsy.diskspec import disk_spec_by_name
from repro.patsy.simdisk import SimulatedDisk
from repro.patsy.simdriver import SimulatedDiskDriver
from repro.patsy.stats import DEFAULT_PLUGINS, LatencyRecorder, StatisticsPlugin
from repro.patsy.traces import (
    TraceRecord,
    iter_trace,
    load_trace,
    records_by_client,
    scan_trace_client_counts,
)

__all__ = ["PatsySimulator", "SimulationResult", "TraceSource"]

#: anything the replayer accepts as a trace: a materialised record list, a
#: path to an on-disk trace, an open text stream, or any record iterator
#: (e.g. ``iter_sprite_trace(...)``).
TraceSource = Union[Sequence[TraceRecord], str, Path, Iterable[TraceRecord]]


def _route_to_shard_zero(file_id: int, block_no: int) -> int:
    """Cache router for the "unified" shard policy: one cache, N volumes."""
    return 0


class _TraceDemux:
    """Pull-based demultiplexer feeding per-client replay threads from one
    shared record iterator.

    There is no pump thread: when a client thread needs its next record and
    its queue is empty, it synchronously pulls from the iterator, parking
    records that belong to other clients on their queues.  Keeping the pull
    inside the consuming thread means streaming replay presents *exactly*
    the same runnable-thread sequence to the scheduler as materialised
    replay, so the two modes are reproducibly identical under the seeded
    random scheduling policy.  Buffering is bounded by the timestamp skew
    between clients (tracked in :attr:`peak_buffered`), never by the trace
    length.

    ``remaining`` optionally pre-declares per-client record counts (from a
    scan pass); with it, a client whose records have run out gets ``None``
    immediately instead of pulling — and buffering — the rest of the trace.
    Without counts (discovery mode over an arbitrary iterator) the last
    pull of an early-finishing client can buffer the remaining trace.
    """

    __slots__ = ("_iter", "_queues", "_finished", "_exhausted", "_on_new_client",
                 "_remaining", "buffered", "peak_buffered", "records_read")

    def __init__(
        self,
        records: Iterable[TraceRecord],
        on_new_client: Optional[Callable[[int], None]] = None,
        remaining: Optional[Dict[int, int]] = None,
    ):
        self._iter = iter(records)
        self._queues: Dict[int, deque] = {}
        self._finished: set[int] = set()
        self._exhausted = False
        self._on_new_client = on_new_client
        self._remaining = dict(remaining) if remaining is not None else None
        self.buffered = 0
        self.peak_buffered = 0
        self.records_read = 0

    def add_client(self, client: int) -> None:
        """Pre-register a client (no new-client callback fires for it)."""
        if client not in self._queues:
            self._queues[client] = deque()

    def _enqueue(self, record: TraceRecord) -> None:
        client = record.client
        if client in self._finished:
            return
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            if self._on_new_client is not None:
                self._on_new_client(client)
        queue.append(record)
        self.buffered += 1
        if self.buffered > self.peak_buffered:
            self.peak_buffered = self.buffered

    def prime(self) -> bool:
        """Read ahead until at least one client is known (discovery mode).
        Returns False when the trace is empty."""
        if self._queues:
            return True
        record = next(self._iter, None)
        if record is None:
            self._exhausted = True
            return False
        self.records_read += 1
        self._enqueue(record)
        return True

    def next_record(self, client: int) -> Optional[TraceRecord]:
        """The next record for ``client``, pulling the shared iterator as
        far as needed; None once the trace holds nothing more for it."""
        queue = self._queues.get(client)
        if queue:
            self.buffered -= 1
            return queue.popleft()
        remaining = self._remaining
        if remaining is not None and not remaining.get(client):
            return None
        if not self._exhausted:
            for record in self._iter:
                self.records_read += 1
                owner = record.client
                if remaining is not None and owner in remaining:
                    remaining[owner] -= 1
                if owner == client:
                    return record
                self._enqueue(record)
            self._exhausted = True
        return None

    def finish_client(self, client: int) -> None:
        """Drop a finished client's queue (and any late records for it)."""
        self._finished.add(client)
        queue = self._queues.pop(client, None)
        if queue:
            self.buffered -= len(queue)


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    trace_name: str = ""
    policy_name: str = ""
    simulated_time: float = 0.0
    operations: int = 0
    errors: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    plugin_reports: Dict[str, Any] = field(default_factory=dict)
    #: dirty blocks that died in memory and never cost a disk write.
    write_savings_blocks: int = 0
    blocks_written_to_disk: int = 0
    #: streaming-replay bookkeeping (peak demux buffering etc.); empty for
    #: materialised replay.
    stream_stats: Dict[str, Any] = field(default_factory=dict)
    #: per-volume breakdown and array-level rollup (storage-array runs only;
    #: empty — and absent from :meth:`summary` — for single-volume runs, so
    #: legacy summaries stay byte-identical).
    volume_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        return self.latency.mean_latency()

    def cdf(self, op: Optional[str] = None) -> List[tuple[float, float]]:
        return self.latency.cdf(op)

    def per_client_latency(self) -> Dict[int, dict]:
        """Per-client operation counts, mean latency and percentiles."""
        return self.latency.per_client_summary()

    def summary(self) -> dict:
        return {
            "trace": self.trace_name,
            "policy": self.policy_name,
            "simulated_time": self.simulated_time,
            "operations": self.operations,
            "errors": self.errors,
            "mean_latency": self.mean_latency,
            "median_latency": self.latency.percentile(0.5),
            "p95_latency": self.latency.percentile(0.95),
            "cache_hit_rate": self.cache_stats.get("hit_rate", 0.0),
            "write_savings_blocks": self.write_savings_blocks,
            "blocks_written_to_disk": self.blocks_written_to_disk,
            "per_client_latency": self.per_client_latency(),
        }


class PatsySimulator:
    """A complete off-line file-system simulator instantiated from the library."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        plugins: Optional[Iterable[type]] = None,
    ):
        self.config = config if config is not None else small_test_config()
        cfg = self.config
        self.scheduler = Scheduler(clock=VirtualClock(), seed=cfg.seed)

        # --- simulated hardware: buses, disks, drivers ------------------------
        # The array config, when present, owns the hardware complement (the
        # Sun 4/280's ten-disks-on-three-buses); the host config keeps
        # supplying the per-device parameters either way.
        host = cfg.host
        array = cfg.array
        num_disks = array.total_disks if array is not None else host.num_disks
        num_buses = array.buses if array is not None else host.num_buses
        bus_for_disk = array.bus_for_disk if array is not None else host.bus_for_disk
        spec = disk_spec_by_name(host.disk_model)
        self.buses: List[ScsiBus] = [
            ScsiBus(
                self.scheduler,
                name=f"scsi{i}",
                bandwidth=host.bus_bandwidth,
                arbitration_overhead=host.bus_overhead,
            )
            for i in range(num_buses)
        ]
        self.disks: List[SimulatedDisk] = []
        self.drivers: List[SimulatedDiskDriver] = []
        for index in range(num_disks):
            bus = self.buses[bus_for_disk(index)]
            disk = SimulatedDisk(self.scheduler, spec, bus, name=f"disk{index}")
            driver = SimulatedDiskDriver(
                self.scheduler,
                disk,
                bus,
                name=f"sim-disk{index}",
                io_scheduler=make_io_scheduler(host.io_scheduler),
            )
            self.disks.append(disk)
            self.drivers.append(driver)

        # --- file-system components from the cut-and-paste library --------------
        self.placement = None
        self.cleaner = None
        if array is None:
            self.volume = Volume(self.drivers, block_size=cfg.cache.block_size)
            self.layout = self._build_layout_for(self.volume, cfg.seed)
            self.cache = BlockCache(self.scheduler, cfg.cache, with_data=False)
            self.datamover = DataMover(charge_time=True, bandwidth=host.memory_copy_bandwidth)
            self.flush_policy = make_flush_policy(cfg.flush)
            if isinstance(self.layout, LogStructuredLayout):
                self.cleaner = CleanerDaemon(
                    self.scheduler,
                    self.layout,
                    make_cleaner(cfg.layout.cleaner_policy, cfg.layout.cleaner_age_scale),
                    low_water=cfg.layout.cleaner_low_water,
                    high_water=cfg.layout.cleaner_high_water,
                )
        else:
            self.placement = make_placement_policy(
                array.placement, array.volumes, stripe_unit=array.stripe_unit_blocks
            )
            volumes = [
                Volume(
                    [self.drivers[i] for i in array.disks_of_volume(v)],
                    block_size=cfg.cache.block_size,
                )
                for v in range(array.volumes)
            ]
            self.volume = VolumeSet(volumes)
            sublayouts = [
                self._build_layout_for(
                    volumes[v], cfg.seed + v, inode_base=v, inode_stride=array.volumes
                )
                for v in range(array.volumes)
            ]
            self.layout = RoutedLayout(
                self.scheduler,
                self.volume,
                sublayouts,
                self.placement,
                block_size=cfg.cache.block_size,
                seed=cfg.seed,
            )
            if array.shard == "per-volume":
                shard_config = replace(
                    cfg.cache,
                    size_bytes=max(
                        cfg.cache.size_bytes // array.volumes, cfg.cache.block_size
                    ),
                )
                shards = [
                    BlockCache(self.scheduler, shard_config, with_data=False)
                    for _ in range(array.volumes)
                ]
                router = self.placement.volume_for_block
            else:  # "unified": one cache over all volumes
                shards = [BlockCache(self.scheduler, cfg.cache, with_data=False)]
                router = _route_to_shard_zero
            self.cache = ShardedCache(shards, router)
            self.datamover = DataMover(charge_time=True, bandwidth=host.memory_copy_bandwidth)
            self.flush_policy = ShardedFlushPolicy(
                cfg.flush,
                high_water=array.governor_high_water,
                low_water=array.governor_low_water,
                check_interval=array.governor_interval,
            )
            lfs_daemons = [
                CleanerDaemon(
                    self.scheduler,
                    sub,
                    make_cleaner(cfg.layout.cleaner_policy, cfg.layout.cleaner_age_scale),
                    low_water=cfg.layout.cleaner_low_water,
                    high_water=cfg.layout.cleaner_high_water,
                )
                for sub in sublayouts
                if isinstance(sub, LogStructuredLayout)
            ]
            if lfs_daemons:
                self.cleaner = CleanerSet(lfs_daemons)
        self.fs = FileSystem(
            self.scheduler,
            self.cache,
            self.layout,
            self.datamover,
            flush_policy=self.flush_policy,
            cleaner=self.cleaner,
        )
        self.client = AbstractClientInterface(self.fs, auto_materialize=True)

        # --- measurement -----------------------------------------------------------
        self.latency = LatencyRecorder(report_interval=cfg.report_interval)
        self.plugins: List[StatisticsPlugin] = [cls() for cls in (plugins or DEFAULT_PLUGINS)]
        self.errors = 0
        self._mounted = False
        self._stream_stats: Dict[str, Any] = {}

    # ------------------------------------------------------------------ construction helpers

    def _build_layout_for(
        self, volume: Volume, seed: int, inode_base: int = 0, inode_stride: int = 1
    ):
        """One storage layout over one volume (a whole single-volume system,
        or member ``inode_base`` of an ``inode_stride``-volume array)."""
        cfg = self.config
        if cfg.layout.kind == "lfs":
            return LogStructuredLayout(
                self.scheduler,
                volume,
                block_size=cfg.cache.block_size,
                segment_blocks=max(cfg.layout.segment_size // cfg.cache.block_size, 4),
                simulated=True,
                seed=seed,
            )
        return FfsLikeLayout(
            self.scheduler,
            volume,
            block_size=cfg.cache.block_size,
            simulated=True,
            seed=seed,
            # FFS maps inode numbers to table slots; a member of an array
            # serves only its own arithmetic progression of numbers, so the
            # stride keeps its slot usage dense (full table capacity).
            inode_base=inode_base,
            inode_stride=inode_stride,
        )

    # ------------------------------------------------------------------ lifecycle

    def mount(self) -> None:
        """Mount the simulated file system (idempotent)."""
        if self._mounted:
            return
        thread = self.scheduler.spawn(self.fs.mount, False, name="mount")
        self.scheduler.run_until_complete(thread)
        self._mounted = True

    # ------------------------------------------------------------------ replay

    def replay(
        self,
        records: TraceSource,
        trace_name: str = "",
        max_time: Optional[float] = None,
    ) -> SimulationResult:
        """Replay a trace and return the measurements.

        ``records`` may be a materialised record list, a path to an on-disk
        trace, an open text stream, or any record iterator.  With
        ``config.streaming`` set (or for any non-rewindable source) the
        streaming engine replays without materialising the trace; both
        engines produce identical measurements on the same trace.
        """
        is_path = isinstance(records, (str, Path))
        is_sequence = not is_path and isinstance(records, Sequence)
        if self.config.streaming or not (is_path or is_sequence):
            return self.replay_stream(records, trace_name=trace_name, max_time=max_time)
        if is_path:
            records = load_trace(records)
        if not records:
            raise TraceError("cannot replay an empty trace")
        self.mount()
        limit = max_time if max_time is not None else self.config.max_simulated_time
        streams = records_by_client(records)
        threads = [
            self.scheduler.spawn(
                self._client_thread, client, stream, limit, name=f"client-{client}"
            )
            for client, stream in sorted(streams.items())
        ]
        for thread in threads:
            self.scheduler.run_until_complete(thread)
        self.latency.finish()
        return self.build_result(trace_name)

    def replay_stream(
        self,
        source: TraceSource,
        trace_name: str = "",
        max_time: Optional[float] = None,
        clients: Optional[Iterable[int]] = None,
    ) -> SimulationResult:
        """Replay a trace in streaming mode: records are pulled from the
        source one at a time and demultiplexed into per-client threads, so
        memory is constant in the trace length.

        ``clients`` pre-declares the client population; when omitted it is
        recovered with a cheap scan pass for on-disk traces (or from the
        sequence itself), so streaming replay spawns the same client
        threads in the same order as materialised replay and the two modes
        yield identical measurements on a per-client time-ordered trace.
        Sources that cannot be enumerated up-front (generators, streams)
        fall back to discovery: a client's thread starts when its first
        record surfaces.
        """
        self.mount()
        limit = max_time if max_time is not None else self.config.max_simulated_time
        records, known_clients, counts = self._open_trace_source(source, clients)
        threads: List[Any] = []
        demux: _TraceDemux

        def spawn_client(client: int) -> None:
            threads.append(
                self.scheduler.spawn(
                    self._client_thread_streaming,
                    client,
                    demux,
                    limit,
                    name=f"client-{client}",
                )
            )

        demux = _TraceDemux(records, on_new_client=spawn_client, remaining=counts)
        if known_clients is not None:
            if not known_clients:
                raise TraceError("cannot replay an empty trace")
            for client in sorted(known_clients):
                demux.add_client(client)
            for client in sorted(known_clients):
                spawn_client(client)
        elif not demux.prime():
            raise TraceError("cannot replay an empty trace")
        index = 0
        while index < len(threads):  # discovery may append threads mid-run
            self.scheduler.run_until_complete(threads[index])
            index += 1
        self.latency.finish()
        self._stream_stats = {
            "records_replayed": demux.records_read,
            "peak_buffered_records": demux.peak_buffered,
            "clients": len(threads),
        }
        return self.build_result(trace_name)

    def _open_trace_source(
        self, source: TraceSource, clients: Optional[Iterable[int]]
    ) -> tuple[Iterator[TraceRecord], Optional[List[int]], Optional[Dict[int, int]]]:
        """Resolve a trace source to (record iterator, known client ids,
        per-client record counts).  Counts — available whenever the source
        can be enumerated cheaply — let the demux stop a finished client
        from pulling (and buffering) the rest of the trace."""
        known = sorted(set(clients)) if clients is not None else None
        if isinstance(source, (str, Path)):
            counts = scan_trace_client_counts(source)
            if known is None:
                known = sorted(counts)
            return iter_trace(source), known, counts
        if isinstance(source, Sequence):
            counts = {}
            for record in source:
                counts[record.client] = counts.get(record.client, 0) + 1
            if known is None:
                known = sorted(counts)
            return iter(source), known, counts
        if hasattr(source, "read"):
            return iter_trace(source), known, None
        return iter(source), known, None

    def run_operations(self, records: Sequence[TraceRecord]) -> SimulationResult:
        """Convenience wrapper used by tests: replay and return the result."""
        return self.replay(records)

    def _client_thread_streaming(
        self, client: int, demux: _TraceDemux, max_time: Optional[float]
    ) -> Generator[Any, Any, None]:
        """Streaming twin of :meth:`_client_thread`: identical yield
        sequence, but records are pulled from the demux on demand (the pull
        itself never yields, so the scheduler sees the same execution as
        the materialised path)."""
        handles: Dict[str, int] = {}
        while True:
            record = demux.next_record(client)
            if record is None:
                break
            if max_time is not None and record.timestamp > max_time:
                break
            delay = record.timestamp - self.scheduler.now
            if delay > 0:
                yield from self.scheduler.sleep(delay)
            started = self.scheduler.now
            try:
                yield from self._execute(record, handles)
            except FileSystemError:
                self.errors += 1
            self.latency.record(started, record.op, self.scheduler.now - started, client)
        demux.finish_client(client)
        # Close anything the trace left open.
        for path, handle in list(handles.items()):
            try:
                yield from self.client.close(handle)
            except FileSystemError:
                self.errors += 1
            handles.pop(path, None)

    def _client_thread(
        self, client: int, records: List[TraceRecord], max_time: Optional[float]
    ) -> Generator[Any, Any, None]:
        handles: Dict[str, int] = {}
        for record in records:
            if max_time is not None and record.timestamp > max_time:
                break
            delay = record.timestamp - self.scheduler.now
            if delay > 0:
                yield from self.scheduler.sleep(delay)
            started = self.scheduler.now
            try:
                yield from self._execute(record, handles)
            except FileSystemError:
                self.errors += 1
            self.latency.record(started, record.op, self.scheduler.now - started, client)
        # Close anything the trace left open.
        for path, handle in list(handles.items()):
            try:
                yield from self.client.close(handle)
            except FileSystemError:
                self.errors += 1
            handles.pop(path, None)

    def _execute(self, record: TraceRecord, handles: Dict[str, int]) -> Generator[Any, Any, None]:
        client = self.client
        op = record.op
        path = record.path
        if op == "open":
            if path not in handles:
                handles[path] = yield from client.open(path, create=True)
        elif op == "close":
            handle = handles.pop(path, None)
            if handle is not None:
                yield from client.close(handle)
        elif op == "create":
            if path not in handles:
                handles[path] = yield from client.create(path, exclusive=False)
        elif op == "read":
            handle = handles.get(path)
            if handle is not None:
                yield from client.read(handle, record.offset, record.size)
            else:
                yield from client.read_file(path, record.offset, record.size)
        elif op == "write":
            handle = handles.get(path)
            if handle is not None:
                yield from client.write(handle, record.offset, length=record.size)
            else:
                yield from client.write_file(path, record.offset, length=record.size)
        elif op == "truncate":
            yield from client.truncate_path(path, record.size)
        elif op == "unlink":
            yield from client.unlink(path)
        elif op == "mkdir":
            yield from client.mkdir(path)
        elif op == "rmdir":
            yield from client.rmdir(path)
        elif op == "stat":
            yield from client.stat(path)
        elif op == "readdir":
            yield from client.readdir(path)
        elif op == "rename":
            yield from client.rename(path, record.path2)
        elif op == "symlink":
            yield from client.symlink(record.path2 or "/", path)
        elif op == "fsync":
            handle = handles.get(path)
            if handle is not None:
                yield from client.fsync(handle)
            else:
                yield from client.sync()
        else:  # pragma: no cover - TraceRecord validates operations
            raise TraceError(f"unsupported trace operation {op!r}")

    # ------------------------------------------------------------------ results

    def build_result(self, trace_name: str = "") -> SimulationResult:
        reports = {}
        for plugin in self.plugins:
            reports[plugin.name] = plugin.collect(self)
        cache_stats = self.cache.stats.snapshot()
        cache_stats["replacement"] = self.cache.policy.name
        for key, value in self.cache.policy.snapshot().items():
            cache_stats[f"policy_{key}"] = value
        result = SimulationResult(
            trace_name=trace_name,
            policy_name=self.config.flush.policy,
            simulated_time=self.scheduler.now,
            operations=self.latency.count,
            errors=self.errors,
            latency=self.latency,
            cache_stats=cache_stats,
            plugin_reports=reports,
            write_savings_blocks=self.cache.stats.dirty_blocks_discarded,
            blocks_written_to_disk=self.cache.stats.blocks_written,
            stream_stats=dict(self._stream_stats),
            volume_stats=self.collect_volume_stats(),
        )
        return result

    def collect_volume_stats(self) -> Dict[str, Any]:
        """Per-volume cache/layout/disk/flush breakdown plus an array-level
        rollup.  Empty for single-volume (non-array) configurations."""
        array = self.config.array
        if array is None:
            return {}
        assert isinstance(self.layout, RoutedLayout)
        assert isinstance(self.cache, ShardedCache)
        elapsed = max(self.scheduler.now, 1e-9)
        per_volume: Dict[str, Any] = {}
        # Per-volume flush counters only exist with per-volume shards; a
        # unified cache has one flush daemon for the whole array, whose
        # counters belong in the rollup, not attributed to any one volume.
        flush_children: List[dict] = []
        if isinstance(self.flush_policy, ShardedFlushPolicy):
            children = self.flush_policy.shard_stats()
            if len(children) == array.volumes:
                flush_children = children
        for v in range(array.volumes):
            sub = self.layout.sublayouts[v]
            disks = {}
            for index in array.disks_of_volume(v):
                driver = self.drivers[index]
                disks[driver.name] = {
                    "operations": driver.stats.operations,
                    "utilisation": driver.stats.utilisation(elapsed),
                    "mean_queue_length": driver.stats.mean_queue_length(),
                    "mean_response_time": driver.stats.mean_response_time(),
                }
            entry: Dict[str, Any] = {
                "disks": disks,
                "layout": {
                    "kind": sub.name,
                    "disk_reads": sub.stats.disk_reads,
                    "disk_writes": sub.stats.disk_writes,
                    "blocks_read": sub.stats.blocks_read,
                    "blocks_written": sub.stats.blocks_written,
                    "free_blocks": sub.free_blocks,
                },
            }
            if len(self.cache.shards) == array.volumes:
                entry["cache"] = self.cache.shards[v].stats.snapshot()
            if v < len(flush_children):
                entry["flush"] = flush_children[v]
            per_volume[f"vol{v}"] = entry
        rollup: Dict[str, Any] = {
            "volumes": array.volumes,
            "disks": array.total_disks,
            "buses": array.buses,
            "placement": array.placement,
            "shard": array.shard,
            "cache_hit_rate": self.cache.stats.hit_rate,
            "blocks_written": self.cache.stats.blocks_written,
            "disk_operations": sum(d.stats.operations for d in self.drivers),
            "mean_disk_utilisation": (
                sum(d.stats.utilisation(elapsed) for d in self.drivers) / len(self.drivers)
            ),
        }
        rollup["layout"] = self.layout.combined_stats()
        if isinstance(self.flush_policy, ShardedFlushPolicy):
            rollup["flush"] = self.flush_policy.stats()
            rollup["governor_wakeups"] = self.flush_policy.governor_wakeups
            rollup["governor_flushes"] = self.flush_policy.governor_flushes
        return {"per_volume": per_volume, "rollup": rollup}

    def collect_statistics(self) -> Dict[str, Any]:
        """All plug-in reports (without building a full result object)."""
        return {plugin.name: plugin.collect(self) for plugin in self.plugins}
