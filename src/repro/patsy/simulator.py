"""The Patsy simulator: trace replay over a fully simulated file system.

This is the "general simulation class" of Section 4: it owns the simulated
hardware (disks, buses), the file-system components instantiated from the
cut-and-paste library (cache, storage layout, client interface), the trace
replay threads ("clients are modeled by separate threads of control"), and
the measurement machinery ("this class measures how long it takes before an
operation completes; the measurements are shown every 15 minutes of
simulation time and of the overall simulation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Iterable, List, Optional, Sequence

from repro.config import SimulationConfig, small_test_config
from repro.core.cache import BlockCache
from repro.core.client import AbstractClientInterface
from repro.core.clock import VirtualClock
from repro.core.datamover import DataMover
from repro.core.filesystem import FileSystem
from repro.core.flush import make_flush_policy
from repro.core.iosched import make_io_scheduler
from repro.core.scheduler import Scheduler
from repro.core.storage.cleaner import CleanerDaemon, make_cleaner
from repro.core.storage.ffs import FfsLikeLayout
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import Volume
from repro.errors import FileSystemError, TraceError
from repro.patsy.bus import ScsiBus
from repro.patsy.diskspec import disk_spec_by_name
from repro.patsy.simdisk import SimulatedDisk
from repro.patsy.simdriver import SimulatedDiskDriver
from repro.patsy.stats import DEFAULT_PLUGINS, LatencyRecorder, StatisticsPlugin
from repro.patsy.traces import TraceRecord, records_by_client

__all__ = ["PatsySimulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    trace_name: str = ""
    policy_name: str = ""
    simulated_time: float = 0.0
    operations: int = 0
    errors: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    plugin_reports: Dict[str, Any] = field(default_factory=dict)
    #: dirty blocks that died in memory and never cost a disk write.
    write_savings_blocks: int = 0
    blocks_written_to_disk: int = 0

    @property
    def mean_latency(self) -> float:
        return self.latency.mean_latency()

    def cdf(self, op: Optional[str] = None) -> List[tuple[float, float]]:
        return self.latency.cdf(op)

    def summary(self) -> dict:
        return {
            "trace": self.trace_name,
            "policy": self.policy_name,
            "simulated_time": self.simulated_time,
            "operations": self.operations,
            "errors": self.errors,
            "mean_latency": self.mean_latency,
            "median_latency": self.latency.percentile(0.5),
            "p95_latency": self.latency.percentile(0.95),
            "cache_hit_rate": self.cache_stats.get("hit_rate", 0.0),
            "write_savings_blocks": self.write_savings_blocks,
            "blocks_written_to_disk": self.blocks_written_to_disk,
        }


class PatsySimulator:
    """A complete off-line file-system simulator instantiated from the library."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        plugins: Optional[Iterable[type]] = None,
    ):
        self.config = config if config is not None else small_test_config()
        cfg = self.config
        self.scheduler = Scheduler(clock=VirtualClock(), seed=cfg.seed)

        # --- simulated hardware: buses, disks, drivers ------------------------
        host = cfg.host
        spec = disk_spec_by_name(host.disk_model)
        self.buses: List[ScsiBus] = [
            ScsiBus(
                self.scheduler,
                name=f"scsi{i}",
                bandwidth=host.bus_bandwidth,
                arbitration_overhead=host.bus_overhead,
            )
            for i in range(host.num_buses)
        ]
        self.disks: List[SimulatedDisk] = []
        self.drivers: List[SimulatedDiskDriver] = []
        for index in range(host.num_disks):
            bus = self.buses[host.bus_for_disk(index)]
            disk = SimulatedDisk(self.scheduler, spec, bus, name=f"disk{index}")
            driver = SimulatedDiskDriver(
                self.scheduler,
                disk,
                bus,
                name=f"sim-disk{index}",
                io_scheduler=make_io_scheduler(host.io_scheduler),
            )
            self.disks.append(disk)
            self.drivers.append(driver)

        # --- file-system components from the cut-and-paste library --------------
        self.volume = Volume(self.drivers, block_size=cfg.cache.block_size)
        self.layout = self._build_layout()
        self.cache = BlockCache(self.scheduler, cfg.cache, with_data=False)
        self.datamover = DataMover(charge_time=True, bandwidth=host.memory_copy_bandwidth)
        self.flush_policy = make_flush_policy(cfg.flush)
        cleaner = None
        if isinstance(self.layout, LogStructuredLayout):
            cleaner = CleanerDaemon(
                self.scheduler,
                self.layout,
                make_cleaner(cfg.layout.cleaner_policy),
                low_water=cfg.layout.cleaner_low_water,
                high_water=cfg.layout.cleaner_high_water,
            )
        self.fs = FileSystem(
            self.scheduler,
            self.cache,
            self.layout,
            self.datamover,
            flush_policy=self.flush_policy,
            cleaner=cleaner,
        )
        self.client = AbstractClientInterface(self.fs, auto_materialize=True)

        # --- measurement -----------------------------------------------------------
        self.latency = LatencyRecorder(report_interval=cfg.report_interval)
        self.plugins: List[StatisticsPlugin] = [cls() for cls in (plugins or DEFAULT_PLUGINS)]
        self.errors = 0
        self._mounted = False

    # ------------------------------------------------------------------ construction helpers

    def _build_layout(self):
        cfg = self.config
        if cfg.layout.kind == "lfs":
            return LogStructuredLayout(
                self.scheduler,
                self.volume,
                block_size=cfg.cache.block_size,
                segment_blocks=max(cfg.layout.segment_size // cfg.cache.block_size, 4),
                simulated=True,
                seed=cfg.seed,
            )
        return FfsLikeLayout(
            self.scheduler,
            self.volume,
            block_size=cfg.cache.block_size,
            simulated=True,
            seed=cfg.seed,
        )

    # ------------------------------------------------------------------ lifecycle

    def mount(self) -> None:
        """Mount the simulated file system (idempotent)."""
        if self._mounted:
            return
        thread = self.scheduler.spawn(self.fs.mount, False, name="mount")
        self.scheduler.run_until_complete(thread)
        self._mounted = True

    # ------------------------------------------------------------------ replay

    def replay(
        self,
        records: Sequence[TraceRecord],
        trace_name: str = "",
        max_time: Optional[float] = None,
    ) -> SimulationResult:
        """Replay a trace and return the measurements."""
        if not records:
            raise TraceError("cannot replay an empty trace")
        self.mount()
        limit = max_time if max_time is not None else self.config.max_simulated_time
        streams = records_by_client(records)
        threads = [
            self.scheduler.spawn(
                self._client_thread, client, stream, limit, name=f"client-{client}"
            )
            for client, stream in sorted(streams.items())
        ]
        for thread in threads:
            self.scheduler.run_until_complete(thread)
        self.latency.finish()
        return self.build_result(trace_name)

    def run_operations(self, records: Sequence[TraceRecord]) -> SimulationResult:
        """Convenience wrapper used by tests: replay and return the result."""
        return self.replay(records)

    def _client_thread(
        self, client: int, records: List[TraceRecord], max_time: Optional[float]
    ) -> Generator[Any, Any, None]:
        handles: Dict[str, int] = {}
        for record in records:
            if max_time is not None and record.timestamp > max_time:
                break
            delay = record.timestamp - self.scheduler.now
            if delay > 0:
                yield from self.scheduler.sleep(delay)
            started = self.scheduler.now
            try:
                yield from self._execute(record, handles)
            except FileSystemError:
                self.errors += 1
            self.latency.record(started, record.op, self.scheduler.now - started, client)
        # Close anything the trace left open.
        for path, handle in list(handles.items()):
            try:
                yield from self.client.close(handle)
            except FileSystemError:
                self.errors += 1
            handles.pop(path, None)

    def _execute(self, record: TraceRecord, handles: Dict[str, int]) -> Generator[Any, Any, None]:
        client = self.client
        op = record.op
        path = record.path
        if op == "open":
            if path not in handles:
                handles[path] = yield from client.open(path, create=True)
        elif op == "close":
            handle = handles.pop(path, None)
            if handle is not None:
                yield from client.close(handle)
        elif op == "create":
            if path not in handles:
                handles[path] = yield from client.create(path, exclusive=False)
        elif op == "read":
            handle = handles.get(path)
            if handle is not None:
                yield from client.read(handle, record.offset, record.size)
            else:
                yield from client.read_file(path, record.offset, record.size)
        elif op == "write":
            handle = handles.get(path)
            if handle is not None:
                yield from client.write(handle, record.offset, length=record.size)
            else:
                yield from client.write_file(path, record.offset, length=record.size)
        elif op == "truncate":
            yield from client.truncate_path(path, record.size)
        elif op == "unlink":
            yield from client.unlink(path)
        elif op == "mkdir":
            yield from client.mkdir(path)
        elif op == "rmdir":
            yield from client.rmdir(path)
        elif op == "stat":
            yield from client.stat(path)
        elif op == "readdir":
            yield from client.readdir(path)
        elif op == "rename":
            yield from client.rename(path, record.path2)
        elif op == "symlink":
            yield from client.symlink(record.path2 or "/", path)
        elif op == "fsync":
            handle = handles.get(path)
            if handle is not None:
                yield from client.fsync(handle)
            else:
                yield from client.sync()
        else:  # pragma: no cover - TraceRecord validates operations
            raise TraceError(f"unsupported trace operation {op!r}")

    # ------------------------------------------------------------------ results

    def build_result(self, trace_name: str = "") -> SimulationResult:
        reports = {}
        for plugin in self.plugins:
            reports[plugin.name] = plugin.collect(self)
        cache_stats = self.cache.stats.snapshot()
        cache_stats["replacement"] = self.cache.policy.name
        for key, value in self.cache.policy.snapshot().items():
            cache_stats[f"policy_{key}"] = value
        result = SimulationResult(
            trace_name=trace_name,
            policy_name=self.config.flush.policy,
            simulated_time=self.scheduler.now,
            operations=self.latency.count,
            errors=self.errors,
            latency=self.latency,
            cache_stats=cache_stats,
            plugin_reports=reports,
            write_savings_blocks=self.cache.stats.dirty_blocks_discarded,
            blocks_written_to_disk=self.cache.stats.blocks_written,
        )
        return result

    def collect_statistics(self) -> Dict[str, Any]:
        """All plug-in reports (without building a full result object)."""
        return {plugin.name: plugin.collect(self) for plugin in self.plugins}
