"""The Patsy simulator: trace replay over a fully simulated file system.

This is the "general simulation class" of Section 4: it owns the simulated
hardware (disks, buses), the file-system components instantiated from the
cut-and-paste library (cache, storage layout, client interface), the trace
replay threads ("clients are modeled by separate threads of control"), and
the measurement machinery ("this class measures how long it takes before an
operation completes; the measurements are shown every 15 minutes of
simulation time and of the overall simulation").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.assembly.bindings import SimulatedBinding
from repro.assembly.builder import StorageStack, build_stack
from repro.assembly.spec import StackSpec
from repro.config import SimulationConfig, small_test_config
from repro.core.faults import FaultEvent, FaultInjector
from repro.core.flush import ShardedFlushPolicy
from repro.core.scheduler import Delay
from repro.core.storage.array import RoutedLayout, ShardedCache
from repro.errors import ConfigurationError, FileSystemError, TraceError
from repro.patsy.stats import DEFAULT_PLUGINS, LatencyRecorder, StatisticsPlugin
from repro.patsy.traces import (
    TraceRecord,
    iter_trace,
    load_trace,
    records_by_client,
    scan_trace_client_counts,
)

__all__ = ["PatsySimulator", "SimulationResult", "TraceSource"]

#: anything the replayer accepts as a trace: a materialised record list, a
#: path to an on-disk trace, an open text stream, or any record iterator
#: (e.g. ``iter_sprite_trace(...)``).
TraceSource = Union[Sequence[TraceRecord], str, Path, Iterable[TraceRecord]]


class _TraceDemux:
    """Pull-based demultiplexer feeding per-client replay threads from one
    shared record iterator.

    There is no pump thread: when a client thread needs its next record and
    its queue is empty, it synchronously pulls from the iterator, parking
    records that belong to other clients on their queues.  Keeping the pull
    inside the consuming thread means streaming replay presents *exactly*
    the same runnable-thread sequence to the scheduler as materialised
    replay, so the two modes are reproducibly identical under the seeded
    random scheduling policy.  Buffering is bounded by the timestamp skew
    between clients (tracked in :attr:`peak_buffered`), never by the trace
    length.

    ``remaining`` optionally pre-declares per-client record counts (from a
    scan pass); with it, a client whose records have run out gets ``None``
    immediately instead of pulling — and buffering — the rest of the trace.
    Without counts (discovery mode over an arbitrary iterator) the last
    pull of an early-finishing client can buffer the remaining trace.
    """

    __slots__ = ("_iter", "_queues", "_finished", "_exhausted", "_on_new_client",
                 "_remaining", "buffered", "peak_buffered", "records_read")

    def __init__(
        self,
        records: Iterable[TraceRecord],
        on_new_client: Optional[Callable[[int], None]] = None,
        remaining: Optional[Dict[int, int]] = None,
    ):
        self._iter = iter(records)
        self._queues: Dict[int, deque] = {}
        self._finished: set[int] = set()
        self._exhausted = False
        self._on_new_client = on_new_client
        self._remaining = dict(remaining) if remaining is not None else None
        self.buffered = 0
        self.peak_buffered = 0
        self.records_read = 0

    def add_client(self, client: int) -> None:
        """Pre-register a client (no new-client callback fires for it)."""
        if client not in self._queues:
            self._queues[client] = deque()

    def _enqueue(self, record: TraceRecord) -> None:
        client = record.client
        if client in self._finished:
            return
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            if self._on_new_client is not None:
                self._on_new_client(client)
        queue.append(record)
        self.buffered += 1
        if self.buffered > self.peak_buffered:
            self.peak_buffered = self.buffered

    def prime(self) -> bool:
        """Read ahead until at least one client is known (discovery mode).
        Returns False when the trace is empty."""
        if self._queues:
            return True
        record = next(self._iter, None)
        if record is None:
            self._exhausted = True
            return False
        self.records_read += 1
        self._enqueue(record)
        return True

    def next_record(self, client: int) -> Optional[TraceRecord]:
        """The next record for ``client``, pulling the shared iterator as
        far as needed; None once the trace holds nothing more for it."""
        queue = self._queues.get(client)
        if queue:
            self.buffered -= 1
            return queue.popleft()
        remaining = self._remaining
        if remaining is not None and not remaining.get(client):
            return None
        if not self._exhausted:
            for record in self._iter:
                self.records_read += 1
                owner = record.client
                if remaining is not None and owner in remaining:
                    remaining[owner] -= 1
                if owner == client:
                    return record
                self._enqueue(record)
            self._exhausted = True
        return None

    def finish_client(self, client: int) -> None:
        """Drop a finished client's queue (and any late records for it)."""
        self._finished.add(client)
        queue = self._queues.pop(client, None)
        if queue:
            self.buffered -= len(queue)


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    trace_name: str = ""
    policy_name: str = ""
    simulated_time: float = 0.0
    operations: int = 0
    errors: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    plugin_reports: Dict[str, Any] = field(default_factory=dict)
    #: dirty blocks that died in memory and never cost a disk write.
    write_savings_blocks: int = 0
    blocks_written_to_disk: int = 0
    #: streaming-replay bookkeeping (peak demux buffering etc.); empty for
    #: materialised replay.
    stream_stats: Dict[str, Any] = field(default_factory=dict)
    #: per-volume breakdown and array-level rollup (storage-array runs only;
    #: empty — and absent from :meth:`summary` — for single-volume runs, so
    #: legacy summaries stay byte-identical).
    volume_stats: Dict[str, Any] = field(default_factory=dict)
    #: per-node/per-NIC breakdown plus rebalancer counters (multi-node
    #: cluster runs only; empty otherwise).
    cluster_stats: Dict[str, Any] = field(default_factory=dict)
    #: per-node digests of the executed event schedule, populated when the
    #: scheduler's schedule hash was enabled before replay.  Deliberately
    #: excluded from :meth:`summary` so legacy summaries stay byte-identical.
    schedule_digests: Dict[int, str] = field(default_factory=dict)
    #: Stage-B bookkeeping (worker end times, job cap, queue stats) when the
    #: run went through the parallel executor; empty for in-process runs.
    parallel_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        return self.latency.mean_latency()

    def cdf(self, op: Optional[str] = None) -> List[tuple[float, float]]:
        return self.latency.cdf(op)

    def per_client_latency(self) -> Dict[int, dict]:
        """Per-client operation counts, mean latency and percentiles."""
        return self.latency.per_client_summary()

    def summary(self) -> dict:
        return {
            "trace": self.trace_name,
            "policy": self.policy_name,
            "simulated_time": self.simulated_time,
            "operations": self.operations,
            "errors": self.errors,
            "mean_latency": self.mean_latency,
            "median_latency": self.latency.percentile(0.5),
            "p95_latency": self.latency.percentile(0.95),
            "cache_hit_rate": self.cache_stats.get("hit_rate", 0.0),
            "write_savings_blocks": self.write_savings_blocks,
            "blocks_written_to_disk": self.blocks_written_to_disk,
            "per_client_latency": self.per_client_latency(),
        }


class PatsySimulator:
    """A complete off-line file-system simulator instantiated from the library.

    The whole storage stack — simulated hardware, cache (shards), layout(s),
    flush policy, cleaner(s) — is assembled by
    :func:`repro.assembly.builder.build_stack` from the
    :class:`~repro.assembly.spec.StackSpec` derived from ``config``, under a
    :class:`~repro.assembly.bindings.SimulatedBinding`.  The simulator owns
    only what is specific to its world: trace replay and measurement.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        plugins: Optional[Iterable[type]] = None,
        stack: Optional[StorageStack] = None,
    ):
        if stack is not None and config is None:
            # A pre-built stack carries its own spec; derive the run config
            # from it instead of silently mixing in unrelated defaults.
            config = stack.spec.to_config()
        self.config = config if config is not None else small_test_config()
        cfg = self.config
        if stack is None:
            stack = build_stack(StackSpec.from_config(cfg), SimulatedBinding())
        elif not stack.binding.simulated:
            raise ConfigurationError(
                "PatsySimulator needs a stack built under a simulated "
                "binding; this one moves real bytes (use PegasusFileSystem)"
            )
        elif StackSpec.from_config(cfg) != stack.spec:
            raise ConfigurationError(
                "the supplied stack was built from a different spec than "
                "`config` describes; pass a matching config or let the "
                "simulator derive one from the stack"
            )
        self.stack = stack
        self.scheduler = stack.scheduler
        self.buses = stack.buses
        self.disks = stack.disks
        self.drivers = stack.drivers
        self.volume = stack.volume
        self.layout = stack.layout
        self.cache = stack.cache
        self.datamover = stack.datamover
        self.flush_policy = stack.flush_policy
        self.cleaner = stack.cleaner
        self.placement = stack.placement
        self.cluster = stack.cluster
        self.rebalancer = stack.cluster.rebalancer if stack.cluster is not None else None
        self.metadata = stack.metadata
        self.fs = stack.fs
        self.client = stack.client

        # --- measurement -----------------------------------------------------------
        self.latency = LatencyRecorder(report_interval=cfg.report_interval)
        self.plugins: List[StatisticsPlugin] = [cls() for cls in (plugins or DEFAULT_PLUGINS)]
        self.errors = 0
        self._mounted = False
        self._stream_stats: Dict[str, Any] = {}

    @classmethod
    def from_spec(
        cls,
        spec: StackSpec,
        plugins: Optional[Iterable[type]] = None,
        **config_overrides: Any,
    ) -> "PatsySimulator":
        """A simulator running ``spec`` (run-scoped knobs via overrides)."""
        return cls(spec.to_config(**config_overrides), plugins=plugins)

    # ------------------------------------------------------------------ lifecycle

    def mount(self) -> None:
        """Mount the simulated file system (idempotent)."""
        if self._mounted:
            return
        thread = self.scheduler.spawn(self.fs.mount, False, name="mount")
        self.scheduler.run_until_complete(thread)
        self._mounted = True

    # ------------------------------------------------------------------ cluster entry

    def client_node(self, client: int) -> int:
        """The cluster node a client's operations enter at.

        Front-end entry (the default) funnels every client through node 0;
        with ``client_entry="home"`` clients are spread round-robin across
        the nodes and their replay threads run on the node they enter at.
        """
        cluster = self.config.cluster
        if cluster is None or cluster.nodes <= 1 or cluster.client_entry != "home":
            return 0
        return client % cluster.nodes

    def inject_faults(
        self, schedule: Sequence[FaultEvent], scrub: bool = False
    ) -> FaultInjector:
        """Arm a scripted fault schedule against this run's cluster.

        The injector daemon starts immediately (it sleeps until each
        event's time), so call this before :meth:`replay`.  ``scrub``
        zeroes the memory-backed disk images of killed volumes — the
        byte-faithful proof that fail-over reads never touch dead
        hardware — and must stay off when a test remounts the "revived"
        volumes afterwards.
        """
        if self.cluster is None or self.cluster.faults is None:
            raise ConfigurationError(
                "fault injection needs a cluster stack (nodes >= 1 with a "
                "fault board); this run is a single-machine array"
            )
        injector = FaultInjector(
            self.scheduler,
            self.cluster.faults,
            schedule,
            topology=self.cluster,
            scrub=scrub,
        )
        injector.start()
        return injector

    @staticmethod
    def partition_setup_dirs(
        records: Iterable[TraceRecord], nodes: int, strict: bool = False
    ) -> List[tuple[int, str]]:
        """Top-level directories to pre-create before replay, each tagged
        with the home node (``client % nodes``) of the first client that
        touches it, in first-appearance order.

        Pre-creating these — before any client runs — moves every write to
        the shared root directory out of the replay phase.  That is the
        namespace half of the node partition: afterwards a client's
        operations resolve through in-core dirents and touch only volumes
        on its own node.  With ``strict`` a directory reached by clients of
        two different nodes raises (the trace is not partitionable).
        """
        order: List[str] = []
        owner: Dict[str, int] = {}
        for record in records:
            node = record.client % nodes
            for path in (record.path, record.path2):
                if not path:
                    continue
                parts = path.strip("/").split("/")
                if len(parts) < 2 or not parts[0]:
                    continue  # the root itself, or a top-level file
                top = "/" + parts[0]
                if top not in owner:
                    owner[top] = node
                    order.append(top)
                elif strict and owner[top] != node:
                    raise ConfigurationError(
                        f"trace is not partitioned by node: {top} is used by "
                        f"clients on node {owner[top]} and node {node}"
                    )
        return [(owner[top], top) for top in order]

    def prepare_namespace(self, dirs: Sequence[tuple[int, str]]) -> None:
        """Pre-create top-level directories (idempotent; mounts if needed).

        One setup thread per node, driven to completion in node order, each
        creating its node's directories in first-appearance order.  Every
        parallel worker runs this identically on its full stack, so the
        post-setup state — inode numbers, cached root dirents, file-table
        contents — agrees byte-for-byte across processes and with the
        sequential run.
        """
        if not dirs:
            return
        self.mount()
        by_node: Dict[int, List[str]] = {}
        for node, path in dirs:
            by_node.setdefault(node, []).append(path)

        def _setup(paths: List[str]) -> Generator[Any, Any, None]:
            for path in paths:
                try:
                    yield from self.client.mkdir(path)
                except FileSystemError:
                    pass  # already present; the trace may mkdir it again

        threads = [
            self.scheduler.spawn(_setup, paths, name=f"setup-n{node}", node=node)
            for node, paths in sorted(by_node.items())
        ]
        for thread in threads:
            self.scheduler.run_until_complete(thread)

    def _auto_setup_dirs(self, records: Sequence[TraceRecord]) -> List[tuple[int, str]]:
        """Setup directories for :meth:`replay`'s automatic namespace phase
        (multi-node home-entry runs only — exactly the runs whose schedule
        must be reproducible under the parallel executor)."""
        cluster = self.config.cluster
        if cluster is None or cluster.nodes <= 1 or cluster.client_entry != "home":
            return []
        return self.partition_setup_dirs(records, cluster.nodes)

    # ------------------------------------------------------------------ replay

    def replay(
        self,
        records: TraceSource,
        trace_name: str = "",
        max_time: Optional[float] = None,
    ) -> SimulationResult:
        """Replay a trace and return the measurements.

        ``records`` may be a materialised record list, a path to an on-disk
        trace, an open text stream, or any record iterator.  With
        ``config.streaming`` set (or for any non-rewindable source) the
        streaming engine replays without materialising the trace; both
        engines produce identical measurements on the same trace.
        """
        cluster = self.config.cluster
        if cluster is not None and cluster.parallel and cluster.nodes > 1:
            from repro.core.parallel import ParallelReplayExecutor

            if isinstance(records, (str, Path)):
                records = load_trace(records)
            executor = ParallelReplayExecutor(
                self.config, enable_digests=self.scheduler.schedule_hash_enabled
            )
            return executor.replay(
                list(records), trace_name=trace_name, max_time=max_time
            )
        is_path = isinstance(records, (str, Path))
        is_sequence = not is_path and isinstance(records, Sequence)
        if self.config.streaming or not (is_path or is_sequence):
            return self.replay_stream(records, trace_name=trace_name, max_time=max_time)
        if is_path:
            records = load_trace(records)
        if not records:
            raise TraceError("cannot replay an empty trace")
        self.mount()
        self.prepare_namespace(self._auto_setup_dirs(records))
        limit = max_time if max_time is not None else self.config.max_simulated_time
        self.run_client_streams(records, limit)
        self.latency.finish()
        return self.build_result(trace_name)

    def run_client_streams(
        self, records: Sequence[TraceRecord], limit: Optional[float]
    ) -> None:
        """Spawn a replay thread per client — on its entry node — and drive
        them to completion in client order.  Leaves the recorder open and
        builds no result: :meth:`replay` finishes both, and the parallel
        executor interposes its end protocol between the two."""
        streams = records_by_client(records)
        threads = [
            self.scheduler.spawn(
                self._client_thread,
                client,
                stream,
                limit,
                name=f"client-{client}",
                node=self.client_node(client),
            )
            for client, stream in sorted(streams.items())
        ]
        for thread in threads:
            self.scheduler.run_until_complete(thread)

    def replay_stream(
        self,
        source: TraceSource,
        trace_name: str = "",
        max_time: Optional[float] = None,
        clients: Optional[Iterable[int]] = None,
    ) -> SimulationResult:
        """Replay a trace in streaming mode: records are pulled from the
        source one at a time and demultiplexed into per-client threads, so
        memory is constant in the trace length.

        ``clients`` pre-declares the client population; when omitted it is
        recovered with a cheap scan pass for on-disk traces (or from the
        sequence itself), so streaming replay spawns the same client
        threads in the same order as materialised replay and the two modes
        yield identical measurements on a per-client time-ordered trace.
        Sources that cannot be enumerated up-front (generators, streams)
        fall back to discovery: a client's thread starts when its first
        record surfaces.
        """
        self.mount()
        cluster = self.config.cluster
        if cluster is not None and cluster.nodes > 1 and cluster.client_entry == "home":
            # Keep streaming replay schedule-identical to materialised
            # replay on enumerable sources: run the same namespace phase.
            if isinstance(source, (str, Path)):
                self.prepare_namespace(
                    self.partition_setup_dirs(iter_trace(source), cluster.nodes)
                )
            elif isinstance(source, Sequence):
                self.prepare_namespace(self._auto_setup_dirs(source))
        limit = max_time if max_time is not None else self.config.max_simulated_time
        records, known_clients, counts = self._open_trace_source(source, clients)
        threads: List[Any] = []
        demux: _TraceDemux

        def spawn_client(client: int) -> None:
            threads.append(
                self.scheduler.spawn(
                    self._client_thread_streaming,
                    client,
                    demux,
                    limit,
                    name=f"client-{client}",
                    node=self.client_node(client),
                )
            )

        demux = _TraceDemux(records, on_new_client=spawn_client, remaining=counts)
        if known_clients is not None:
            if not known_clients:
                raise TraceError("cannot replay an empty trace")
            for client in sorted(known_clients):
                demux.add_client(client)
            for client in sorted(known_clients):
                spawn_client(client)
        elif not demux.prime():
            raise TraceError("cannot replay an empty trace")
        index = 0
        while index < len(threads):  # discovery may append threads mid-run
            self.scheduler.run_until_complete(threads[index])
            index += 1
        self.latency.finish()
        self._stream_stats = {
            "records_replayed": demux.records_read,
            "peak_buffered_records": demux.peak_buffered,
            "clients": len(threads),
        }
        return self.build_result(trace_name)

    def _open_trace_source(
        self, source: TraceSource, clients: Optional[Iterable[int]]
    ) -> tuple[Iterator[TraceRecord], Optional[List[int]], Optional[Dict[int, int]]]:
        """Resolve a trace source to (record iterator, known client ids,
        per-client record counts).  Counts — available whenever the source
        can be enumerated cheaply — let the demux stop a finished client
        from pulling (and buffering) the rest of the trace."""
        known = sorted(set(clients)) if clients is not None else None
        if isinstance(source, (str, Path)):
            counts = scan_trace_client_counts(source)
            if known is None:
                known = sorted(counts)
            return iter_trace(source), known, counts
        if isinstance(source, Sequence):
            counts = {}
            for record in source:
                counts[record.client] = counts.get(record.client, 0) + 1
            if known is None:
                known = sorted(counts)
            return iter(source), known, counts
        if hasattr(source, "read"):
            return iter_trace(source), known, None
        return iter(source), known, None

    def run_operations(self, records: Sequence[TraceRecord]) -> SimulationResult:
        """Convenience wrapper used by tests: replay and return the result."""
        return self.replay(records)

    def _client_thread_streaming(
        self, client: int, demux: _TraceDemux, max_time: Optional[float]
    ) -> Generator[Any, Any, None]:
        """Streaming twin of :meth:`_client_thread`: identical yield
        sequence, but records are pulled from the demux on demand (the pull
        itself never yields, so the scheduler sees the same execution as
        the materialised path)."""
        handles: Dict[str, int] = {}
        while True:
            record = demux.next_record(client)
            if record is None:
                break
            if max_time is not None and record.timestamp > max_time:
                break
            delay = record.timestamp - self.scheduler.now
            if delay > 0:
                yield Delay(delay)
            started = self.scheduler.now
            try:
                yield from self._execute(record, handles)
            except FileSystemError:
                self.errors += 1
            self.latency.record(started, record.op, self.scheduler.now - started, client)
        demux.finish_client(client)
        # Close anything the trace left open.
        for path, handle in list(handles.items()):
            try:
                yield from self.client.close(handle)
            except FileSystemError:
                self.errors += 1
            handles.pop(path, None)

    def _client_thread(
        self, client: int, records: List[TraceRecord], max_time: Optional[float]
    ) -> Generator[Any, Any, None]:
        handles: Dict[str, int] = {}
        for record in records:
            if max_time is not None and record.timestamp > max_time:
                break
            delay = record.timestamp - self.scheduler.now
            if delay > 0:
                yield Delay(delay)
            started = self.scheduler.now
            try:
                yield from self._execute(record, handles)
            except FileSystemError:
                self.errors += 1
            self.latency.record(started, record.op, self.scheduler.now - started, client)
        # Close anything the trace left open.
        for path, handle in list(handles.items()):
            try:
                yield from self.client.close(handle)
            except FileSystemError:
                self.errors += 1
            handles.pop(path, None)

    def _execute(self, record: TraceRecord, handles: Dict[str, int]) -> Generator[Any, Any, None]:
        client = self.client
        op = record.op
        path = record.path
        if op == "open":
            if path not in handles:
                handles[path] = yield from client.open(path, create=True)
        elif op == "close":
            handle = handles.pop(path, None)
            if handle is not None:
                yield from client.close(handle)
        elif op == "create":
            if path not in handles:
                handles[path] = yield from client.create(path, exclusive=False)
        elif op == "read":
            handle = handles.get(path)
            if handle is not None:
                yield from client.read(handle, record.offset, record.size)
            else:
                yield from client.read_file(path, record.offset, record.size)
        elif op == "write":
            handle = handles.get(path)
            if handle is not None:
                yield from client.write(handle, record.offset, length=record.size)
            else:
                yield from client.write_file(path, record.offset, length=record.size)
        elif op == "truncate":
            yield from client.truncate_path(path, record.size)
        elif op == "unlink":
            yield from client.unlink(path)
        elif op == "mkdir":
            yield from client.mkdir(path)
        elif op == "rmdir":
            yield from client.rmdir(path)
        elif op == "stat":
            yield from client.stat(path)
        elif op == "readdir":
            yield from client.readdir(path)
        elif op == "rename":
            yield from client.rename(path, record.path2)
        elif op == "symlink":
            yield from client.symlink(record.path2 or "/", path)
        elif op == "fsync":
            handle = handles.get(path)
            if handle is not None:
                yield from client.fsync(handle)
            else:
                yield from client.sync()
        else:  # pragma: no cover - TraceRecord validates operations
            raise TraceError(f"unsupported trace operation {op!r}")

    # ------------------------------------------------------------------ results

    def build_result(self, trace_name: str = "") -> SimulationResult:
        reports = {}
        for plugin in self.plugins:
            reports[plugin.name] = plugin.collect(self)
        cache_stats = self.cache.stats.snapshot()
        cache_stats["replacement"] = self.cache.policy.name
        for key, value in self.cache.policy.snapshot().items():
            cache_stats[f"policy_{key}"] = value
        result = SimulationResult(
            trace_name=trace_name,
            policy_name=self.config.flush.policy,
            simulated_time=self.scheduler.now,
            operations=self.latency.count,
            errors=self.errors,
            latency=self.latency,
            cache_stats=cache_stats,
            plugin_reports=reports,
            write_savings_blocks=self.cache.stats.dirty_blocks_discarded,
            blocks_written_to_disk=self.cache.stats.blocks_written,
            stream_stats=dict(self._stream_stats),
            volume_stats=self.collect_volume_stats(),
            cluster_stats=self.collect_cluster_stats(),
        )
        result.schedule_digests = self.scheduler.schedule_digests()
        return result

    def collect_volume_stats(self) -> Dict[str, Any]:
        """Per-volume cache/layout/disk/flush breakdown plus an array-level
        rollup.  Empty for single-volume (non-array) configurations."""
        array = self.config.array
        if array is None and self.config.cluster is None:
            return {}
        spec = self.stack.spec
        num_volumes = spec.num_volumes
        assert isinstance(self.layout, RoutedLayout)
        assert isinstance(self.cache, ShardedCache)
        elapsed = max(self.scheduler.now, 1e-9)
        per_volume: Dict[str, Any] = {}
        # Per-volume flush counters only exist with per-volume shards; a
        # unified cache has one flush daemon for the whole array, whose
        # counters belong in the rollup, not attributed to any one volume.
        flush_children: List[dict] = []
        if isinstance(self.flush_policy, ShardedFlushPolicy):
            children = self.flush_policy.shard_stats()
            if len(children) == num_volumes:
                flush_children = children
        for v in range(num_volumes):
            sub = self.layout.sublayouts[v]
            disks = {}
            for index in spec.disks_of_volume(v):
                driver = self.drivers[index]
                disks[driver.name] = {
                    "operations": driver.stats.operations,
                    "utilisation": driver.stats.utilisation(elapsed),
                    "mean_queue_length": driver.stats.mean_queue_length(),
                    "mean_response_time": driver.stats.mean_response_time(),
                }
            layout_entry = {
                "kind": sub.name,
                "disk_reads": sub.stats.disk_reads,
                "disk_writes": sub.stats.disk_writes,
                "blocks_read": sub.stats.blocks_read,
                "blocks_written": sub.stats.blocks_written,
                "free_blocks": sub.free_blocks,
            }
            if sub.stats.cleaner_read_runs:
                layout_entry["cleaner_read_runs"] = sub.stats.cleaner_read_runs
            index_memory = getattr(sub, "index_memory_bytes", None)
            if index_memory is not None and index_memory():
                layout_entry["index_memory_bytes"] = index_memory()
            entry: Dict[str, Any] = {
                "disks": disks,
                "layout": layout_entry,
            }
            if len(self.cache.shards) == num_volumes:
                entry["cache"] = self.cache.shards[v].stats.snapshot()
            if v < len(flush_children):
                entry["flush"] = flush_children[v]
            per_volume[f"vol{v}"] = entry
        rollup: Dict[str, Any] = {
            "volumes": num_volumes,
            "disks": spec.num_disks,
            "buses": spec.num_buses,
            "placement": spec.effective_array.placement,
            "shard": spec.effective_array.shard,
            "cache_hit_rate": self.cache.stats.hit_rate,
            "blocks_written": self.cache.stats.blocks_written,
            "disk_operations": sum(d.stats.operations for d in self.drivers),
            "mean_disk_utilisation": (
                sum(d.stats.utilisation(elapsed) for d in self.drivers) / len(self.drivers)
            ),
        }
        rollup["layout"] = self.layout.combined_stats()
        index_total = sum(
            getattr(sub, "index_memory_bytes", lambda: 0)()
            for sub in self.layout.sublayouts
        )
        if index_total:
            cache_budget = max(1, spec.cache.size_bytes)
            rollup["index"] = {
                "memory_bytes": index_total,
                "fraction_of_cache": index_total / cache_budget,
            }
        if isinstance(self.flush_policy, ShardedFlushPolicy):
            rollup["flush"] = self.flush_policy.stats()
            rollup["governor_wakeups"] = self.flush_policy.governor_wakeups
            rollup["governor_flushes"] = self.flush_policy.governor_flushes
        return {"per_volume": per_volume, "rollup": rollup}

    def collect_cluster_stats(self) -> Dict[str, Any]:
        """Per-node and per-NIC breakdown plus rebalancer counters.

        Empty for single-machine runs (including one-node clusters, which
        build no network at all)."""
        topology = self.cluster
        if topology is None or topology.num_nodes <= 1:
            return {}
        elapsed = max(self.scheduler.now, 1e-9)
        per_node: Dict[str, Any] = {}
        for node in topology.nodes:
            disk_ops = sum(d.stats.operations for d in node.drivers)
            entry: Dict[str, Any] = {
                "volumes": list(node.volume_indices),
                "disk_operations": disk_ops,
                "mean_disk_utilisation": (
                    sum(d.stats.utilisation(elapsed) for d in node.drivers)
                    / max(len(node.drivers), 1)
                ),
                "blocks_written": sum(
                    sub.stats.blocks_written for sub in node.sublayouts
                ),
                "free_blocks": sum(sub.free_blocks for sub in node.sublayouts),
            }
            if node.cache_shards:
                lookups = sum(s.stats.lookups for s in node.cache_shards)
                hits = sum(s.stats.hits for s in node.cache_shards)
                entry["cache_hit_rate"] = hits / lookups if lookups else 0.0
            if node.nic is not None:
                nic = node.nic
                entry["nic"] = dict(
                    nic.snapshot(), utilisation=nic.utilisation(elapsed)
                )
            remote = [
                topology.remote_volumes[v].snapshot()
                for v in node.volume_indices
                if v in topology.remote_volumes
            ]
            if remote:
                entry["remote_io"] = {
                    key: sum(r[key] for r in remote) for key in remote[0]
                }
            faults = topology.faults
            if faults is not None and faults.active:
                i = node.index
                entry["faults"] = {
                    "events": faults.faults_by_node.get(i, 0),
                    "dropped_writes": faults.dropped_writes_by_node.get(i, 0),
                    "failed_reads": faults.failed_reads_by_node.get(i, 0),
                }
                if topology.replication is not None:
                    entry["faults"]["failovers"] = (
                        topology.replication.failovers_by_node.get(i, 0)
                    )
                if topology.repairer is not None:
                    entry["faults"]["repairs"] = (
                        topology.repairer.repairs_by_node.get(i, 0)
                    )
            per_node[f"node{node.index}"] = entry
        stats: Dict[str, Any] = {
            "nodes": topology.num_nodes,
            "placement": topology.placement.snapshot(),
            "per_node": per_node,
        }
        if topology.rebalancer is not None:
            stats["rebalancer"] = topology.rebalancer.snapshot()
            stats["migration_schedule"] = [
                {
                    "time": m.time,
                    "file_id": m.file_id,
                    "source": m.source,
                    "target": m.target,
                    "blocks": m.blocks,
                }
                for m in topology.rebalancer.schedule
            ]
        if topology.metadata is not None:
            stats["metadata"] = topology.metadata.snapshot()
        if topology.faults is not None and topology.faults.active:
            stats["faults"] = topology.faults.snapshot()
        if topology.replication is not None:
            stats["replication"] = topology.replication.snapshot()
        if topology.repairer is not None:
            stats["repairer"] = topology.repairer.snapshot()
        if hasattr(self.scheduler, "queue_snapshot"):
            stats["scheduler"] = self.scheduler.queue_snapshot()
        return stats

    def collect_statistics(self) -> Dict[str, Any]:
        """All plug-in reports (without building a full result object)."""
        return {plugin.name: plugin.collect(self) for plugin in self.plugins}
