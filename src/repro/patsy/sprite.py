"""Sprite-style trace parsing.

The original experiments replay the Berkeley Sprite traces (Baker et al.,
SOSP '91): 24-hour traces of a Sun 4/280 file server, identified as
``1a, 1b, 2a, 2b, ...`` in the paper's figures.  Those traces are not
redistributable, so this module does two things:

* :class:`SpriteTraceReader` parses a *Sprite-like* text encoding
  (space-separated ``time host.pid op path [offset size] [path2]`` lines)
  so genuine converted traces can be dropped in, and
* :func:`sprite_trace` returns a synthetic trace with the per-trace
  character described in the paper (see :mod:`repro.patsy.synthetic`),
  which is what the benchmarks use.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from repro.errors import TraceError
from repro.patsy.traces import (
    TraceRecord,
    stream_synthesize_missing_times,
    synthesize_missing_times,
)

__all__ = [
    "SpriteTraceReader",
    "SPRITE_OP_NAMES",
    "load_sprite_trace",
    "iter_sprite_trace",
    "sprite_trace",
]

#: mapping from Sprite trace operation mnemonics to framework operations.
SPRITE_OP_NAMES = {
    "open": "open",
    "close": "close",
    "read": "read",
    "write": "write",
    "create": "create",
    "remove": "unlink",
    "unlink": "unlink",
    "delete": "unlink",
    "trunc": "truncate",
    "truncate": "truncate",
    "mkdir": "mkdir",
    "rmdir": "rmdir",
    "stat": "stat",
    "getattr": "stat",
    "lsdir": "readdir",
    "readdir": "readdir",
    "rename": "rename",
    "symlink": "symlink",
    "fsync": "fsync",
}


class SpriteTraceReader:
    """Parses Sprite-like trace text into :class:`TraceRecord` objects.

    Format, one operation per line::

        <seconds> <client-id> <op> <path> [<offset> <size>] [<path2>]

    Lines starting with ``#`` are comments.  Client identifiers may be
    ``host.pid`` pairs; they are hashed to small integers.
    """

    def __init__(self, stream: TextIO):
        self.stream = stream
        self._client_ids: dict[str, int] = {}

    def __iter__(self) -> Iterator[TraceRecord]:
        for line_number, line in enumerate(self.stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield self.parse_line(line, line_number)

    def parse_line(self, line: str, line_number: int = 0) -> TraceRecord:
        fields = line.split()
        if len(fields) < 4:
            raise TraceError(
                f"sprite trace line {line_number}: expected at least 4 fields, got {len(fields)}"
            )
        time_text, client_text, op_text, path = fields[:4]
        op = SPRITE_OP_NAMES.get(op_text.lower())
        if op is None:
            raise TraceError(f"sprite trace line {line_number}: unknown operation {op_text!r}")
        offset = 0
        size = 0
        path2 = ""
        rest = fields[4:]
        if op == "rename":
            if not rest:
                raise TraceError(f"sprite trace line {line_number}: rename needs a target path")
            path2 = rest[0]
        else:
            if len(rest) >= 1:
                offset = int(rest[0])
            if len(rest) >= 2:
                size = int(rest[1])
        try:
            timestamp = float(time_text)
        except ValueError as exc:
            raise TraceError(f"sprite trace line {line_number}: bad timestamp {time_text!r}") from exc
        return TraceRecord(
            timestamp=timestamp,
            client=self._client_id(client_text),
            op=op,
            path=path,
            offset=offset,
            size=size,
            path2=path2,
        )

    def _client_id(self, text: str) -> int:
        if text not in self._client_ids:
            self._client_ids[text] = len(self._client_ids)
        return self._client_ids[text]


def load_sprite_trace(
    source: Union[str, Path, TextIO], fill_missing_times: bool = True
) -> list[TraceRecord]:
    """Load a Sprite-like trace file, optionally spacing out read/write
    operations that share their open's timestamp (the paper's equidistant
    placement of missing operation times)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            records = list(SpriteTraceReader(stream))
    else:
        records = list(SpriteTraceReader(source))
    if fill_missing_times:
        records = synthesize_missing_times(records)
    return records


def iter_sprite_trace(
    source: Union[str, Path, TextIO], fill_missing_times: bool = True
) -> Iterator[TraceRecord]:
    """Stream a Sprite-like trace without materialising it.

    The streaming counterpart of :func:`load_sprite_trace` for
    multi-million-line converted traces: records are parsed one line at a
    time and missing operation times are filled by
    :func:`repro.patsy.traces.stream_synthesize_missing_times`, whose
    memory is bounded by concurrently open open..close brackets.  The
    input file must be time-ordered (real converted traces are)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            reader: Iterable[TraceRecord] = SpriteTraceReader(stream)
            if fill_missing_times:
                reader = stream_synthesize_missing_times(reader)
            yield from reader
        return
    reader = SpriteTraceReader(source)
    if fill_missing_times:
        yield from stream_synthesize_missing_times(reader)
    else:
        yield from reader


def sprite_trace(name: str, scale: float = 1.0, seed: int = 0) -> list[TraceRecord]:
    """A synthetic stand-in for Sprite trace ``name`` ('1a', '1b', '5', ...).

    Delegates to :mod:`repro.patsy.synthetic`; see that module for how each
    trace's published character is reproduced.
    """
    from repro.patsy.synthetic import sprite_like_trace

    return sprite_like_trace(name, scale=scale, seed=seed)
