"""Plug-in statistics objects and constant-memory latency measurement.

"Detailed internal measurements are provided by plug-in statistics objects.
These plug-in statistics can be activated when the simulator is started and
they can provide standard statistics output with or without histograms.
Some of the standard detailed statistics objects include histograms of disk
queue sizes, cache statistics, and disk rotational delay statistics."

The plug-ins below read counters that the core components already maintain
(driver queue samples, disk model rotational delays, cache statistics, bus
contention) and turn them into report dictionaries and ASCII histograms.

The :class:`LatencyRecorder` is the "general simulation class" measurement
store: per-operation latencies, means, percentiles and CDFs, reported every
15 minutes of simulation time and for the whole run.  Memory is constant in
the number of operations: latencies land in fixed-size log-bucketed
histograms (one global, one per operation type, one per client), an exact
prefix window keeps small runs bit-exact, and quantiles beyond the window
come from histogram interpolation (bucket ratio 1.02, so relative error is
bounded by 2%) or, opt-in, from P²-style streaming markers
(:class:`P2Quantile`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.cdf import downsample_cdf
from repro.errors import InvalidArgument
from repro.units import human_time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.patsy.simulator import PatsySimulator

__all__ = [
    "Histogram",
    "LatencyRecorder",
    "LatencyShard",
    "OperationSample",
    "P2Quantile",
    "StatisticsPlugin",
    "DiskQueuePlugin",
    "RotationalDelayPlugin",
    "CachePlugin",
    "BusPlugin",
    "DEFAULT_PLUGINS",
]


class Histogram:
    """A fixed-bucket histogram (linear or logarithmic buckets).

    Generated (linear / log-scale) geometries locate buckets arithmetically
    in O(1); explicitly supplied bounds fall back to a ``bisect`` lookup.
    """

    def __init__(
        self,
        bucket_bounds: Optional[Sequence[float]] = None,
        low: float = 0.0,
        high: float = 1.0,
        buckets: int = 20,
        log_scale: bool = False,
    ):
        self._kind = "explicit"
        self._low = low
        self._inv_step = 0.0
        self._log_low = 0.0
        self._inv_log_ratio = 0.0
        if bucket_bounds is not None:
            bounds = list(bucket_bounds)
            # Validate sortedness pairwise instead of building a sorted copy.
            if not bounds or any(
                bounds[i] > bounds[i + 1] for i in range(len(bounds) - 1)
            ):
                raise InvalidArgument("histogram bucket bounds must be sorted and non-empty")
            self.bounds = bounds
        elif log_scale:
            if low <= 0:
                raise InvalidArgument("log-scale histograms need a positive lower bound")
            ratio = (high / low) ** (1.0 / buckets)
            self.bounds = [low * ratio**i for i in range(1, buckets + 1)]
            if ratio > 1.0:
                self._kind = "log"
                self._log_low = math.log(low)
                self._inv_log_ratio = 1.0 / math.log(ratio)
        else:
            step = (high - low) / buckets
            self.bounds = [low + step * i for i in range(1, buckets + 1)]
            if step > 0:
                self._kind = "linear"
                self._inv_step = 1.0 / step
        self.counts = [0] * (len(self.bounds) + 1)  # last bucket = overflow
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _bucket_index(self, value: float) -> int:
        """Index of the bucket for ``value``: the number of bounds <= value
        (identical to ``bisect_right``), computed arithmetically when the
        bucket geometry allows it."""
        bounds = self.bounds
        kind = self._kind
        if kind == "linear":
            guess = int((value - self._low) * self._inv_step)
        elif kind == "log":
            if value <= 0:
                return 0
            guess = int((math.log(value) - self._log_low) * self._inv_log_ratio)
        else:
            return bisect_right(bounds, value)
        n = len(bounds)
        if guess < 0:
            guess = 0
        elif guess > n:
            guess = n
        # The arithmetic guess can be off by one at bucket edges because of
        # floating-point rounding; nudge it until it matches bisect_right.
        while guess < n and bounds[guess] <= value:
            guess += 1
        while guess > 0 and bounds[guess - 1] > value:
            guess -= 1
        return guess

    def add(self, value: float) -> None:
        index = self._bucket_index(value)
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def add_all(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def bucket_fractions(self) -> List[float]:
        if self.total == 0:
            return [0.0] * len(self.counts)
        return [count / self.total for count in self.counts]

    def to_ascii(self, width: int = 40, label: str = "") -> str:
        """Render the histogram as text (one row per bucket)."""
        lines = [f"histogram {label} (n={self.total}, mean={self.mean:.6g})"]
        peak = max(self.counts) if self.total else 1
        lower = 0.0
        for index, count in enumerate(self.counts):
            if index < len(self.bounds):
                upper_text = f"{self.bounds[index]:.4g}"
            else:
                upper_text = "inf"
            bar = "#" * int(round(width * count / peak)) if peak else ""
            lines.append(f"  [{lower:>10.4g}, {upper_text:>10}) {count:>8} {bar}")
            if index < len(self.bounds):
                lower = self.bounds[index]
        return "\n".join(lines)


@dataclass(frozen=True)
class OperationSample:
    """One measured operation: when it started, what it was, how long it took.

    Retained for API compatibility; the recorder no longer stores one of
    these per operation (memory is constant in the operation count).
    """

    start_time: float
    op: str
    latency: float
    client: int = 0


# --------------------------------------------------------------------------- streaming quantiles

#: shared log-bucket geometry for every latency shard: buckets span
#: [1 ns, ~21 000 s] with a 2% geometric step, so quantile interpolation is
#: accurate to ~2% anywhere a simulated latency can land.  Exact zeros (an
#: operation completing without consuming virtual time) are counted apart.
_BUCKET_RATIO = 1.02
_BUCKET_LOW = 1e-9
_NBUCKETS = 1536
_LOG_LOW = math.log(_BUCKET_LOW)
_LOG_RATIO = math.log(_BUCKET_RATIO)
_INV_LOG_RATIO = 1.0 / _LOG_RATIO
_TOP_BUCKET = _NBUCKETS - 1


def _bucket_value(index: int, frac: float = 0.5) -> float:
    """Representative value inside bucket ``index`` (geometric position)."""
    return _BUCKET_LOW * math.exp(_LOG_RATIO * (index + frac))


class LatencyShard:
    """Constant-memory latency aggregate: count, sum, min/max and a
    fixed-size log-bucketed histogram.  One shard exists per recorder, per
    operation type and per client; all three share a single bucket-index
    computation per recorded latency."""

    __slots__ = ("n", "total", "zeros", "minv", "maxv", "counts")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.zeros = 0
        self.minv = math.inf
        self.maxv = -math.inf
        self.counts = [0] * _NBUCKETS

    # -- aggregate views -----------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @property
    def min(self) -> float:
        return self.minv if self.n else 0.0

    @property
    def max(self) -> float:
        return self.maxv if self.n else 0.0

    def quantile(self, fraction: float) -> float:
        """The ``fraction``-th quantile, interpolated geometrically inside
        the containing bucket (relative error bounded by the bucket ratio)."""
        if self.n == 0:
            return 0.0
        if not (0.0 <= fraction <= 1.0):
            raise InvalidArgument("percentile fraction must be in [0, 1]")
        # Rank semantics match the exact path: the k-th smallest value with
        # k = clamp(ceil(fraction * n), 1, n).
        rank = int(math.ceil(fraction * self.n))
        rank = min(max(rank, 1), self.n)
        if rank <= self.zeros:
            return 0.0
        remaining = rank - self.zeros
        counts = self.counts
        for index in range(_NBUCKETS):
            count = counts[index]
            if count == 0:
                continue
            if remaining <= count:
                value = _bucket_value(index, remaining / count)
                return min(max(value, self.minv), self.maxv)
            remaining -= count
        return self.maxv  # pragma: no cover - ranks always land in a bucket

    def fraction_at_or_below(self, threshold: float) -> float:
        if self.n == 0:
            return 0.0
        if threshold < 0.0:
            return 0.0
        covered = self.zeros
        if threshold > 0.0:
            edge = (math.log(threshold) - _LOG_LOW) * _INV_LOG_RATIO
            if edge < 0.0:
                edge = 0.0  # below bucket 0: no partial-bucket coverage
            whole = int(edge)
            if whole > _NBUCKETS:
                whole = _NBUCKETS
            counts = self.counts
            for index in range(whole):
                covered += counts[index]
            if whole < _NBUCKETS:
                covered += counts[whole] * (edge - whole)
        if threshold >= self.maxv:
            return 1.0
        return min(covered / self.n, 1.0)

    def cdf(self, points: int = 200) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) pairs from the occupied buckets."""
        if self.n == 0:
            return []
        pairs: List[Tuple[float, float]] = []
        cumulative = 0
        if self.zeros:
            cumulative = self.zeros
            pairs.append((0.0, cumulative / self.n))
        counts = self.counts
        for index in range(_NBUCKETS):
            count = counts[index]
            if count == 0:
                continue
            cumulative += count
            value = min(_bucket_value(index, 1.0), self.maxv)
            pairs.append((value, cumulative / self.n))
        return downsample_cdf(pairs, points)

    def reconstructed_values(self) -> List[float]:
        """An ascending latency list with this shard's distribution (bucket
        midpoints repeated by count) — for plotting code that wants raw
        values.  O(n) transient output, O(1) retained state."""
        values = [0.0] * self.zeros
        counts = self.counts
        for index in range(_NBUCKETS):
            count = counts[index]
            if count:
                values.extend([min(max(_bucket_value(index), self.minv), self.maxv)] * count)
        return values

    def merge(self, other: "LatencyShard") -> None:
        """Fold ``other`` into this shard — exact for every statistic the
        shard keeps: counts and bucket histograms add elementwise, extrema
        take the min/max.  (The float ``total`` adds in argument order, so
        a merged mean can differ from the sequential one in the last ulp;
        the recorder's exact-window merge path avoids even that.)"""
        if other.n == 0:
            return
        self.n += other.n
        self.total += other.total
        self.zeros += other.zeros
        if other.minv < self.minv:
            self.minv = other.minv
        if other.maxv > self.maxv:
            self.maxv = other.maxv
        counts = self.counts
        for index, count in enumerate(other.counts):
            if count:
                counts[index] += count

    def summary(self) -> dict:
        return {
            "operations": self.n,
            "mean_latency": self.mean,
            "median_latency": self.quantile(0.5),
            "p95_latency": self.quantile(0.95),
            "p99_latency": self.quantile(0.99),
        }


class P2Quantile:
    """The P² streaming quantile estimator (Jain & Chlamtac, CACM 1985).

    Five markers track the running ``p``-quantile without storing samples:
    the marker heights are adjusted with a piecewise-parabolic fit whenever
    their positions drift from the ideal ones.  Accuracy on smooth
    distributions is well within 2% after a few hundred observations.
    """

    __slots__ = ("p", "count", "_q", "_pos", "_desired", "_rate")

    def __init__(self, p: float):
        if not (0.0 < p < 1.0):
            raise InvalidArgument("P2Quantile needs a fraction in (0, 1)")
        self.p = p
        self.count = 0
        self._q: List[float] = []  # marker heights
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]  # marker positions (1-based)
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._rate = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def add(self, value: float) -> None:
        self.count += 1
        q = self._q
        if self.count <= 5:
            q.append(value)
            if self.count == 5:
                q.sort()
            return
        pos = self._pos
        # Find the cell the observation falls into and update the extremes.
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value < q[1]:
            cell = 0
        elif value < q[2]:
            cell = 1
        elif value < q[3]:
            cell = 2
        elif value <= q[4]:
            cell = 3
        else:
            q[4] = value
            cell = 3
        for index in range(cell + 1, 5):
            pos[index] += 1.0
        desired = self._desired
        rate = self._rate
        for index in range(5):
            desired[index] += rate[index]
        # Adjust the three interior markers towards their desired positions.
        for index in range(1, 4):
            diff = desired[index] - pos[index]
            if (diff >= 1.0 and pos[index + 1] - pos[index] > 1.0) or (
                diff <= -1.0 and pos[index - 1] - pos[index] < -1.0
            ):
                step = 1.0 if diff >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if q[index - 1] < candidate < q[index + 1]:
                    q[index] = candidate
                else:
                    q[index] = self._linear(index, step)
                pos[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        q = self._q
        pos = self._pos
        span = pos[index + 1] - pos[index - 1]
        right = (pos[index] - pos[index - 1] + step) * (q[index + 1] - q[index]) / (
            pos[index + 1] - pos[index]
        )
        left = (pos[index + 1] - pos[index] - step) * (q[index] - q[index - 1]) / (
            pos[index] - pos[index - 1]
        )
        return q[index] + (step / span) * (right + left)

    def _linear(self, index: int, step: float) -> float:
        q = self._q
        pos = self._pos
        offset = int(step)
        return q[index] + step * (q[index + offset] - q[index]) / (
            pos[index + offset] - pos[index]
        )

    @property
    def value(self) -> float:
        """The current quantile estimate."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            ordered = sorted(self._q)
            rank = min(max(int(math.ceil(self.p * self.count)) - 1, 0), self.count - 1)
            return ordered[rank]
        return self._q[2]


# --------------------------------------------------------------------------- the recorder


class LatencyRecorder:
    """Collects per-operation latencies and summarises them.

    This is the measurement half of the paper's "general simulation class":
    it "measures how long it takes before an operation completes", reports
    every 15 minutes of simulation time, and for the overall simulation.

    Memory is constant in the number of recorded operations.  The first
    ``exact_window`` latencies are additionally kept verbatim; while the
    whole run fits in that window every query (percentiles, CDFs, fraction
    thresholds) is answered exactly, which keeps small unit-test runs
    bit-identical to the pre-streaming recorder.  Past the window, answers
    come from the fixed-size log-bucketed shards (<= 2% relative error) or,
    for fractions listed in ``p2_quantiles``, from P² marker estimators.
    """

    #: how many leading samples are kept verbatim for exact small-run answers.
    DEFAULT_EXACT_WINDOW = 8192

    def __init__(
        self,
        report_interval: float = 900.0,
        exact_window: int = DEFAULT_EXACT_WINDOW,
        p2_quantiles: Optional[Sequence[float]] = None,
    ):
        self.report_interval = report_interval
        self.exact_window = exact_window
        self.interval_reports: List[dict] = []
        self._interval_start = 0.0
        self._interval_end = report_interval
        self._interval_count = 0
        self._interval_sum = 0.0
        #: global aggregate plus one shard per operation type and per client.
        self.overall = LatencyShard()
        self.op_shards: Dict[str, LatencyShard] = {}
        self.client_shards: Dict[int, LatencyShard] = {}
        #: exact (start_time, latency, op, client) prefix; capped at
        #: ``exact_window``.  Start times let :meth:`merged` replay the
        #: entries of several per-node recorders in completion order.
        self._window: List[Tuple[float, float, str, int]] = []
        self._p2: Dict[float, P2Quantile] = {}
        if p2_quantiles:
            self._p2 = {fraction: P2Quantile(fraction) for fraction in p2_quantiles}

    # -- recording ---------------------------------------------------------------

    def record(self, start_time: float, op: str, latency: float, client: int = 0) -> None:
        # One bucket-index computation feeds the global, per-op and
        # per-client shards: this is the replay hot path, kept unrolled —
        # looping over a shard tuple costs ~15% of the 1M-op pipeline
        # benchmark's streaming throughput.
        if latency > 0.0:
            index = int((math.log(latency) - _LOG_LOW) * _INV_LOG_RATIO)
            if index < 0:
                index = 0
            elif index > _TOP_BUCKET:
                index = _TOP_BUCKET
        else:
            index = -1
        shard = self.overall
        shard.n += 1
        shard.total += latency
        if latency < shard.minv:
            shard.minv = latency
        if latency > shard.maxv:
            shard.maxv = latency
        if index >= 0:
            shard.counts[index] += 1
        else:
            shard.zeros += 1
        shard = self.op_shards.get(op)
        if shard is None:
            shard = self.op_shards[op] = LatencyShard()
        shard.n += 1
        shard.total += latency
        if latency < shard.minv:
            shard.minv = latency
        if latency > shard.maxv:
            shard.maxv = latency
        if index >= 0:
            shard.counts[index] += 1
        else:
            shard.zeros += 1
        shard = self.client_shards.get(client)
        if shard is None:
            shard = self.client_shards[client] = LatencyShard()
        shard.n += 1
        shard.total += latency
        if latency < shard.minv:
            shard.minv = latency
        if latency > shard.maxv:
            shard.maxv = latency
        if index >= 0:
            shard.counts[index] += 1
        else:
            shard.zeros += 1
        # Interval reports: close any interval(s) the clock has passed.
        if start_time >= self._interval_end:
            while start_time >= self._interval_end:
                self._close_interval()
        self._interval_count += 1
        self._interval_sum += latency
        window = self._window
        if len(window) < self.exact_window:
            window.append((start_time, latency, op, client))
        if self._p2:
            for estimator in self._p2.values():
                estimator.add(latency)

    def finish(self) -> None:
        """Close the trailing reporting interval."""
        if self._interval_count:
            self._close_interval()

    def _close_interval(self) -> None:
        count = self._interval_count
        self.interval_reports.append(
            {
                "start": self._interval_start,
                "end": self._interval_start + self.report_interval,
                "operations": count,
                "mean_latency": self._interval_sum / count if count else 0.0,
            }
        )
        self._interval_count = 0
        self._interval_sum = 0.0
        self._interval_start += self.report_interval
        self._interval_end = self._interval_start + self.report_interval

    # -- introspection ------------------------------------------------------------

    @property
    def count(self) -> int:
        return self.overall.n

    @property
    def window_is_exact(self) -> bool:
        """True while every recorded sample still fits in the exact window."""
        return self.overall.n <= self.exact_window

    @property
    def retained_samples(self) -> int:
        """Number of verbatim samples held (bounded by ``exact_window``);
        the O(1)-memory guarantee the throughput benchmark asserts."""
        return len(self._window)

    def client_ids(self) -> List[int]:
        return sorted(self.client_shards)

    def _shard(self, op: Optional[str]) -> Optional[LatencyShard]:
        if op is None:
            return self.overall
        return self.op_shards.get(op)

    # -- summaries ------------------------------------------------------------------

    def latencies(self, op: Optional[str] = None) -> List[float]:
        """Recorded latencies (exact while the run fits the window; a
        distribution-preserving reconstruction from the shard buckets
        afterwards — suitable for CDF tables and plots)."""
        if self.window_is_exact:
            if op is None:
                return [latency for _, latency, _, _ in self._window]
            return [
                latency for _, latency, sample_op, _ in self._window if sample_op == op
            ]
        shard = self._shard(op)
        return shard.reconstructed_values() if shard is not None else []

    def mean_latency(self, op: Optional[str] = None) -> float:
        shard = self._shard(op)
        return shard.mean if shard is not None else 0.0

    def percentile(self, fraction: float, op: Optional[str] = None) -> float:
        shard = self._shard(op)
        if shard is None or shard.n == 0:
            return 0.0
        if not (0.0 <= fraction <= 1.0):
            raise InvalidArgument("percentile fraction must be in [0, 1]")
        if self.window_is_exact:
            values = sorted(self.latencies(op))
            index = min(int(math.ceil(fraction * len(values))) - 1, len(values) - 1)
            return values[max(index, 0)]
        if op is None and fraction in self._p2:
            return self._p2[fraction].value
        return shard.quantile(fraction)

    def cdf(self, op: Optional[str] = None, points: int = 200) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) pairs for plotting a CDF."""
        if self.window_is_exact:
            values = sorted(self.latencies(op))
            if not values:
                return []
            pairs = [(value, (i + 1) / len(values)) for i, value in enumerate(values)]
            return downsample_cdf(pairs, points)
        shard = self._shard(op)
        return shard.cdf(points) if shard is not None else []

    def fraction_completed_within(self, latency: float, op: Optional[str] = None) -> float:
        shard = self._shard(op)
        if shard is None or shard.n == 0:
            return 0.0
        if self.window_is_exact:
            values = self.latencies(op)
            if not values:
                return 0.0
            return sum(1 for value in values if value <= latency) / len(values)
        return shard.fraction_at_or_below(latency)

    def per_operation_means(self) -> Dict[str, float]:
        return {op: self.op_shards[op].mean for op in sorted(self.op_shards)}

    def per_client_summary(self) -> Dict[int, dict]:
        """Per-client operation counts, means and latency percentiles
        (the sharded recorders make these free)."""
        if self.window_is_exact:
            by_client: Dict[int, List[float]] = {}
            for _, latency, _, client in self._window:
                by_client.setdefault(client, []).append(latency)
            out: Dict[int, dict] = {}
            for client in sorted(by_client):
                values = sorted(by_client[client])
                n = len(values)

                def exact(fraction: float) -> float:
                    index = min(int(math.ceil(fraction * n)) - 1, n - 1)
                    return values[max(index, 0)]

                out[client] = {
                    "operations": n,
                    "mean_latency": sum(values) / n,
                    "median_latency": exact(0.5),
                    "p95_latency": exact(0.95),
                    "p99_latency": exact(0.99),
                }
            return out
        return {client: self.client_shards[client].summary() for client in self.client_ids()}

    def summary(self) -> dict:
        return {
            "operations": self.count,
            "mean_latency": self.mean_latency(),
            "median_latency": self.percentile(0.5),
            "p95_latency": self.percentile(0.95),
            "p99_latency": self.percentile(0.99),
            "per_operation": self.per_operation_means(),
        }

    # -- deterministic merge (parallel replay) ---------------------------------------

    @classmethod
    def merged(cls, parts: Sequence["LatencyRecorder"]) -> "LatencyRecorder":
        """Deterministically merge per-node recorders into one.

        ``parts`` must be ordered by cluster node id — the node id is the
        tie-break when two operations complete at the same instant, mirroring
        the scheduler's node-merge order.  Call :meth:`finish` on each part
        first so its trailing interval is closed.

        While the combined run fits the exact window, every part's verbatim
        entries are replayed through a fresh recorder in completion order
        ``(start + latency, node, per-node position)`` — exactly the order a
        sequential run would have recorded them — so every summary statistic
        is *bit-identical* to the sequential recorder's.  Beyond the window,
        shards merge arithmetically (exact counts/extrema/histograms; means
        can differ from sequential in the last ulp because float sums
        reassociate) and the verbatim window is rebuilt as the true global
        prefix.  P² estimators are not mergeable and are dropped on the
        arithmetic path; percentile queries fall back to the histogram
        shards.
        """
        if not parts:
            return cls()
        first = parts[0]
        out = cls(
            report_interval=first.report_interval,
            exact_window=first.exact_window,
            p2_quantiles=sorted(first._p2) or None,
        )
        total = sum(part.count for part in parts)
        entries = [
            (start + latency, node, position, start, op, latency, client)
            for node, part in enumerate(parts)
            for position, (start, latency, op, client) in enumerate(part._window)
        ]
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        if total <= out.exact_window and all(part.window_is_exact for part in parts):
            for _, _, _, start, op, latency, client in entries:
                out.record(start, op, latency, client=client)
            out.finish()
            return out
        # Arithmetic path: exact aggregates, reassociated float sums.
        out._p2 = {}
        for part in parts:
            out.overall.merge(part.overall)
            for op, shard in part.op_shards.items():
                mine = out.op_shards.get(op)
                if mine is None:
                    mine = out.op_shards[op] = LatencyShard()
                mine.merge(shard)
            for client, shard in part.client_shards.items():
                mine = out.client_shards.get(client)
                if mine is None:
                    mine = out.client_shards[client] = LatencyShard()
                mine.merge(shard)
        # Any global prefix restricts to a per-node prefix, so the union of
        # the parts' windows contains the true global prefix.
        out._window = [
            (start, latency, op, client)
            for _, _, _, start, op, latency, client in entries[: out.exact_window]
        ]
        by_start: Dict[float, dict] = {}
        for part in parts:
            for report in part.interval_reports:
                agg = by_start.setdefault(
                    report["start"],
                    {"start": report["start"], "end": report["end"], "operations": 0, "sum": 0.0},
                )
                agg["operations"] += report["operations"]
                agg["sum"] += report["mean_latency"] * report["operations"]
        out.interval_reports = [
            {
                "start": agg["start"],
                "end": agg["end"],
                "operations": agg["operations"],
                "mean_latency": agg["sum"] / agg["operations"] if agg["operations"] else 0.0,
            }
            for agg in (by_start[start] for start in sorted(by_start))
        ]
        if out.interval_reports:
            out._interval_start = out.interval_reports[-1]["end"]
            out._interval_end = out._interval_start + out.report_interval
        return out

    def describe(self) -> str:
        summary = self.summary()
        lines = [
            f"operations: {summary['operations']}",
            f"mean latency: {human_time(summary['mean_latency'])}",
            f"median latency: {human_time(summary['median_latency'])}",
            f"95th percentile: {human_time(summary['p95_latency'])}",
        ]
        for op, mean in summary["per_operation"].items():
            lines.append(f"  {op:>10}: {human_time(mean)}")
        if len(self.client_shards) > 1:
            lines.append("per-client:")
            for client, stats in self.per_client_summary().items():
                lines.append(
                    f"  client {client}: {stats['operations']} ops, "
                    f"mean {human_time(stats['mean_latency'])}, "
                    f"p95 {human_time(stats['p95_latency'])}"
                )
        return "\n".join(lines)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# --------------------------------------------------------------------------- plug-ins


class StatisticsPlugin(ABC):
    """A pluggable statistics collector activated when the simulator starts."""

    name = "abstract"

    @abstractmethod
    def collect(self, simulator: "PatsySimulator") -> dict:
        """Produce this plug-in's report from the simulator's components."""

    def histogram(self, simulator: "PatsySimulator") -> Optional[Histogram]:
        """Optional histogram view (None when not applicable)."""
        return None


class DiskQueuePlugin(StatisticsPlugin):
    """Histogram of disk queue lengths seen by arriving requests."""

    name = "disk-queues"

    def collect(self, simulator: "PatsySimulator") -> dict:
        per_disk = {}
        for driver in simulator.drivers:
            samples = driver.stats.queue_length_samples
            per_disk[driver.name] = {
                "operations": driver.stats.operations,
                "mean_queue_length": driver.stats.mean_queue_length(),
                "max_queue_length": max(samples) if samples else 0,
                "mean_response_time": driver.stats.mean_response_time(),
            }
        return {"disks": per_disk}

    def histogram(self, simulator: "PatsySimulator") -> Histogram:
        histogram = Histogram(bucket_bounds=[0, 1, 2, 4, 8, 16, 32, 64])
        for driver in simulator.drivers:
            histogram.add_all(driver.stats.queue_length_samples)
        return histogram


class RotationalDelayPlugin(StatisticsPlugin):
    """Histogram of rotational delays charged by the disk models."""

    name = "rotational-delay"

    def collect(self, simulator: "PatsySimulator") -> dict:
        per_disk = {}
        for disk in simulator.disks:
            per_disk[disk.name] = {
                "requests": disk.stats.requests,
                "cache_read_hits": disk.stats.cache_read_hits,
                "immediate_writes": disk.stats.immediate_writes,
                "mean_rotational_delay": disk.stats.mean_rotational_delay(),
                "total_seek_time": disk.stats.total_seek_time,
            }
        return {"disks": per_disk}

    def histogram(self, simulator: "PatsySimulator") -> Histogram:
        rotation = simulator.disks[0].spec.rotation_time if simulator.disks else 0.015
        histogram = Histogram(low=0.0, high=rotation, buckets=15)
        for disk in simulator.disks:
            histogram.add_all(disk.stats.rotational_delays)
        return histogram


class CachePlugin(StatisticsPlugin):
    """File-system cache statistics (hit rates, write savings, stalls)."""

    name = "cache"

    def collect(self, simulator: "PatsySimulator") -> dict:
        return {"cache": simulator.cache.stats.snapshot()}


class BusPlugin(StatisticsPlugin):
    """SCSI bus utilisation and contention."""

    name = "bus"

    def collect(self, simulator: "PatsySimulator") -> dict:
        elapsed = max(simulator.scheduler.now, 1e-9)
        buses = {}
        for bus in simulator.buses:
            buses[bus.name] = {
                "transfers": bus.transfers,
                "bytes": bus.bytes_transferred,
                "utilisation": bus.utilisation(elapsed),
                "mean_wait_time": bus.mean_wait_time,
            }
        return {"buses": buses}


DEFAULT_PLUGINS = (DiskQueuePlugin, RotationalDelayPlugin, CachePlugin, BusPlugin)
