"""Plug-in statistics objects.

"Detailed internal measurements are provided by plug-in statistics objects.
These plug-in statistics can be activated when the simulator is started and
they can provide standard statistics output with or without histograms.
Some of the standard detailed statistics objects include histograms of disk
queue sizes, cache statistics, and disk rotational delay statistics."

The plug-ins below read counters that the core components already maintain
(driver queue samples, disk model rotational delays, cache statistics, bus
contention) and turn them into report dictionaries and ASCII histograms.
The :class:`LatencyRecorder` is the "general simulation class" measurement
store: per-operation latencies, means, percentiles and CDFs, reported every
15 minutes of simulation time and for the whole run.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.errors import InvalidArgument
from repro.units import human_time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.patsy.simulator import PatsySimulator

__all__ = [
    "Histogram",
    "LatencyRecorder",
    "OperationSample",
    "StatisticsPlugin",
    "DiskQueuePlugin",
    "RotationalDelayPlugin",
    "CachePlugin",
    "BusPlugin",
    "DEFAULT_PLUGINS",
]


class Histogram:
    """A fixed-bucket histogram (linear or logarithmic buckets)."""

    def __init__(
        self,
        bucket_bounds: Optional[Sequence[float]] = None,
        low: float = 0.0,
        high: float = 1.0,
        buckets: int = 20,
        log_scale: bool = False,
    ):
        if bucket_bounds is not None:
            bounds = list(bucket_bounds)
            if sorted(bounds) != bounds or len(bounds) < 1:
                raise InvalidArgument("histogram bucket bounds must be sorted and non-empty")
            self.bounds = bounds
        elif log_scale:
            if low <= 0:
                raise InvalidArgument("log-scale histograms need a positive lower bound")
            ratio = (high / low) ** (1.0 / buckets)
            self.bounds = [low * ratio**i for i in range(1, buckets + 1)]
        else:
            step = (high - low) / buckets
            self.bounds = [low + step * i for i in range(1, buckets + 1)]
        self.counts = [0] * (len(self.bounds) + 1)  # last bucket = overflow
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        index = bisect_right(self.bounds, value)
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def add_all(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def bucket_fractions(self) -> List[float]:
        if self.total == 0:
            return [0.0] * len(self.counts)
        return [count / self.total for count in self.counts]

    def to_ascii(self, width: int = 40, label: str = "") -> str:
        """Render the histogram as text (one row per bucket)."""
        lines = [f"histogram {label} (n={self.total}, mean={self.mean:.6g})"]
        peak = max(self.counts) if self.total else 1
        lower = 0.0
        for index, count in enumerate(self.counts):
            if index < len(self.bounds):
                upper_text = f"{self.bounds[index]:.4g}"
            else:
                upper_text = "inf"
            bar = "#" * int(round(width * count / peak)) if peak else ""
            lines.append(f"  [{lower:>10.4g}, {upper_text:>10}) {count:>8} {bar}")
            if index < len(self.bounds):
                lower = self.bounds[index]
        return "\n".join(lines)


@dataclass(frozen=True)
class OperationSample:
    """One measured operation: when it started, what it was, how long it took."""

    start_time: float
    op: str
    latency: float
    client: int = 0


class LatencyRecorder:
    """Collects per-operation latencies and summarises them.

    This is the measurement half of the paper's "general simulation class":
    it "measures how long it takes before an operation completes", reports
    every 15 minutes of simulation time, and for the overall simulation.
    """

    def __init__(self, report_interval: float = 900.0):
        self.report_interval = report_interval
        self.samples: List[OperationSample] = []
        self.interval_reports: List[dict] = []
        self._interval_start = 0.0
        self._interval_samples: List[OperationSample] = []

    # -- recording ---------------------------------------------------------------

    def record(self, start_time: float, op: str, latency: float, client: int = 0) -> None:
        sample = OperationSample(start_time=start_time, op=op, latency=latency, client=client)
        self.samples.append(sample)
        while start_time >= self._interval_start + self.report_interval:
            self._close_interval()
        self._interval_samples.append(sample)

    def finish(self) -> None:
        """Close the trailing reporting interval."""
        if self._interval_samples:
            self._close_interval()

    def _close_interval(self) -> None:
        samples = self._interval_samples
        report = {
            "start": self._interval_start,
            "end": self._interval_start + self.report_interval,
            "operations": len(samples),
            "mean_latency": _mean([s.latency for s in samples]),
        }
        self.interval_reports.append(report)
        self._interval_samples = []
        self._interval_start += self.report_interval

    # -- summaries ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.samples)

    def latencies(self, op: Optional[str] = None) -> List[float]:
        if op is None:
            return [sample.latency for sample in self.samples]
        return [sample.latency for sample in self.samples if sample.op == op]

    def mean_latency(self, op: Optional[str] = None) -> float:
        return _mean(self.latencies(op))

    def percentile(self, fraction: float, op: Optional[str] = None) -> float:
        values = sorted(self.latencies(op))
        if not values:
            return 0.0
        if not (0.0 <= fraction <= 1.0):
            raise InvalidArgument("percentile fraction must be in [0, 1]")
        index = min(int(math.ceil(fraction * len(values))) - 1, len(values) - 1)
        return values[max(index, 0)]

    def cdf(self, op: Optional[str] = None, points: int = 200) -> List[tuple[float, float]]:
        """(latency, cumulative fraction) pairs for plotting a CDF."""
        values = sorted(self.latencies(op))
        if not values:
            return []
        if len(values) <= points:
            return [(value, (i + 1) / len(values)) for i, value in enumerate(values)]
        step = len(values) / points
        result = []
        for i in range(points):
            index = min(int((i + 1) * step) - 1, len(values) - 1)
            result.append((values[index], (index + 1) / len(values)))
        return result

    def fraction_completed_within(self, latency: float, op: Optional[str] = None) -> float:
        values = self.latencies(op)
        if not values:
            return 0.0
        return sum(1 for value in values if value <= latency) / len(values)

    def per_operation_means(self) -> Dict[str, float]:
        ops = sorted({sample.op for sample in self.samples})
        return {op: self.mean_latency(op) for op in ops}

    def summary(self) -> dict:
        return {
            "operations": self.count,
            "mean_latency": self.mean_latency(),
            "median_latency": self.percentile(0.5),
            "p95_latency": self.percentile(0.95),
            "p99_latency": self.percentile(0.99),
            "per_operation": self.per_operation_means(),
        }

    def describe(self) -> str:
        summary = self.summary()
        lines = [
            f"operations: {summary['operations']}",
            f"mean latency: {human_time(summary['mean_latency'])}",
            f"median latency: {human_time(summary['median_latency'])}",
            f"95th percentile: {human_time(summary['p95_latency'])}",
        ]
        for op, mean in summary["per_operation"].items():
            lines.append(f"  {op:>10}: {human_time(mean)}")
        return "\n".join(lines)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# --------------------------------------------------------------------------- plug-ins


class StatisticsPlugin(ABC):
    """A pluggable statistics collector activated when the simulator starts."""

    name = "abstract"

    @abstractmethod
    def collect(self, simulator: "PatsySimulator") -> dict:
        """Produce this plug-in's report from the simulator's components."""

    def histogram(self, simulator: "PatsySimulator") -> Optional[Histogram]:
        """Optional histogram view (None when not applicable)."""
        return None


class DiskQueuePlugin(StatisticsPlugin):
    """Histogram of disk queue lengths seen by arriving requests."""

    name = "disk-queues"

    def collect(self, simulator: "PatsySimulator") -> dict:
        per_disk = {}
        for driver in simulator.drivers:
            samples = driver.stats.queue_length_samples
            per_disk[driver.name] = {
                "operations": driver.stats.operations,
                "mean_queue_length": driver.stats.mean_queue_length(),
                "max_queue_length": max(samples) if samples else 0,
                "mean_response_time": driver.stats.mean_response_time(),
            }
        return {"disks": per_disk}

    def histogram(self, simulator: "PatsySimulator") -> Histogram:
        histogram = Histogram(bucket_bounds=[0, 1, 2, 4, 8, 16, 32, 64])
        for driver in simulator.drivers:
            histogram.add_all(driver.stats.queue_length_samples)
        return histogram


class RotationalDelayPlugin(StatisticsPlugin):
    """Histogram of rotational delays charged by the disk models."""

    name = "rotational-delay"

    def collect(self, simulator: "PatsySimulator") -> dict:
        per_disk = {}
        for disk in simulator.disks:
            per_disk[disk.name] = {
                "requests": disk.stats.requests,
                "cache_read_hits": disk.stats.cache_read_hits,
                "immediate_writes": disk.stats.immediate_writes,
                "mean_rotational_delay": disk.stats.mean_rotational_delay(),
                "total_seek_time": disk.stats.total_seek_time,
            }
        return {"disks": per_disk}

    def histogram(self, simulator: "PatsySimulator") -> Histogram:
        rotation = simulator.disks[0].spec.rotation_time if simulator.disks else 0.015
        histogram = Histogram(low=0.0, high=rotation, buckets=15)
        for disk in simulator.disks:
            histogram.add_all(disk.stats.rotational_delays)
        return histogram


class CachePlugin(StatisticsPlugin):
    """File-system cache statistics (hit rates, write savings, stalls)."""

    name = "cache"

    def collect(self, simulator: "PatsySimulator") -> dict:
        return {"cache": simulator.cache.stats.snapshot()}


class BusPlugin(StatisticsPlugin):
    """SCSI bus utilisation and contention."""

    name = "bus"

    def collect(self, simulator: "PatsySimulator") -> dict:
        elapsed = max(simulator.scheduler.now, 1e-9)
        buses = {}
        for bus in simulator.buses:
            buses[bus.name] = {
                "transfers": bus.transfers,
                "bytes": bus.bytes_transferred,
                "utilisation": bus.utilisation(elapsed),
                "mean_wait_time": bus.mean_wait_time,
            }
        return {"buses": buses}


DEFAULT_PLUGINS = (DiskQueuePlugin, RotationalDelayPlugin, CachePlugin, BusPlugin)
