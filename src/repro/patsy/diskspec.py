"""Disk drive specifications for the simulated disks.

The paper's experiments use the HP 97560, "equipped with a 128KB internal
cache that can be used for immediate reported writes ... and a read-ahead
policy", modelled after Ruemmler & Wilkes ("An Introduction to Disk Drive
Modeling") and Kotz et al.'s detailed HP 97560 model — the two disk-model
references the paper cites as its fidelity bar.

The numeric parameters below follow those publications: a two-piece seek
curve (square-root for short seeks, linear for long ones), 4002 rpm
rotation, per-operation controller overhead, and an on-disk cache with
immediate-reported writes and read-ahead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import KB, SECTOR_SIZE

__all__ = ["DiskSpec", "HP97560", "GENERIC_SMALL_DISK", "DISK_SPECS", "disk_spec_by_name"]


@dataclass(frozen=True)
class DiskSpec:
    """Geometry and timing parameters of one disk model."""

    name: str
    cylinders: int
    heads: int
    sectors_per_track: int
    sector_size: int = SECTOR_SIZE
    rpm: float = 4002.0
    #: seek curve: seek(d) = a_short + b_short * sqrt(d) for d < short_seek_boundary,
    #: a_long + b_long * d otherwise (times in seconds, distance in cylinders).
    short_seek_boundary: int = 383
    seek_a_short: float = 3.24e-3
    seek_b_short: float = 0.400e-3
    seek_a_long: float = 8.00e-3
    seek_b_long: float = 0.008e-3
    head_switch_time: float = 1.0e-3
    controller_overhead: float = 2.2e-3
    #: on-disk cache used for read-ahead and immediate-reported writes.
    cache_bytes: int = 128 * KB
    read_ahead_bytes: int = 4 * KB
    immediate_reported_writes: bool = True

    def __post_init__(self) -> None:
        if self.cylinders <= 0 or self.heads <= 0 or self.sectors_per_track <= 0:
            raise ConfigurationError("disk geometry must be positive")
        if self.rpm <= 0:
            raise ConfigurationError("rpm must be positive")

    # -- derived quantities -----------------------------------------------------

    @property
    def rotation_time(self) -> float:
        """Time for one full revolution, seconds."""
        return 60.0 / self.rpm

    @property
    def sectors_per_cylinder(self) -> int:
        return self.heads * self.sectors_per_track

    @property
    def num_sectors(self) -> int:
        return self.cylinders * self.sectors_per_cylinder

    @property
    def capacity_bytes(self) -> int:
        return self.num_sectors * self.sector_size

    @property
    def track_transfer_time(self) -> float:
        """Time to transfer one full track off the media."""
        return self.rotation_time

    def sector_transfer_time(self, count: int = 1) -> float:
        """Media transfer time for ``count`` sectors."""
        return (count / self.sectors_per_track) * self.rotation_time

    def seek_time(self, distance_cylinders: int) -> float:
        """Seek time for a move of ``distance_cylinders`` cylinders."""
        distance = abs(distance_cylinders)
        if distance == 0:
            return 0.0
        if distance < self.short_seek_boundary:
            return self.seek_a_short + self.seek_b_short * math.sqrt(distance)
        return self.seek_a_long + self.seek_b_long * distance

    # -- address decomposition ------------------------------------------------------

    def decompose(self, sector: int) -> tuple[int, int, int]:
        """Split an absolute sector number into (cylinder, head, sector-in-track)."""
        cylinder = sector // self.sectors_per_cylinder
        remainder = sector % self.sectors_per_cylinder
        head = remainder // self.sectors_per_track
        sector_in_track = remainder % self.sectors_per_track
        return cylinder, head, sector_in_track


#: The disk used throughout the paper's experiments (HP 97560: 1962 cylinders,
#: 19 data surfaces, 72 sectors per track, 4002 rpm, ~1.3 GB).
HP97560 = DiskSpec(
    name="hp97560",
    cylinders=1962,
    heads=19,
    sectors_per_track=72,
)

#: A deliberately small disk for fast unit tests (about 36 MB).
GENERIC_SMALL_DISK = DiskSpec(
    name="small-test-disk",
    cylinders=128,
    heads=4,
    sectors_per_track=144,
    cache_bytes=64 * KB,
)

DISK_SPECS = {spec.name: spec for spec in (HP97560, GENERIC_SMALL_DISK)}


def disk_spec_by_name(name: str) -> DiskSpec:
    try:
        return DISK_SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown disk model {name!r}; known models: {sorted(DISK_SPECS)}"
        ) from None
