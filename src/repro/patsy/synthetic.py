"""Synthetic stand-ins for the Sprite traces used in the paper's figures.

The genuine Berkeley Sprite traces (Baker et al., SOSP '91) are 24-hour
traces of a Sun 4/280 file server and cannot be shipped with this
repository.  Each profile below reproduces the *character* that the paper
attributes to the corresponding trace, because that character is what drives
the published results:

* **1a** — an ordinary day: mixed read/write traffic, small files, lots of
  short-lived data.  The write-saving policies shine here.
* **1b** — "many large and parallel write operations": a larger client
  population writing big files concurrently.  The 4 MB NVRAM becomes the
  bottleneck ("new writes are waiting for the NVRAM to drain"), so NVRAM
  barely helps over the 30-second policy.
* **2a / 2b** — further ordinary days (permutations of 1a with different
  seeds and slightly different mixes), included because Figure 5 reports
  every trace.
* **5** — "many large writes enter the system while there are also a fair
  amount of stat and read operations".  Write data clutters the cache,
  read hit rates drop, and the gap between UPS and the baseline narrows.
* **6** — a read-mostly day, the calmest of the set.

Profiles are scaled down from 24 hours to minutes so a pure-Python
simulation finishes quickly; the *ratios* that matter (write volume versus
cache size versus NVRAM size, burstiness, overwrite factor) are preserved,
and the experiment configuration scales the cache and NVRAM with the same
factor (see ``repro.config.sprite_server_config``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.patsy.traces import TraceRecord
from repro.patsy.workload import SyntheticWorkloadGenerator, WorkloadProfile
from repro.units import KB

__all__ = ["SPRITE_PROFILES", "SPRITE_TRACE_NAMES", "sprite_like_trace"]


SPRITE_PROFILES: Dict[str, WorkloadProfile] = {
    # An ordinary day-time workload: small files, strong overwrite behaviour.
    "1a": WorkloadProfile(
        name="sprite-1a",
        duration=420.0,
        num_clients=7,
        mean_think_time=2.5,
        read_fraction=0.50,
        stat_fraction=0.35,
        mean_file_size=24 * KB,
        large_file_fraction=0.06,
        large_file_size=128 * KB,
        overwrite_fraction=0.45,
        delete_fraction=0.40,
        rewrite_delay=50.0,
    ),
    # Many large, parallel writes: the NVRAM-bottleneck trace.
    "1b": WorkloadProfile(
        name="sprite-1b",
        duration=420.0,
        num_clients=8,
        mean_think_time=3.0,
        read_fraction=0.30,
        stat_fraction=0.20,
        mean_file_size=32 * KB,
        large_file_fraction=0.30,
        large_file_size=320 * KB,
        overwrite_fraction=0.35,
        delete_fraction=0.40,
        rewrite_delay=8.0,
    ),
    # Two further ordinary days (Figure 5 reports them as near-permutations).
    "2a": WorkloadProfile(
        name="sprite-2a",
        duration=420.0,
        num_clients=6,
        mean_think_time=2.8,
        read_fraction=0.55,
        stat_fraction=0.30,
        mean_file_size=20 * KB,
        large_file_fraction=0.05,
        large_file_size=128 * KB,
        overwrite_fraction=0.50,
        delete_fraction=0.35,
        rewrite_delay=45.0,
    ),
    "2b": WorkloadProfile(
        name="sprite-2b",
        duration=420.0,
        num_clients=7,
        mean_think_time=2.5,
        read_fraction=0.45,
        stat_fraction=0.30,
        mean_file_size=28 * KB,
        large_file_fraction=0.07,
        large_file_size=160 * KB,
        overwrite_fraction=0.45,
        delete_fraction=0.40,
        rewrite_delay=50.0,
    ),
    # Large writes plus a fair amount of stats and reads: cache clutter.
    "5": WorkloadProfile(
        name="sprite-5",
        duration=420.0,
        num_clients=8,
        mean_think_time=3.0,
        read_fraction=0.45,
        stat_fraction=0.50,
        stat_burst=4,
        mean_file_size=48 * KB,
        large_file_fraction=0.20,
        large_file_size=256 * KB,
        overwrite_fraction=0.20,
        delete_fraction=0.15,
        rewrite_delay=20.0,
        hot_read_fraction=0.4,
        initial_files=200,
    ),
    # A calm, read-mostly day.
    "6": WorkloadProfile(
        name="sprite-6",
        duration=420.0,
        num_clients=5,
        mean_think_time=3.0,
        read_fraction=0.70,
        stat_fraction=0.40,
        mean_file_size=16 * KB,
        large_file_fraction=0.03,
        large_file_size=128 * KB,
        overwrite_fraction=0.45,
        delete_fraction=0.40,
        rewrite_delay=50.0,
    ),
}

#: the trace names reported in the paper's Figure 5, in display order.
SPRITE_TRACE_NAMES = ("1a", "1b", "2a", "2b", "5", "6")


def sprite_like_trace(name: str, scale: float = 1.0, seed: int = 0) -> List[TraceRecord]:
    """Generate the synthetic stand-in for Sprite trace ``name``.

    ``scale`` multiplies the trace duration (and with it the number of
    operations); ``seed`` varies the arrival pattern without changing the
    trace's character.
    """
    profile = SPRITE_PROFILES.get(name)
    if profile is None:
        raise ConfigurationError(
            f"unknown Sprite trace {name!r}; known traces: {sorted(SPRITE_PROFILES)}"
        )
    if scale != 1.0:
        profile = profile.scaled(scale)
    generator = SyntheticWorkloadGenerator(profile, seed=seed)
    return generator.generate()
