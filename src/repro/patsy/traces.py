"""File-system traces: records, readers, writers and grouping.

"File-system traces are collections of records that describe all the
activity of a real file-system at some time.  These records specify when the
operation took place (usually down to the microsecond), and which
file-system operation was executed."

The original experiments replayed the Berkeley Sprite traces and the CMU
Coda traces; neither can be redistributed here, so this module defines a
small, explicit on-disk trace format (tab-separated text) plus readers for
Sprite-like and Coda-like encodings (:mod:`repro.patsy.sprite`,
:mod:`repro.patsy.coda`) and the synthetic generators in
:mod:`repro.patsy.workload` produce the same records.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, TextIO, Union

from repro.errors import TraceError

__all__ = [
    "TraceRecord",
    "TRACE_OPERATIONS",
    "TraceWriter",
    "TraceReader",
    "load_trace",
    "save_trace",
    "records_by_client",
    "group_operations",
    "OperationGroup",
    "trace_duration",
    "operation_mix",
    "synthesize_missing_times",
]

#: operations understood by the replayer.
TRACE_OPERATIONS = frozenset(
    {
        "open",
        "close",
        "read",
        "write",
        "create",
        "unlink",
        "truncate",
        "mkdir",
        "rmdir",
        "stat",
        "readdir",
        "rename",
        "symlink",
        "fsync",
    }
)


@dataclass(frozen=True)
class TraceRecord:
    """One traced file-system operation."""

    timestamp: float
    client: int
    op: str
    path: str
    offset: int = 0
    size: int = 0
    path2: str = ""

    def __post_init__(self) -> None:
        if self.op not in TRACE_OPERATIONS:
            raise TraceError(f"unknown trace operation {self.op!r}")
        if self.timestamp < 0:
            raise TraceError("trace timestamps must be non-negative")
        if self.offset < 0 or self.size < 0:
            raise TraceError("trace offsets and sizes must be non-negative")

    def shifted(self, delta: float) -> "TraceRecord":
        """A copy of this record with its timestamp shifted by ``delta``."""
        return replace(self, timestamp=self.timestamp + delta)


# --------------------------------------------------------------------------- text format


class TraceWriter:
    """Writes trace records as tab-separated text, one record per line."""

    HEADER = "# repro-trace v1: timestamp\tclient\top\tpath\toffset\tsize\tpath2"

    def __init__(self, stream: TextIO):
        self.stream = stream
        self.stream.write(self.HEADER + "\n")
        self.records_written = 0

    def write(self, record: TraceRecord) -> None:
        self.stream.write(
            f"{record.timestamp:.6f}\t{record.client}\t{record.op}\t{record.path}\t"
            f"{record.offset}\t{record.size}\t{record.path2}\n"
        )
        self.records_written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> int:
        for record in records:
            self.write(record)
        return self.records_written


class TraceReader:
    """Reads the tab-separated trace format produced by :class:`TraceWriter`."""

    def __init__(self, stream: TextIO):
        self.stream = stream

    def __iter__(self) -> Iterator[TraceRecord]:
        for line_number, line in enumerate(self.stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield self.parse_line(line, line_number)

    @staticmethod
    def parse_line(line: str, line_number: int = 0) -> TraceRecord:
        fields = line.split("\t")
        if len(fields) < 6:
            raise TraceError(f"trace line {line_number}: expected at least 6 fields, got {len(fields)}")
        try:
            return TraceRecord(
                timestamp=float(fields[0]),
                client=int(fields[1]),
                op=fields[2],
                path=fields[3],
                offset=int(fields[4]),
                size=int(fields[5]),
                path2=fields[6] if len(fields) > 6 else "",
            )
        except (ValueError, TraceError) as exc:
            raise TraceError(f"trace line {line_number}: {exc}") from exc


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records to ``path``; returns the number of records written."""
    with open(path, "w", encoding="utf-8") as stream:
        writer = TraceWriter(stream)
        return writer.write_all(records)


def load_trace(source: Union[str, Path, TextIO]) -> list[TraceRecord]:
    """Load every record from a path or open text stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            return list(TraceReader(stream))
    if isinstance(source, io.TextIOBase) or hasattr(source, "read"):
        return list(TraceReader(source))
    raise TraceError(f"cannot load a trace from {type(source).__name__}")


# --------------------------------------------------------------------------- analysis helpers


def records_by_client(records: Sequence[TraceRecord]) -> dict[int, list[TraceRecord]]:
    """Split a trace into per-client streams, each sorted by time."""
    streams: dict[int, list[TraceRecord]] = {}
    for record in records:
        streams.setdefault(record.client, []).append(record)
    for stream in streams.values():
        stream.sort(key=lambda record: record.timestamp)
    return streams


def trace_duration(records: Sequence[TraceRecord]) -> float:
    if not records:
        return 0.0
    times = [record.timestamp for record in records]
    return max(times) - min(times)


def operation_mix(records: Sequence[TraceRecord]) -> dict[str, int]:
    mix: dict[str, int] = {}
    for record in records:
        mix[record.op] = mix.get(record.op, 0) + 1
    return mix


@dataclass
class OperationGroup:
    """A group of operations that obviously belong together.

    The replayer threads "read a part of the trace file, group operations
    that obviously belong together (such as an open, read, read, write, ...,
    close sequence), and call the abstract-client interface to execute the
    operation on the simulated system."
    """

    client: int
    path: str
    records: list[TraceRecord] = field(default_factory=list)

    @property
    def start_time(self) -> float:
        return self.records[0].timestamp if self.records else 0.0

    @property
    def end_time(self) -> float:
        return self.records[-1].timestamp if self.records else 0.0

    def __len__(self) -> int:
        return len(self.records)


def group_operations(records: Sequence[TraceRecord]) -> list[OperationGroup]:
    """Group per-client open..close sequences on the same path.

    Operations outside any open..close bracket become single-record groups.
    """
    groups: list[OperationGroup] = []
    open_groups: dict[tuple[int, str], OperationGroup] = {}
    for record in sorted(records, key=lambda r: (r.timestamp, r.client)):
        key = (record.client, record.path)
        if record.op == "open":
            group = OperationGroup(client=record.client, path=record.path, records=[record])
            open_groups[key] = group
            groups.append(group)
        elif key in open_groups:
            open_groups[key].records.append(record)
            if record.op == "close":
                del open_groups[key]
        else:
            groups.append(
                OperationGroup(client=record.client, path=record.path, records=[record])
            )
    return groups


def synthesize_missing_times(records: Sequence[TraceRecord]) -> list[TraceRecord]:
    """Position read/write operations with no recorded time (timestamp equal
    to the enclosing open) equidistantly between the open and the close,
    which is what the paper does when "the actual time a read or write
    operation took place" is missing."""
    result: list[TraceRecord] = []
    for group in group_operations(records):
        body = group.records
        if len(body) < 3 or body[0].op != "open" or body[-1].op != "close":
            result.extend(body)
            continue
        open_time = body[0].timestamp
        close_time = body[-1].timestamp
        inner = body[1:-1]
        missing = [r for r in inner if r.timestamp == open_time]
        if not missing or close_time <= open_time:
            result.extend(body)
            continue
        step = (close_time - open_time) / (len(inner) + 1)
        result.append(body[0])
        for index, record in enumerate(inner, start=1):
            if record.timestamp == open_time:
                result.append(record.shifted(step * index))
            else:
                result.append(record)
        result.append(body[-1])
    result.sort(key=lambda record: record.timestamp)
    return result
