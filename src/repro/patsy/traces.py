"""File-system traces: records, readers, writers and grouping.

"File-system traces are collections of records that describe all the
activity of a real file-system at some time.  These records specify when the
operation took place (usually down to the microsecond), and which
file-system operation was executed."

The original experiments replayed the Berkeley Sprite traces and the CMU
Coda traces; neither can be redistributed here, so this module defines a
small, explicit on-disk trace format (tab-separated text) plus readers for
Sprite-like and Coda-like encodings (:mod:`repro.patsy.sprite`,
:mod:`repro.patsy.coda`) and the synthetic generators in
:mod:`repro.patsy.workload` produce the same records.
"""

from __future__ import annotations

import heapq
import io
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, TextIO, Tuple, Union

from repro.errors import TraceError

__all__ = [
    "TraceRecord",
    "TRACE_OPERATIONS",
    "TraceWriter",
    "TraceReader",
    "load_trace",
    "iter_trace",
    "iter_trace_tuples",
    "scan_trace_clients",
    "scan_trace_client_counts",
    "save_trace",
    "records_by_client",
    "partition_by_client",
    "group_operations",
    "OperationGroup",
    "trace_duration",
    "operation_mix",
    "synthesize_missing_times",
    "stream_synthesize_missing_times",
]

#: operations understood by the replayer.
TRACE_OPERATIONS = frozenset(
    {
        "open",
        "close",
        "read",
        "write",
        "create",
        "unlink",
        "truncate",
        "mkdir",
        "rmdir",
        "stat",
        "readdir",
        "rename",
        "symlink",
        "fsync",
    }
)


@dataclass(frozen=True)
class TraceRecord:
    """One traced file-system operation."""

    timestamp: float
    client: int
    op: str
    path: str
    offset: int = 0
    size: int = 0
    path2: str = ""

    def __post_init__(self) -> None:
        if self.op not in TRACE_OPERATIONS:
            raise TraceError(f"unknown trace operation {self.op!r}")
        if self.timestamp < 0:
            raise TraceError("trace timestamps must be non-negative")
        if self.offset < 0 or self.size < 0:
            raise TraceError("trace offsets and sizes must be non-negative")

    def shifted(self, delta: float) -> "TraceRecord":
        """A copy of this record with its timestamp shifted by ``delta``."""
        return replace(self, timestamp=self.timestamp + delta)


# --------------------------------------------------------------------------- text format


class TraceWriter:
    """Writes trace records as tab-separated text, one record per line."""

    HEADER = "# repro-trace v1: timestamp\tclient\top\tpath\toffset\tsize\tpath2"

    def __init__(self, stream: TextIO):
        self.stream = stream
        self.stream.write(self.HEADER + "\n")
        self.records_written = 0

    def write(self, record: TraceRecord) -> None:
        self.stream.write(
            f"{record.timestamp:.6f}\t{record.client}\t{record.op}\t{record.path}\t"
            f"{record.offset}\t{record.size}\t{record.path2}\n"
        )
        self.records_written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> int:
        for record in records:
            self.write(record)
        return self.records_written


class TraceReader:
    """Reads the tab-separated trace format produced by :class:`TraceWriter`."""

    def __init__(self, stream: TextIO):
        self.stream = stream

    def __iter__(self) -> Iterator[TraceRecord]:
        for line_number, line in enumerate(self.stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield self.parse_line(line, line_number)

    @staticmethod
    def parse_line(line: str, line_number: int = 0) -> TraceRecord:
        fields = line.split("\t")
        if len(fields) < 6:
            raise TraceError(f"trace line {line_number}: expected at least 6 fields, got {len(fields)}")
        try:
            return TraceRecord(
                timestamp=float(fields[0]),
                client=int(fields[1]),
                op=fields[2],
                path=fields[3],
                offset=int(fields[4]),
                size=int(fields[5]),
                path2=fields[6] if len(fields) > 6 else "",
            )
        except (ValueError, TraceError) as exc:
            raise TraceError(f"trace line {line_number}: {exc}") from exc

    def iter_tuples(self) -> Iterator[Tuple[float, int, str, str, int, int, str]]:
        """Fast streaming parse: ``(timestamp, client, op, path, offset,
        size, path2)`` tuples without :class:`TraceRecord` construction or
        validation.  This is the measurement hot path for multi-million-line
        traces; use :meth:`__iter__` when validated record objects are
        needed (the replayer does)."""
        for line_number, line in enumerate(self.stream, start=1):
            if not line or line[0] == "#" or line == "\n":
                continue
            fields = line.rstrip("\n").split("\t")
            try:
                yield (
                    float(fields[0]),
                    int(fields[1]),
                    fields[2],
                    fields[3],
                    int(fields[4]),
                    int(fields[5]),
                    fields[6] if len(fields) > 6 else "",
                )
            except (ValueError, IndexError) as exc:
                if not line.strip():
                    continue
                raise TraceError(f"trace line {line_number}: {exc}") from exc


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records to ``path``; returns the number of records written."""
    with open(path, "w", encoding="utf-8") as stream:
        writer = TraceWriter(stream)
        return writer.write_all(records)


def load_trace(source: Union[str, Path, TextIO]) -> list[TraceRecord]:
    """Load every record from a path or open text stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            return list(TraceReader(stream))
    if isinstance(source, io.TextIOBase) or hasattr(source, "read"):
        return list(TraceReader(source))
    raise TraceError(f"cannot load a trace from {type(source).__name__}")


def iter_trace(source: Union[str, Path, TextIO]) -> Iterator[TraceRecord]:
    """Stream records from a path or open text stream, one at a time.

    The streaming counterpart of :func:`load_trace`: nothing is
    materialised, so a multi-million-record trace costs one record of
    memory.  When ``source`` is a path the file is closed when the
    iterator is exhausted or garbage-collected."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            yield from TraceReader(stream)
        return
    if isinstance(source, io.TextIOBase) or hasattr(source, "read"):
        yield from TraceReader(source)
        return
    raise TraceError(f"cannot stream a trace from {type(source).__name__}")


def iter_trace_tuples(
    source: Union[str, Path, TextIO]
) -> Iterator[Tuple[float, int, str, str, int, int, str]]:
    """Stream raw ``(timestamp, client, op, path, offset, size, path2)``
    tuples (see :meth:`TraceReader.iter_tuples`) from a path or stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            yield from TraceReader(stream).iter_tuples()
        return
    if isinstance(source, io.TextIOBase) or hasattr(source, "read"):
        yield from TraceReader(source).iter_tuples()
        return
    raise TraceError(f"cannot stream a trace from {type(source).__name__}")


def scan_trace_client_counts(source: Union[str, Path, TextIO]) -> dict[int, int]:
    """One cheap pass over a trace counting records per client id.

    Streaming replay uses this to spawn the same client threads, in the
    same sorted order, as materialised replay, and to let a finished
    client stop pulling the shared iterator the moment its records run
    out — memory is O(#clients), never O(#records)."""

    def scan(stream: TextIO) -> dict[int, int]:
        counts: dict[int, int] = {}
        for line in stream:
            if not line or line[0] == "#" or line == "\n":
                continue
            fields = line.split("\t", 2)
            if len(fields) < 2:
                continue
            try:
                client = int(fields[1])
            except ValueError:
                continue
            counts[client] = counts.get(client, 0) + 1
        return counts

    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            return scan(stream)
    if isinstance(source, io.TextIOBase) or hasattr(source, "read"):
        return scan(source)
    raise TraceError(f"cannot scan a trace from {type(source).__name__}")


def scan_trace_clients(source: Union[str, Path, TextIO]) -> list[int]:
    """One cheap pass over a trace collecting the sorted client ids."""
    return sorted(scan_trace_client_counts(source))


# --------------------------------------------------------------------------- analysis helpers


def records_by_client(records: Sequence[TraceRecord]) -> dict[int, list[TraceRecord]]:
    """Split a trace into per-client streams, each sorted by time."""
    streams: dict[int, list[TraceRecord]] = {}
    for record in records:
        streams.setdefault(record.client, []).append(record)
    for stream in streams.values():
        stream.sort(key=lambda record: record.timestamp)
    return streams


def partition_by_client(records: Iterable[TraceRecord]) -> list[TraceRecord]:
    """Rewrite a trace so every client works inside its own ``/c{client}``
    subtree — the node-partitioned shape the parallel cluster replay
    (``cluster.parallel`` / ``--jobs``) requires.  Timestamps, operations
    and sizes are untouched; only paths gain the per-client prefix."""
    rewritten = []
    for record in records:
        prefix = f"/c{record.client}"
        rewritten.append(
            replace(
                record,
                path=f"{prefix}{record.path}",
                path2=f"{prefix}{record.path2}" if record.path2 else record.path2,
            )
        )
    return rewritten


def trace_duration(records: Sequence[TraceRecord]) -> float:
    if not records:
        return 0.0
    times = [record.timestamp for record in records]
    return max(times) - min(times)


def operation_mix(records: Sequence[TraceRecord]) -> dict[str, int]:
    mix: dict[str, int] = {}
    for record in records:
        mix[record.op] = mix.get(record.op, 0) + 1
    return mix


@dataclass
class OperationGroup:
    """A group of operations that obviously belong together.

    The replayer threads "read a part of the trace file, group operations
    that obviously belong together (such as an open, read, read, write, ...,
    close sequence), and call the abstract-client interface to execute the
    operation on the simulated system."
    """

    client: int
    path: str
    records: list[TraceRecord] = field(default_factory=list)

    @property
    def start_time(self) -> float:
        return self.records[0].timestamp if self.records else 0.0

    @property
    def end_time(self) -> float:
        return self.records[-1].timestamp if self.records else 0.0

    def __len__(self) -> int:
        return len(self.records)


def group_operations(records: Sequence[TraceRecord]) -> list[OperationGroup]:
    """Group per-client open..close sequences on the same path.

    Operations outside any open..close bracket become single-record groups.
    """
    groups: list[OperationGroup] = []
    open_groups: dict[tuple[int, str], OperationGroup] = {}
    for record in sorted(records, key=lambda r: (r.timestamp, r.client)):
        key = (record.client, record.path)
        if record.op == "open":
            group = OperationGroup(client=record.client, path=record.path, records=[record])
            open_groups[key] = group
            groups.append(group)
        elif key in open_groups:
            open_groups[key].records.append(record)
            if record.op == "close":
                del open_groups[key]
        else:
            groups.append(
                OperationGroup(client=record.client, path=record.path, records=[record])
            )
    return groups


def synthesize_missing_times(records: Sequence[TraceRecord]) -> list[TraceRecord]:
    """Position read/write operations with no recorded time (timestamp equal
    to the enclosing open) equidistantly between the open and the close,
    which is what the paper does when "the actual time a read or write
    operation took place" is missing."""
    result: list[TraceRecord] = []
    for group in group_operations(records):
        body = group.records
        if len(body) < 3 or body[0].op != "open" or body[-1].op != "close":
            result.extend(body)
            continue
        open_time = body[0].timestamp
        close_time = body[-1].timestamp
        inner = body[1:-1]
        missing = [r for r in inner if r.timestamp == open_time]
        if not missing or close_time <= open_time:
            result.extend(body)
            continue
        step = (close_time - open_time) / (len(inner) + 1)
        result.append(body[0])
        for index, record in enumerate(inner, start=1):
            if record.timestamp == open_time:
                result.append(record.shifted(step * index))
            else:
                result.append(record)
        result.append(body[-1])
    result.sort(key=lambda record: record.timestamp)
    return result


def _adjust_group(body: list[TraceRecord]) -> list[TraceRecord]:
    """Apply the equidistant missing-time placement to one open..close group
    (identical rules to :func:`synthesize_missing_times`)."""
    if len(body) < 3 or body[0].op != "open" or body[-1].op != "close":
        return body
    open_time = body[0].timestamp
    close_time = body[-1].timestamp
    inner = body[1:-1]
    missing = [r for r in inner if r.timestamp == open_time]
    if not missing or close_time <= open_time:
        return body
    step = (close_time - open_time) / (len(inner) + 1)
    adjusted = [body[0]]
    for index, record in enumerate(inner, start=1):
        if record.timestamp == open_time:
            adjusted.append(record.shifted(step * index))
        else:
            adjusted.append(record)
    adjusted.append(body[-1])
    return adjusted


def stream_synthesize_missing_times(
    records: Iterable[TraceRecord],
) -> Iterator[TraceRecord]:
    """Streaming counterpart of :func:`synthesize_missing_times`.

    The input must be time-ordered (which every on-disk trace is).  Open..
    close brackets are buffered until their close arrives — an adjusted
    read/write gets a timestamp anywhere inside the bracket, so nothing
    from a bracket can be emitted before its close fixes the spacing.
    Adjusted and pass-through records merge through a small reorder heap
    and are released once no still-open bracket could produce an earlier
    timestamp.  Memory is bounded by the records inside concurrently open
    brackets (plus the reorder heap), never by the trace length.
    """
    pending: list[tuple[float, int, TraceRecord]] = []  # reorder min-heap
    sequence = 0
    open_groups: dict[tuple[int, str], list[TraceRecord]] = {}
    open_times: dict[tuple[int, str], float] = {}

    def push(record: TraceRecord) -> None:
        nonlocal sequence
        heapq.heappush(pending, (record.timestamp, sequence, record))
        sequence += 1

    def release(watermark: float) -> Iterator[TraceRecord]:
        while pending and pending[0][0] <= watermark:
            yield heapq.heappop(pending)[2]

    for record in records:
        key = (record.client, record.path)
        if record.op == "open":
            # A re-open without a close abandons the previous bracket; its
            # records pass through unadjusted, exactly as in the batch
            # version (where the abandoned group never gets a close).
            stale = open_groups.pop(key, None)
            if stale is not None:
                for abandoned in stale:
                    push(abandoned)
            open_groups[key] = [record]
            open_times[key] = record.timestamp
        elif key in open_groups:
            open_groups[key].append(record)
            if record.op == "close":
                for adjusted in _adjust_group(open_groups.pop(key)):
                    push(adjusted)
                del open_times[key]
        else:
            push(record)
        # Nothing still buffered inside an open bracket can surface before
        # that bracket's open timestamp.
        watermark = min(open_times.values()) if open_times else record.timestamp
        yield from release(watermark)
    # EOF: unclosed brackets pass through unadjusted, then drain the heap.
    for body in open_groups.values():
        for record in body:
            push(record)
    while pending:
        yield heapq.heappop(pending)[2]
