"""Patsy: the off-line, trace-driven file-system simulator.

Patsy is "the instantiation of the cut-and-paste library to a file-system
simulator combined with some helper components for off-line file-system
simulation": simulated disk drivers and disks, the host/disk connection
(a SCSI-2 bus), trace readers, synthetic workloads and plug-in statistics.
"""

from repro.patsy.bus import ScsiBus
from repro.patsy.diskspec import DiskSpec, GENERIC_SMALL_DISK, HP97560
from repro.patsy.simdisk import SimulatedDisk
from repro.patsy.simdriver import SimulatedDiskDriver
from repro.patsy.simulator import PatsySimulator, SimulationResult
from repro.patsy.experiments import (
    DelayedWriteExperiment,
    EXPERIMENT_POLICIES,
    run_delayed_write_experiment,
    run_policy_comparison,
)

__all__ = [
    "ScsiBus",
    "DiskSpec",
    "HP97560",
    "GENERIC_SMALL_DISK",
    "SimulatedDisk",
    "SimulatedDiskDriver",
    "PatsySimulator",
    "SimulationResult",
    "DelayedWriteExperiment",
    "EXPERIMENT_POLICIES",
    "run_delayed_write_experiment",
    "run_policy_comparison",
]
