"""Coda-style trace parsing.

The paper's second trace source is the CMU Coda traces (Mummert &
Satyanarayanan, "Long Term Distributed File Reference Tracing").  Coda trace
records carry a volume identifier in addition to the path; the reader below
parses a Coda-like text encoding and folds the volume into the path so the
rest of the framework sees ordinary hierarchical names.

Format, one operation per line::

    <seconds> <client> <volume> <op> <path-within-volume> [<offset> <size>] [<path2>]
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from repro.errors import TraceError
from repro.patsy.sprite import SPRITE_OP_NAMES
from repro.patsy.traces import (
    TraceRecord,
    stream_synthesize_missing_times,
    synthesize_missing_times,
)

__all__ = ["CodaTraceReader", "load_coda_trace", "iter_coda_trace"]


class CodaTraceReader:
    """Parses Coda-like trace text into :class:`TraceRecord` objects."""

    def __init__(self, stream: TextIO):
        self.stream = stream
        self._client_ids: dict[str, int] = {}

    def __iter__(self) -> Iterator[TraceRecord]:
        for line_number, line in enumerate(self.stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield self.parse_line(line, line_number)

    def parse_line(self, line: str, line_number: int = 0) -> TraceRecord:
        fields = line.split()
        if len(fields) < 5:
            raise TraceError(
                f"coda trace line {line_number}: expected at least 5 fields, got {len(fields)}"
            )
        time_text, client_text, volume, op_text, path = fields[:5]
        op = SPRITE_OP_NAMES.get(op_text.lower())
        if op is None:
            raise TraceError(f"coda trace line {line_number}: unknown operation {op_text!r}")
        offset = 0
        size = 0
        path2 = ""
        rest = fields[5:]
        if op == "rename":
            if not rest:
                raise TraceError(f"coda trace line {line_number}: rename needs a target path")
            path2 = self._qualify(volume, rest[0])
        else:
            if len(rest) >= 1:
                offset = int(rest[0])
            if len(rest) >= 2:
                size = int(rest[1])
        try:
            timestamp = float(time_text)
        except ValueError as exc:
            raise TraceError(f"coda trace line {line_number}: bad timestamp {time_text!r}") from exc
        return TraceRecord(
            timestamp=timestamp,
            client=self._client_id(client_text),
            op=op,
            path=self._qualify(volume, path),
            offset=offset,
            size=size,
            path2=path2,
        )

    @staticmethod
    def _qualify(volume: str, path: str) -> str:
        """Fold the Coda volume into the path: /vol.<volume>/<path>."""
        return f"/vol.{volume}/" + path.lstrip("/")

    def _client_id(self, text: str) -> int:
        if text not in self._client_ids:
            self._client_ids[text] = len(self._client_ids)
        return self._client_ids[text]


def load_coda_trace(
    source: Union[str, Path, TextIO], fill_missing_times: bool = True
) -> list[TraceRecord]:
    """Load a Coda-like trace file."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            records = list(CodaTraceReader(stream))
    else:
        records = list(CodaTraceReader(source))
    if fill_missing_times:
        records = synthesize_missing_times(records)
    return records


def iter_coda_trace(
    source: Union[str, Path, TextIO], fill_missing_times: bool = True
) -> Iterator[TraceRecord]:
    """Stream a Coda-like trace without materialising it (the streaming
    counterpart of :func:`load_coda_trace`; the input must be
    time-ordered)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            reader: Iterable[TraceRecord] = CodaTraceReader(stream)
            if fill_missing_times:
                reader = stream_synthesize_missing_times(reader)
            yield from reader
        return
    reader = CodaTraceReader(source)
    if fill_missing_times:
        yield from stream_synthesize_missing_times(reader)
    else:
        yield from reader
