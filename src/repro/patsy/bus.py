"""The host/disk connection: a SCSI-2 bus model.

"Connections are the links between the host and the disk sub-system ...
They also arbitrate if there is more than one controller that wants to send
data over the same connection to simulate connection contention (e.g. SCSI
bus contention)."  The model allows multiple disks per bus, charges an
arbitration/selection overhead per transfer, and moves data at the SCSI-2
sustained rate (10 MB/s in the paper).  Disconnect/reconnect is modelled by
the fact that the bus is only held during command and data transfers, not
while the disk is seeking or rotating.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.scheduler import Delay, Scheduler
from repro.core.sync import Resource
from repro.errors import ConfigurationError
from repro.units import MB

__all__ = ["ScsiBus"]


class ScsiBus:
    """A shared connection between the host and a set of disks."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "scsi0",
        bandwidth: float = 10 * MB,
        arbitration_overhead: float = 0.0002,
    ):
        if bandwidth <= 0:
            raise ConfigurationError("bus bandwidth must be positive")
        if arbitration_overhead < 0:
            raise ConfigurationError("bus overhead cannot be negative")
        self.scheduler = scheduler
        self.name = name
        self.bandwidth = float(bandwidth)
        self.arbitration_overhead = arbitration_overhead
        self._resource = Resource(scheduler, capacity=1, name=name)
        self.bytes_transferred = 0
        self.transfers = 0
        self.busy_time = 0.0

    # -- timing ------------------------------------------------------------------

    def transfer_time(self, nbytes: int) -> float:
        return self.arbitration_overhead + nbytes / self.bandwidth

    # -- use --------------------------------------------------------------------------

    def transfer(self, nbytes: int) -> Generator[Any, Any, None]:
        """Hold the bus long enough to move ``nbytes`` (plus arbitration)."""
        yield from self._resource.acquire()
        hold = self.transfer_time(nbytes)
        try:
            yield Delay(hold)
        except BaseException:
            self._resource.release()
            raise
        # An uninterrupted Delay advances the clock by exactly ``hold``.
        self.busy_time += hold
        self._resource.release()
        self.bytes_transferred += nbytes
        self.transfers += 1

    # -- statistics ---------------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    @property
    def mean_wait_time(self) -> float:
        return self._resource.mean_wait_time

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the bus was busy."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)

    def __repr__(self) -> str:
        return f"ScsiBus({self.name!r}, transfers={self.transfers})"
