"""The simulated disk: a detailed mechanical + cache model of one drive.

"The disk component in the simulator acts as a representative for a real
disk.  A simulated disk component knows about heads, tracks, sectors,
rotational speed, controller overhead and it may implement disk cache
policies.  Internally, a disk is modeled by a separate thread of control
that waits for work to arrive from external sources."

For every request the controller thread charges: fixed controller overhead,
a seek (two-piece seek curve), a head switch if needed, the rotational delay
to reach the first sector, and the media transfer time.  The on-disk cache
provides *immediate reported writes* (a write completes once its data is in
the disk cache; the media write is charged before the next request is
serviced) and sequential *read-ahead* (after an idle read the next 4 KB is
assumed to be in the cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.driver import IOKind, IORequest
from repro.core.scheduler import Delay, Event, Scheduler
from repro.core.sync import Channel
from repro.patsy.bus import ScsiBus
from repro.patsy.diskspec import DiskSpec

__all__ = ["SimulatedDisk", "DiskStatistics"]


@dataclass
class DiskStatistics:
    """Per-disk counters collected by the model."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    cache_read_hits: int = 0
    immediate_writes: int = 0
    seeks: int = 0
    total_seek_time: float = 0.0
    total_rotational_delay: float = 0.0
    total_transfer_time: float = 0.0
    busy_time: float = 0.0
    rotational_delays: list = field(default_factory=list)

    def mean_rotational_delay(self) -> float:
        if not self.rotational_delays:
            return 0.0
        return sum(self.rotational_delays) / len(self.rotational_delays)


class SimulatedDisk:
    """One simulated disk drive, driven by its own controller thread."""

    def __init__(
        self,
        scheduler: Scheduler,
        spec: DiskSpec,
        bus: ScsiBus,
        name: str = "disk0",
        node: int = 0,
    ):
        self.scheduler = scheduler
        self.spec = spec
        self.bus = bus
        self.name = name
        self.node = node
        self.stats = DiskStatistics()
        self._work: Channel = Channel(scheduler, name=f"{name}-work")
        self._current_cylinder = 0
        self._current_head = 0
        #: cached sector range [start, end) held in the on-disk cache.
        self._cached_range: Optional[tuple[int, int]] = None
        #: media time / bytes owed for immediate-reported writes not yet destaged.
        self._pending_destage_time = 0.0
        self._pending_destage_bytes = 0
        #: when the disk last finished servicing a request (idle time since
        #: then is spent destaging the write cache in the background).
        self._idle_since = 0.0
        self._thread = scheduler.spawn(
            self._controller, name=f"{name}-controller", daemon=True, node=node
        )

    # -- geometry ------------------------------------------------------------------

    @property
    def num_sectors(self) -> int:
        return self.spec.num_sectors

    @property
    def cache_sectors(self) -> int:
        return self.spec.cache_bytes // self.spec.sector_size

    @property
    def read_ahead_sectors(self) -> int:
        return self.spec.read_ahead_bytes // self.spec.sector_size

    # -- interface used by the simulated disk driver ------------------------------------

    def submit(self, request: IORequest, completion: Event) -> None:
        """Queue a request for the controller thread; ``completion`` is
        signalled when the disk has finished (including the bus transfer of
        read data back to the host)."""
        self._work.put((request, completion))

    @property
    def queue_depth(self) -> int:
        return len(self._work)

    # -- the controller thread --------------------------------------------------------------

    def _controller(self) -> Generator[Any, Any, None]:
        while True:
            request, completion = yield from self._work.get()
            started = self.scheduler.now
            self._credit_idle_time(started)
            yield from self._service(request)
            self.stats.busy_time += self.scheduler.now - started
            self._idle_since = self.scheduler.now
            completion.signal(request)

    def _credit_idle_time(self, now: float) -> None:
        """Idle time since the last request is spent destaging the write cache."""
        idle = max(now - self._idle_since, 0.0)
        if idle <= 0.0 or self._pending_destage_time <= 0.0:
            return
        if idle >= self._pending_destage_time:
            self._pending_destage_time = 0.0
            self._pending_destage_bytes = 0
        else:
            fraction = 1.0 - idle / self._pending_destage_time
            self._pending_destage_time -= idle
            self._pending_destage_bytes = int(self._pending_destage_bytes * fraction)

    def _drain_destage(self) -> Generator[Any, Any, None]:
        """Pay the media time owed by immediate-reported writes."""
        if self._pending_destage_time > 0.0:
            owed = self._pending_destage_time
            self._pending_destage_time = 0.0
            self._pending_destage_bytes = 0
            yield Delay(owed)

    def _service(self, request: IORequest) -> Generator[Any, Any, None]:
        spec = self.spec
        self.stats.requests += 1
        # Controller/command decode overhead.
        yield Delay(spec.controller_overhead)
        if request.kind is IOKind.READ:
            yield from self._service_read(request)
        else:
            yield from self._service_write(request)

    # -- reads ---------------------------------------------------------------------------------

    def _service_read(self, request: IORequest) -> Generator[Any, Any, None]:
        self.stats.reads += 1
        if self._in_cache(request.sector, request.count):
            request.disk_cache_hit = True
            self.stats.cache_read_hits += 1
        else:
            # The media is needed: any write-cache contents are destaged first.
            yield from self._drain_destage()
            yield from self._mechanical(request)
            self._fill_cache(request.sector, request.count, read_ahead=True)
        # Transmit the data back to the host over the connection.
        yield from self.bus.transfer(request.nbytes)
        if request.data is not None:
            # Simulated disks never hold real data; zero-fill for callers
            # that expect a buffer (only happens in mixed test setups).
            request.data[:] = bytes(len(request.data))

    # -- writes ---------------------------------------------------------------------------------

    def _service_write(self, request: IORequest) -> Generator[Any, Any, None]:
        self.stats.writes += 1
        media_time = self._mechanical_time(request)
        fits_in_cache = (
            self._pending_destage_bytes + request.nbytes <= self.spec.cache_bytes
        )
        if self.spec.immediate_reported_writes and fits_in_cache:
            # The write is reported complete once the data is in the disk's
            # cache; the media write is owed and destaged in the background
            # (idle time) or before the media is next needed.
            self.stats.immediate_writes += 1
            self._pending_destage_time += media_time
            self._pending_destage_bytes += request.nbytes
            self._advance_position(request)
        else:
            yield from self._drain_destage()
            yield from self._mechanical(request)
        self._fill_cache(request.sector, request.count, read_ahead=False)

    # -- mechanics ----------------------------------------------------------------------------------

    def _mechanical(self, request: IORequest) -> Generator[Any, Any, None]:
        """Charge seek + head switch + rotation + media transfer."""
        seek_time, rotation, transfer = self._mechanical_parts(request)
        request.seek_time = seek_time
        request.rotational_delay = rotation
        self.stats.seeks += 1
        self.stats.total_seek_time += seek_time
        self.stats.total_rotational_delay += rotation
        self.stats.total_transfer_time += transfer
        self.stats.rotational_delays.append(rotation)
        yield Delay(seek_time + rotation + transfer)
        self._advance_position(request)

    def _mechanical_time(self, request: IORequest) -> float:
        seek_time, rotation, transfer = self._mechanical_parts(request)
        return seek_time + rotation + transfer

    def _mechanical_parts(self, request: IORequest) -> tuple[float, float, float]:
        spec = self.spec
        cylinder, head, sector_in_track = spec.decompose(request.sector)
        distance = abs(cylinder - self._current_cylinder)
        seek_time = spec.seek_time(distance)
        if distance == 0 and head != self._current_head:
            seek_time += spec.head_switch_time
        rotation = self._rotational_delay(sector_in_track, after=seek_time)
        transfer = spec.sector_transfer_time(request.count)
        return seek_time, rotation, transfer

    def _rotational_delay(self, target_sector_in_track: int, after: float) -> float:
        """Rotational latency to reach ``target_sector_in_track`` once the
        seek (taking ``after`` seconds) has completed."""
        spec = self.spec
        arrival = self.scheduler.now + after
        rotations = arrival / spec.rotation_time
        current_angle = rotations - int(rotations)  # fraction of a revolution
        target_angle = target_sector_in_track / spec.sectors_per_track
        delta = target_angle - current_angle
        if delta < 0:
            delta += 1.0
        return delta * spec.rotation_time

    def _advance_position(self, request: IORequest) -> None:
        last_sector = request.sector + request.count - 1
        cylinder, head, _ = self.spec.decompose(min(last_sector, self.num_sectors - 1))
        self._current_cylinder = cylinder
        self._current_head = head

    # -- the on-disk cache ---------------------------------------------------------------------------

    def _in_cache(self, sector: int, count: int) -> bool:
        if self._cached_range is None:
            return False
        start, end = self._cached_range
        return start <= sector and sector + count <= end

    def _fill_cache(self, sector: int, count: int, read_ahead: bool) -> None:
        extra = self.read_ahead_sectors if read_ahead else 0
        end = min(sector + count + extra, self.num_sectors)
        # The cache holds the tail of what just streamed past the head.
        start = max(sector, end - self.cache_sectors)
        self._cached_range = (start, end)

    def __repr__(self) -> str:
        return f"SimulatedDisk({self.name!r}, spec={self.spec.name!r})"
