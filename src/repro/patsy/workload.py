"""Probabilistic workload generation.

"We are also considering a component that can be used to hand craft work
loads using probabilistic means.  This component will, given some inputs,
generate a work load and dispatch it to the simulator."  This module is that
component: a :class:`WorkloadProfile` describes a workload statistically and
:class:`SyntheticWorkloadGenerator` turns it into an ordinary trace
(:class:`~repro.patsy.traces.TraceRecord` list) that the simulator replays.

The generator reproduces the qualitative properties of Unix file-system
traffic that the paper's experiments rely on (Baker et al. '91, Ousterhout
'85, Ruemmler & Wilkes '93):

* most files are small and short-lived; a few are large,
* write traffic has a high overwrite factor early in a file's lifetime —
  files are frequently truncated, rewritten or deleted shortly after being
  written, which is exactly what makes "write saving" policies pay off,
* activity is bursty: sessions (open ... close) arrive with exponential
  think times, and several clients act in parallel.

Beyond the paper's trace stand-ins, ``access_pattern`` selects how read
sessions pick files, which is what the replacement-policy ablations key on:

* ``"hotset"`` — a small hot subset absorbs most reads (the default, and
  the skew the paper's Sprite traces exhibit),
* ``"zipf"``   — file popularity follows a Zipf law with ``zipf_alpha``,
* ``"scan"``   — hot-set reads interleaved with sequential one-shot sweeps
  over the whole file population (the LRU-killing pattern that
  scan-resistant policies such as ARC and 2Q are built for),
* ``"loop"``   — reads cycle over the file population in order (the LRU
  worst case: with a loop slightly larger than the cache, LRU hits never).

Generation is fully deterministic: per-client RNGs are seeded from the
profile name via CRC-32, never via :func:`hash`, so a trace does not change
with ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import bisect
import math
import random
import zlib
from dataclasses import dataclass, replace
from typing import Iterable, List

from repro.errors import ConfigurationError
from repro.patsy.traces import TraceRecord
from repro.units import KB

__all__ = [
    "ACCESS_PATTERNS",
    "WorkloadProfile",
    "SyntheticWorkloadGenerator",
    "generate_workload",
]

#: recognised read-access patterns.
ACCESS_PATTERNS = ("hotset", "zipf", "scan", "loop")


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of a workload."""

    name: str = "default"
    #: length of the generated trace in (simulated) seconds.
    duration: float = 600.0
    #: number of concurrently active client streams.
    num_clients: int = 6
    #: mean think time between sessions of one client (exponential).
    mean_think_time: float = 2.0
    #: directories the files are spread over.
    directory_count: int = 8
    #: number of files that "exist" before the trace starts.
    initial_files: int = 60
    #: fraction of sessions that only read.
    read_fraction: float = 0.45
    #: probability that a session is preceded by a stat burst.
    stat_fraction: float = 0.35
    #: number of stat calls in such a burst.
    stat_burst: int = 3
    #: typical (small) file size in bytes.
    mean_file_size: int = 16 * KB
    #: fraction of written files that are large.
    large_file_fraction: float = 0.06
    #: size of large files in bytes.
    large_file_size: int = 512 * KB
    #: bytes moved per individual read/write call.
    io_unit: int = 8 * KB
    #: mean gap between calls inside a session (seconds).
    intra_op_gap: float = 0.05
    #: probability that a freshly written file is rewritten shortly after.
    overwrite_fraction: float = 0.45
    #: probability that a freshly written file is deleted shortly after.
    delete_fraction: float = 0.35
    #: mean delay before the overwrite/delete happens (seconds).
    rewrite_delay: float = 12.0
    #: fraction of read sessions directed at a small "hot" subset of files.
    hot_read_fraction: float = 0.7
    #: size of the hot subset.
    hot_set_size: int = 12
    #: how read sessions pick files: "hotset", "zipf", "scan" or "loop".
    access_pattern: str = "hotset"
    #: Zipf exponent for the "zipf" access pattern.
    zipf_alpha: float = 0.9

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.num_clients <= 0:
            raise ConfigurationError("workload duration and client count must be positive")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.io_unit <= 0 or self.mean_file_size <= 0:
            raise ConfigurationError("file and I/O sizes must be positive")
        if self.access_pattern not in ACCESS_PATTERNS:
            raise ConfigurationError(
                f"unknown access pattern {self.access_pattern!r}; choose from {ACCESS_PATTERNS}"
            )
        if self.zipf_alpha <= 0:
            raise ConfigurationError("zipf_alpha must be positive")

    def scaled(self, scale: float) -> "WorkloadProfile":
        """Scale the trace duration (and with it the operation count)."""
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        return replace(self, duration=self.duration * scale)


class SyntheticWorkloadGenerator:
    """Generates a trace from a :class:`WorkloadProfile`."""

    def __init__(self, profile: WorkloadProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        #: size of each file, sampled once when the file is first touched.
        #: Re-reading a file must not re-roll its size: pre-existing files
        #: keep a stable extent, so a stable hot set has a stable footprint.
        self._sizes: dict[str, int] = {}
        self._zipf_cdf: List[float] | None = None
        if profile.access_pattern == "zipf":
            # Cumulative Zipf weights over the pre-existing files; sampled
            # with bisection so each pick is O(log n) and deterministic.
            weights = [
                1.0 / (rank + 1) ** profile.zipf_alpha for rank in range(profile.initial_files)
            ]
            total = 0.0
            cdf: List[float] = []
            for weight in weights:
                total += weight
                cdf.append(total)
            self._zipf_cdf = cdf

    # -- public API ---------------------------------------------------------------

    def generate(self) -> List[TraceRecord]:
        """Generate the full trace, sorted by timestamp."""
        records: List[TraceRecord] = []
        for client in range(self.profile.num_clients):
            records.extend(self._client_stream(client))
        records.sort(key=lambda record: record.timestamp)
        return records

    # -- per-client streams ----------------------------------------------------------

    def _client_stream(self, client: int) -> List[TraceRecord]:
        profile = self.profile
        # CRC-32, not hash(): trace generation must not vary with
        # PYTHONHASHSEED (simulations are replayed and compared by seed).
        name_tag = zlib.crc32(profile.name.encode("utf-8"))
        rng = random.Random((self.seed * 1_000_003) ^ (client * 7919) ^ name_tag)
        records: List[TraceRecord] = []
        # Stagger client start times so sessions do not align artificially.
        now = rng.uniform(0.0, min(profile.mean_think_time, profile.duration / 10.0))
        file_counter = 0
        own_files: list[tuple[str, int]] = []  # (path, size) written by this client
        #: sequential position for the "scan" and "loop" access patterns.
        cursor = [client * max(profile.initial_files // max(profile.num_clients, 1), 1)]
        while now < profile.duration:
            if rng.random() < profile.read_fraction:
                now = self._read_session(rng, client, now, records, cursor)
            else:
                now, created = self._write_session(rng, client, now, records, file_counter)
                file_counter += 1
                if created is not None:
                    own_files.append(created)
                    self._schedule_rewrite_or_delete(rng, client, now, created, records)
            now += rng.expovariate(1.0 / profile.mean_think_time)
        return [record for record in records if record.timestamp <= profile.duration]

    # -- sessions -----------------------------------------------------------------------

    def _read_session(
        self,
        rng: random.Random,
        client: int,
        start: float,
        records: List[TraceRecord],
        cursor: List[int],
    ) -> float:
        profile = self.profile
        path = self._pick_existing_path(rng, cursor)
        now = start
        if rng.random() < profile.stat_fraction:
            for _ in range(profile.stat_burst):
                records.append(TraceRecord(now, client, "stat", path))
                now += rng.expovariate(1.0 / profile.intra_op_gap)
        size = self._size_of(path, rng)
        records.append(TraceRecord(now, client, "open", path))
        now += rng.expovariate(1.0 / profile.intra_op_gap)
        offset = 0
        while offset < size:
            chunk = min(profile.io_unit, size - offset)
            records.append(TraceRecord(now, client, "read", path, offset=offset, size=chunk))
            offset += chunk
            now += rng.expovariate(1.0 / profile.intra_op_gap)
        records.append(TraceRecord(now, client, "close", path))
        return now

    def _write_session(
        self,
        rng: random.Random,
        client: int,
        start: float,
        records: List[TraceRecord],
        file_counter: int,
    ) -> tuple[float, tuple[str, int] | None]:
        profile = self.profile
        fresh = rng.random() >= 0.3
        if not fresh:
            path = self._pick_existing_path(rng, None)
        else:
            directory = rng.randrange(profile.directory_count)
            path = f"/dir{directory:02d}/c{client}-f{file_counter:05d}.dat"
        size = self._pick_file_size(rng)
        self._sizes[path] = size
        now = start
        records.append(TraceRecord(now, client, "open", path))
        now += rng.expovariate(1.0 / profile.intra_op_gap)
        offset = 0
        while offset < size:
            chunk = min(profile.io_unit, size - offset)
            records.append(TraceRecord(now, client, "write", path, offset=offset, size=chunk))
            offset += chunk
            now += rng.expovariate(1.0 / profile.intra_op_gap)
        records.append(TraceRecord(now, client, "close", path))
        # Only freshly created files are candidates for the delete/rewrite
        # follow-up: shared pre-existing files may be rewritten by several
        # clients, and unlinking them would race between clients.
        return now, (path, size) if fresh else None

    def _schedule_rewrite_or_delete(
        self,
        rng: random.Random,
        client: int,
        now: float,
        created: tuple[str, int],
        records: List[TraceRecord],
    ) -> None:
        """Files are overwritten or deleted shortly after being written —
        the "high overwrite factor in the first part of a file's lifetime"."""
        profile = self.profile
        path, size = created
        roll = rng.random()
        when = now + rng.expovariate(1.0 / profile.rewrite_delay)
        if when >= profile.duration:
            return
        if roll < profile.delete_fraction:
            records.append(TraceRecord(when, client, "unlink", path))
        elif roll < profile.delete_fraction + profile.overwrite_fraction:
            records.append(TraceRecord(when, client, "truncate", path, size=0))
            when += rng.expovariate(1.0 / profile.intra_op_gap)
            records.append(TraceRecord(when, client, "open", path))
            when += rng.expovariate(1.0 / profile.intra_op_gap)
            offset = 0
            while offset < size and when < profile.duration:
                chunk = min(profile.io_unit, size - offset)
                records.append(TraceRecord(when, client, "write", path, offset=offset, size=chunk))
                offset += chunk
                when += rng.expovariate(1.0 / profile.intra_op_gap)
            records.append(TraceRecord(when, client, "close", path))

    # -- helpers ---------------------------------------------------------------------------

    def _pick_existing_path(self, rng: random.Random, cursor: List[int] | None) -> str:
        """Pick a pre-existing file according to the profile's access pattern.

        ``cursor`` carries the client's sequential position for the "scan"
        and "loop" patterns; write sessions reuse existing files without a
        cursor and fall back to the random patterns.
        """
        profile = self.profile
        pattern = profile.access_pattern
        population = profile.initial_files
        if pattern == "loop" and cursor is not None:
            index = cursor[0] % population
            cursor[0] += 1
        elif pattern == "scan" and cursor is not None:
            if rng.random() < profile.hot_read_fraction:
                index = rng.randrange(min(profile.hot_set_size, population))
            else:
                # A one-shot sequential sweep position polluting the cache.
                index = cursor[0] % population
                cursor[0] += 1
        elif pattern == "zipf" and self._zipf_cdf is not None:
            point = rng.random() * self._zipf_cdf[-1]
            index = min(bisect.bisect_left(self._zipf_cdf, point), population - 1)
        elif rng.random() < profile.hot_read_fraction:
            index = rng.randrange(min(profile.hot_set_size, population))
        else:
            index = rng.randrange(population)
        directory = index % profile.directory_count
        return f"/dir{directory:02d}/existing-{index:04d}.dat"

    def _size_of(self, path: str, rng: random.Random) -> int:
        """The file's stable size, sampled on first touch."""
        size = self._sizes.get(path)
        if size is None:
            size = self._sizes[path] = self._pick_file_size(rng)
        return size

    def _pick_file_size(self, rng: random.Random) -> int:
        profile = self.profile
        if rng.random() < profile.large_file_fraction:
            return profile.large_file_size
        # Log-normal-ish small file sizes with the configured mean.
        size = rng.lognormvariate(math.log(max(profile.mean_file_size, 1)), 0.6)
        return max(int(size), 512)


def generate_workload(profile: WorkloadProfile, seed: int = 0) -> List[TraceRecord]:
    """Convenience wrapper: generate a trace from a profile."""
    return SyntheticWorkloadGenerator(profile, seed=seed).generate()
