"""Textual reports: the paper's figures as printable tables and ASCII plots."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.analysis.cdf import fraction_at_or_below
from repro.units import human_time

__all__ = [
    "format_mean_latency_table",
    "format_latency_cdf_table",
    "format_policy_comparison",
    "format_per_client_latency_table",
    "format_replacement_comparison",
    "format_volume_table",
    "format_cluster_table",
    "ascii_cdf_plot",
]


def format_mean_latency_table(
    table: Mapping[str, Mapping[str, float]], title: str = "Figure 5: mean file-system latencies"
) -> str:
    """Render the Figure 5 table: traces as rows, policies as columns."""
    policies: list[str] = []
    for row in table.values():
        for policy in row:
            if policy not in policies:
                policies.append(policy)
    header = ["trace"] + policies
    widths = [max(len(h), 18) for h in header]
    lines = [title, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for trace, row in table.items():
        cells = [trace.ljust(widths[0])]
        for index, policy in enumerate(policies, start=1):
            value = row.get(policy)
            text = human_time(value) if value is not None else "-"
            cells.append(text.ljust(widths[index]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_latency_cdf_table(
    latencies_by_policy: Mapping[str, Sequence[float]],
    thresholds: Optional[Sequence[float]] = None,
    title: str = "cumulative fraction of operations completed within ...",
) -> str:
    """Render a CDF comparison: one row per latency threshold, one column per policy."""
    if thresholds is None:
        thresholds = (0.002, 0.005, 0.010, 0.017, 0.030, 0.060, 0.120, 0.250, 0.500, 1.0)
    policies = list(latencies_by_policy)
    header = ["latency <="] + policies
    widths = [max(len(h), 14) for h in header]
    lines = [title, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for threshold in thresholds:
        cells = [human_time(threshold).ljust(widths[0])]
        for index, policy in enumerate(policies, start=1):
            fraction = fraction_at_or_below(latencies_by_policy[policy], threshold)
            cells.append(f"{fraction * 100:6.1f}%".ljust(widths[index]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_policy_comparison(results: Mapping[str, object], trace_name: str = "") -> str:
    """One-line-per-policy summary of a Figure 2-4 style comparison.

    ``results`` maps policy name to
    :class:`~repro.patsy.simulator.SimulationResult`.
    """
    lines = [f"trace {trace_name}" if trace_name else "policy comparison", ""]
    header = f"{'policy':<22} {'mean':>10} {'median':>10} {'p95':>10} {'writes':>8} {'saved':>7} {'hit%':>6}"
    lines.append(header)
    lines.append("-" * len(header))
    for policy, result in results.items():
        latency = result.latency
        cache = result.cache_stats
        lines.append(
            f"{policy:<22} {human_time(latency.mean_latency()):>10} "
            f"{human_time(latency.percentile(0.5)):>10} {human_time(latency.percentile(0.95)):>10} "
            f"{result.blocks_written_to_disk:>8} {result.write_savings_blocks:>7} "
            f"{cache.get('hit_rate', 0.0) * 100:>5.1f}%"
        )
    return "\n".join(lines)


def format_per_client_latency_table(
    per_client: Mapping[int, Mapping[str, float]],
    title: str = "per-client latency percentiles",
) -> str:
    """One row per client: operation count, mean, p50/p95/p99.

    ``per_client`` is the mapping produced by
    :meth:`repro.patsy.stats.LatencyRecorder.per_client_summary` (also on
    :meth:`repro.patsy.simulator.SimulationResult.per_client_latency`);
    the sharded recorders make these percentiles free, which is what
    exposes the fairness effects behind the paper's Figure 2-4 CDFs.
    """
    lines = [title, ""]
    header = f"{'client':>8} {'ops':>9} {'mean':>10} {'median':>10} {'p95':>10} {'p99':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for client in sorted(per_client):
        stats = per_client[client]
        lines.append(
            f"{client:>8} {int(stats.get('operations', 0)):>9} "
            f"{human_time(stats.get('mean_latency', 0.0)):>10} "
            f"{human_time(stats.get('median_latency', 0.0)):>10} "
            f"{human_time(stats.get('p95_latency', 0.0)):>10} "
            f"{human_time(stats.get('p99_latency', 0.0)):>10}"
        )
    return "\n".join(lines)


def format_replacement_comparison(
    cache_stats_by_policy: Mapping[str, Mapping[str, object]],
    title: str = "replacement-policy ablation",
) -> str:
    """One line per replacement policy: hit rate plus the adaptive-policy
    counters (ghost hits, adaptations, amortised victim-selection cost).

    ``cache_stats_by_policy`` maps policy name to a ``cache_stats`` snapshot
    (:meth:`repro.core.cache.CacheStatistics.snapshot`, as found in
    :attr:`repro.patsy.simulator.SimulationResult.cache_stats`).
    """
    lines = [title, ""]
    header = (
        f"{'policy':<8} {'hit%':>6} {'lookups':>9} {'evictions':>10} "
        f"{'ghost-hits':>11} {'adaptations':>12} {'scan/evict':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    ordered = sorted(
        cache_stats_by_policy.items(),
        key=lambda item: -float(item[1].get("hit_rate", 0.0)),
    )
    for policy, stats in ordered:
        evictions = int(stats.get("evictions", 0))
        steps = int(stats.get("victim_scan_steps", 0))
        per_eviction = steps / evictions if evictions else 0.0
        lines.append(
            f"{policy:<8} {float(stats.get('hit_rate', 0.0)) * 100:>5.1f}% "
            f"{int(stats.get('lookups', 0)):>9} {evictions:>10} "
            f"{int(stats.get('ghost_hits', 0)):>11} "
            f"{int(stats.get('policy_adaptations', 0)):>12} "
            f"{per_eviction:>11.2f}"
        )
    return "\n".join(lines)


def format_volume_table(
    volume_stats: Mapping[str, object],
    title: str = "storage-array volumes",
) -> str:
    """Per-volume hit-rate/utilisation/queue table plus an array rollup.

    ``volume_stats`` is :attr:`repro.patsy.simulator.SimulationResult.volume_stats`
    (``{"per_volume": {...}, "rollup": {...}}``, produced for storage-array
    runs).  One row per volume: cache hit rate of the volume's shard, blocks
    written, mean disk utilisation/queue length/response time over the
    volume's disks.  The rollup line aggregates the whole array.
    """
    per_volume = volume_stats.get("per_volume", {}) if volume_stats else {}
    rollup = volume_stats.get("rollup", {}) if volume_stats else {}
    if not per_volume:
        return "(no per-volume statistics: single-volume run)"
    lines = [title, ""]
    header = (
        f"{'volume':<8} {'disks':>5} {'hit%':>6} {'written':>8} "
        f"{'disk-util%':>11} {'queue':>7} {'resp':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(per_volume):
        entry = per_volume[name]
        disks = entry.get("disks", {})
        n_disks = max(len(disks), 1)
        utilisation = sum(d.get("utilisation", 0.0) for d in disks.values()) / n_disks
        queue = sum(d.get("mean_queue_length", 0.0) for d in disks.values()) / n_disks
        response = sum(d.get("mean_response_time", 0.0) for d in disks.values()) / n_disks
        cache = entry.get("cache", {})
        hit = cache.get("hit_rate")
        written = entry.get("layout", {}).get("blocks_written", 0)
        lines.append(
            f"{name:<8} {len(disks):>5} "
            f"{(hit * 100 if hit is not None else 0.0):>5.1f}% {written:>8} "
            f"{utilisation * 100:>10.1f}% {queue:>7.2f} {human_time(response):>10}"
        )
    if rollup:
        lines.append("-" * len(header))
        lines.append(
            f"{'array':<8} {rollup.get('disks', 0):>5} "
            f"{rollup.get('cache_hit_rate', 0.0) * 100:>5.1f}% "
            f"{rollup.get('blocks_written', 0):>8} "
            f"{rollup.get('mean_disk_utilisation', 0.0) * 100:>10.1f}% "
            f"{'':>7} {'':>10}"
        )
        lines.append(
            f"placement={rollup.get('placement', '?')} shard={rollup.get('shard', '?')} "
            f"volumes={rollup.get('volumes', 0)} buses={rollup.get('buses', 0)} "
            f"disk-ops={rollup.get('disk_operations', 0)}"
        )
        if "governor_wakeups" in rollup:
            lines.append(
                f"governor: wakeups={rollup['governor_wakeups']} "
                f"flushes={rollup['governor_flushes']}"
            )
        layout_rollup = rollup.get("layout", {})
        if layout_rollup.get("cleaner_read_runs"):
            lines.append(
                f"cleaner: read-runs={layout_rollup['cleaner_read_runs']} "
                f"blocks-copied={layout_rollup.get('cleaner_blocks_copied', 0)} "
                f"candidate-scans={layout_rollup.get('cleaner_candidate_scans', 0)}"
            )
        if "index" in rollup:
            index = rollup["index"]
            lines.append(
                f"segment index: {index['memory_bytes']} bytes in core "
                f"({index['fraction_of_cache'] * 100:.2f}% of cache budget)"
            )
    return "\n".join(lines)


def format_cluster_table(
    cluster_stats: Mapping[str, object],
    title: str = "cluster nodes",
) -> str:
    """Per-node disk/cache/NIC table plus rebalancer counters.

    ``cluster_stats`` is :attr:`repro.patsy.simulator.SimulationResult.cluster_stats`
    (``{"nodes": N, "per_node": {...}, "rebalancer": {...}}``, produced for
    multi-node cluster runs).  One row per node: its volumes, disk
    operations and utilisation, cache hit rate of its shards, and — for
    remote nodes — the NIC's traffic and utilisation.  The rebalancer line
    summarises the migration activity.
    """
    per_node = cluster_stats.get("per_node", {}) if cluster_stats else {}
    if not per_node:
        return "(no per-node statistics: single-machine run)"
    lines = [title, ""]
    header = (
        f"{'node':<7} {'volumes':>8} {'disk-ops':>9} {'disk-util%':>11} "
        f"{'hit%':>6} {'nic-msgs':>9} {'nic-MB':>8} {'nic-util%':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    # Numeric order: a plain string sort puts node10 before node2.
    for name in sorted(
        per_node, key=lambda key: int("".join(filter(str.isdigit, key)) or 0)
    ):
        entry = per_node[name]
        nic = entry.get("nic")
        hit = entry.get("cache_hit_rate")
        lines.append(
            f"{name:<7} {len(entry.get('volumes', [])):>8} "
            f"{entry.get('disk_operations', 0):>9} "
            f"{entry.get('mean_disk_utilisation', 0.0) * 100:>10.1f}% "
            f"{(hit * 100 if hit is not None else 0.0):>5.1f}% "
            f"{(nic['messages'] if nic else 0):>9} "
            f"{(nic['bytes_sent'] / (1024 * 1024) if nic else 0.0):>8.1f} "
            f"{(nic['utilisation'] * 100 if nic else 0.0):>9.1f}%"
        )
    placement = cluster_stats.get("placement", {})
    if placement:
        lines.append("-" * len(header))
        lines.append(
            f"placement={placement.get('inner', '?')} "
            f"nodes={cluster_stats.get('nodes', 0)} "
            f"volumes/node={placement.get('volumes_per_node', 0)} "
            f"displaced-files={placement.get('displaced_files', 0)}"
        )
    rebalancer = cluster_stats.get("rebalancer")
    if rebalancer:
        lines.append(
            f"rebalancer: rounds={rebalancer.get('rounds', 0)} "
            f"migrations={rebalancer.get('migrations', 0)} "
            f"blocks-copied={rebalancer.get('blocks_copied', 0)} "
            f"skipped={rebalancer.get('migrations_skipped', 0)}"
        )
    replication = cluster_stats.get("replication")
    if replication:
        line = (
            f"replication: replicas={replication.get('replicas', 0)} "
            f"files={replication.get('replicated_files', 0)} "
            f"failover-reads={replication.get('failover_reads', 0)} "
            f"under-replicated={replication.get('under_replicated_files', 0)}"
        )
        repairer = cluster_stats.get("repairer")
        if repairer:
            line += (
                f" repaired={repairer.get('repaired_copies', 0)}"
                f"+{repairer.get('promoted_files', 0)}p"
                f" repair-MB={repairer.get('bytes_copied', 0) / (1024 * 1024):.1f}"
            )
        lines.append(line)
    faults = cluster_stats.get("faults")
    if faults:
        lines.append(
            f"faults: events={faults.get('events_applied', 0)} "
            f"dead-volumes={len(faults.get('dead_volumes', []))} "
            f"dead-nodes={len(faults.get('dead_nodes', []))} "
            f"partitioned={len(faults.get('unreachable_volumes', []))}"
        )
    parallel = cluster_stats.get("parallel")
    if parallel:
        jobs = parallel.get("jobs", 0)
        lines.append(
            f"parallel replay: workers={parallel.get('workers', 0)} "
            f"jobs={jobs if jobs else 'per-node'} "
            f"critical-path={parallel.get('critical_path_seconds', 0.0):.2f}s "
            "(max per-worker cpu)"
        )
    return "\n".join(lines)


def ascii_cdf_plot(
    latencies_by_series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    max_latency: Optional[float] = None,
    title: str = "cumulative distribution of file-system latencies",
) -> str:
    """A rough ASCII rendering of one or more latency CDFs.

    The x axis is latency (linear, 0 .. ``max_latency``); the y axis is the
    cumulative fraction of operations completed.  Each series is drawn with
    its own marker character.
    """
    markers = "*o+x#@%&"
    series = list(latencies_by_series.items())
    if not series:
        return "(no data)"
    if max_latency is None:
        peaks = [max(values) for _, values in series if values]
        max_latency = max(peaks) if peaks else 1.0
    if max_latency <= 0:
        max_latency = 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series):
        if not values:
            continue
        marker = markers[index % len(markers)]
        for column in range(width):
            latency = max_latency * (column + 1) / width
            fraction = fraction_at_or_below(values, latency)
            row = height - 1 - int(round(fraction * (height - 1)))
            grid[row][column] = marker
    lines = [title, ""]
    for row_index, row in enumerate(grid):
        fraction_label = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction_label:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0{' ' * (width - 12)}{human_time(max_latency):>10}")
    legend = "  ".join(
        f"{markers[index % len(markers)]} = {name}" for index, (name, _) in enumerate(series)
    )
    lines.append("      " + legend)
    return "\n".join(lines)
