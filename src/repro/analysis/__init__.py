"""Analysis helpers: CDFs, summary tables and ASCII figures.

The paper's figures are cumulative latency distributions (Figures 2-4) and a
mean-latency comparison across traces (Figure 5).  These helpers turn
:class:`~repro.patsy.simulator.SimulationResult` objects into the same
artefacts, as data structures and as printable text.
"""

from repro.analysis.cdf import cumulative_distribution, fraction_at_or_below, summarize_latencies
from repro.analysis.report import (
    ascii_cdf_plot,
    format_latency_cdf_table,
    format_mean_latency_table,
    format_policy_comparison,
)

__all__ = [
    "cumulative_distribution",
    "fraction_at_or_below",
    "summarize_latencies",
    "ascii_cdf_plot",
    "format_latency_cdf_table",
    "format_mean_latency_table",
    "format_policy_comparison",
]
