"""Cumulative latency distributions and summary statistics."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import InvalidArgument

__all__ = [
    "cumulative_distribution",
    "fraction_at_or_below",
    "percentile",
    "percentile_from_cdf",
    "downsample_cdf",
    "summarize_latencies",
]


def cumulative_distribution(
    values: Sequence[float], points: int = 100
) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs suitable for plotting a CDF.

    Returns at most ``points`` pairs, always including the minimum and the
    maximum of the data.
    """
    if points < 2:
        raise InvalidArgument("a CDF needs at least two points")
    ordered = sorted(values)
    if not ordered:
        return []
    n = len(ordered)
    if n <= points:
        return [(value, (index + 1) / n) for index, value in enumerate(ordered)]
    result: List[Tuple[float, float]] = []
    for i in range(points):
        index = min(int(round((i + 1) * n / points)) - 1, n - 1)
        result.append((ordered[index], (index + 1) / n))
    if result[-1][0] != ordered[-1]:
        result[-1] = (ordered[-1], 1.0)
    return result


def fraction_at_or_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold (a single point of the CDF)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value <= threshold) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-th percentile (0..1) of ``values``."""
    if not (0.0 <= fraction <= 1.0):
        raise InvalidArgument("percentile fraction must be in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(int(math.ceil(fraction * len(ordered))) - 1, len(ordered) - 1)
    return ordered[max(index, 0)]


def percentile_from_cdf(
    cdf: Sequence[Tuple[float, float]], fraction: float
) -> float:
    """The ``fraction``-th quantile read off an already-computed CDF.

    Works on the (value, cumulative fraction) pairs produced by
    :func:`cumulative_distribution` or a streaming recorder's ``cdf()``,
    so quantiles can be extracted from saved results without the raw
    latency list."""
    if not (0.0 <= fraction <= 1.0):
        raise InvalidArgument("percentile fraction must be in [0, 1]")
    if not cdf:
        return 0.0
    for value, cumulative in cdf:
        if cumulative >= fraction:
            return value
    return cdf[-1][0]


def downsample_cdf(
    cdf: Sequence[Tuple[float, float]], points: int
) -> List[Tuple[float, float]]:
    """Thin a CDF to at most ``points`` pairs, always keeping the last."""
    if points < 2:
        raise InvalidArgument("a CDF needs at least two points")
    if len(cdf) <= points:
        return list(cdf)
    step = len(cdf) / points
    result = [cdf[min(int((i + 1) * step) - 1, len(cdf) - 1)] for i in range(points)]
    if result[-1] != cdf[-1]:
        result[-1] = cdf[-1]
    return result


def summarize_latencies(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / tail summary of a latency sample."""
    if not values:
        return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values),
        "median": percentile(values, 0.5),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
        "max": max(values),
    }
