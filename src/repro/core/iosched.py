"""Disk-queue scheduling policies.

Disk drivers "can implement disk queue scheduling policies to optimize disk
I/O queue time (e.g. SCAN, C-SCAN, LOOK, C-LOOK) or guarantee real-time
delivery of data through algorithms such as scan-EDF" (Section 3).  The
production driver in the paper uses a combined read/write queue with C-LOOK;
the others are provided for experiments and ablations.

A queue scheduler holds pending :class:`~repro.core.driver.IORequest`
objects and, given the current head position (in sectors), decides which
request is serviced next.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, TYPE_CHECKING

from repro.assembly.registry import registry
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.driver import IORequest

__all__ = [
    "IoScheduler",
    "FcfsScheduler",
    "LookScheduler",
    "ClookScheduler",
    "ScanScheduler",
    "CscanScheduler",
    "ScanEdfScheduler",
    "make_io_scheduler",
]


class IoScheduler(ABC):
    """Orders pending I/O requests for one disk."""

    name = "abstract"

    def __init__(self) -> None:
        self._pending: list["IORequest"] = []

    def add(self, request: "IORequest") -> None:
        self._pending.append(request)

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> tuple["IORequest", ...]:
        return tuple(self._pending)

    @abstractmethod
    def next(self, head_position: int) -> Optional["IORequest"]:
        """Remove and return the next request to service (None if empty)."""

    def _take(self, request: "IORequest") -> "IORequest":
        self._pending.remove(request)
        return request

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pending={len(self._pending)})"


class FcfsScheduler(IoScheduler):
    """First-come first-served (no reordering)."""

    name = "fcfs"

    def next(self, head_position: int) -> Optional["IORequest"]:
        if not self._pending:
            return None
        return self._pending.pop(0)


class LookScheduler(IoScheduler):
    """LOOK: elevator that reverses direction at the last pending request."""

    name = "look"

    def __init__(self) -> None:
        super().__init__()
        self._direction = 1  # +1 = towards higher sectors

    def next(self, head_position: int) -> Optional["IORequest"]:
        if not self._pending:
            return None
        ahead = [r for r in self._pending if self._is_ahead(r.sector, head_position)]
        if not ahead:
            self._direction = -self._direction
            ahead = [r for r in self._pending if self._is_ahead(r.sector, head_position)]
            if not ahead:
                ahead = self._pending
        chosen = min(ahead, key=lambda r: abs(r.sector - head_position))
        return self._take(chosen)

    def _is_ahead(self, sector: int, head_position: int) -> bool:
        if self._direction > 0:
            return sector >= head_position
        return sector <= head_position


class ClookScheduler(IoScheduler):
    """C-LOOK: service requests in ascending order, wrapping to the lowest
    pending sector after the highest one (the production driver's policy)."""

    name = "clook"

    def next(self, head_position: int) -> Optional["IORequest"]:
        if not self._pending:
            return None
        ahead = [r for r in self._pending if r.sector >= head_position]
        pool = ahead if ahead else self._pending
        chosen = min(pool, key=lambda r: r.sector)
        return self._take(chosen)


class ScanScheduler(IoScheduler):
    """SCAN: elevator that sweeps to the end of the disk before reversing."""

    name = "scan"

    def __init__(self, num_sectors: int = 1 << 62) -> None:
        super().__init__()
        self.num_sectors = num_sectors
        self._direction = 1

    def next(self, head_position: int) -> Optional["IORequest"]:
        if not self._pending:
            return None
        ahead = [r for r in self._pending if self._is_ahead(r.sector, head_position)]
        if not ahead:
            # The sweep continues to the edge of the disk, then reverses.
            self._direction = -self._direction
            ahead = [r for r in self._pending if self._is_ahead(r.sector, head_position)]
            if not ahead:
                ahead = self._pending
        chosen = min(ahead, key=lambda r: abs(r.sector - head_position))
        return self._take(chosen)

    def _is_ahead(self, sector: int, head_position: int) -> bool:
        if self._direction > 0:
            return sector >= head_position
        return sector <= head_position


class CscanScheduler(IoScheduler):
    """C-SCAN: one-directional sweep, returning to sector zero at the end."""

    name = "cscan"

    def next(self, head_position: int) -> Optional["IORequest"]:
        if not self._pending:
            return None
        ahead = [r for r in self._pending if r.sector >= head_position]
        pool = ahead if ahead else self._pending
        chosen = min(pool, key=lambda r: r.sector)
        return self._take(chosen)


class ScanEdfScheduler(IoScheduler):
    """SCAN-EDF: earliest deadline first, with SCAN order among requests that
    share the earliest deadline class (Reddy & Wyllie).  Requests without a
    deadline are treated as having an infinite one."""

    name = "scan-edf"

    def __init__(self, deadline_granularity: float = 0.1) -> None:
        super().__init__()
        if deadline_granularity <= 0:
            raise ConfigurationError("deadline granularity must be positive")
        self.deadline_granularity = deadline_granularity

    def next(self, head_position: int) -> Optional["IORequest"]:
        if not self._pending:
            return None
        infinity = float("inf")

        def deadline_class(request: "IORequest") -> float:
            if request.deadline is None:
                return infinity
            return round(request.deadline / self.deadline_granularity)

        earliest = min(deadline_class(r) for r in self._pending)
        batch = [r for r in self._pending if deadline_class(r) == earliest]
        ahead = [r for r in batch if r.sector >= head_position]
        pool = ahead if ahead else batch
        chosen = min(pool, key=lambda r: r.sector)
        return self._take(chosen)


# "iosched" factories take no arguments and return a fresh IoScheduler
# (each disk driver owns its own queue, so instances are never shared).
for _cls in (
    FcfsScheduler,
    LookScheduler,
    ClookScheduler,
    ScanScheduler,
    CscanScheduler,
    ScanEdfScheduler,
):
    registry.register("iosched", _cls.name, _cls)


def make_io_scheduler(name: str) -> IoScheduler:
    """Factory keyed by the ``HostConfig.io_scheduler`` names.

    Thin wrapper over ``registry.create("iosched", name)``; third-party
    schedulers registered under the same kind are constructible here too.
    """
    return registry.create("iosched", name)
