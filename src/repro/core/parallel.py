"""``ParallelReplayExecutor``: per-node worker processes for trace replay.

The sharded event loop (:class:`~repro.core.scheduler.ShardedScheduler`)
already orders execution by ``(time, node, per-node sequence)`` — a
deterministic merge of per-node streams.  On a *partitioned* workload the
streams never interact, so each node's stream can be produced by its own
worker process and the merge applied to the results instead of the events:

* every worker builds the **full identical stack** from the same spec (same
  mount, same namespace-setup phase, same daemon spawn order), so inode
  numbers, block addresses and thread stamps agree across processes;
* worker ``k`` then replays only the clients homed on node ``k``.  With
  ``client_entry="home"``, ``placement="node"`` and rebalancing off, those
  clients touch only node ``k``'s volumes, caches and daemons — node ``j``'s
  sub-schedule is byte-for-byte independent of node ``k``'s;
* completions are merged by ``(completion time, node, per-node position)``,
  the exact tie-break the sharded scheduler uses, so the merged recorder is
  bit-identical to the sequential one while the run fits the exact window.

The *conservative window* of the sequential loop becomes a two-phase end
protocol over pipes: each worker reports the time its last client finished
(``T_k``); the parent broadcasts the global end ``T = max T_k`` and the node
``m`` that set it (the window grant).  Workers before ``m`` in merge order
run everything due *through* ``T``; workers after ``m`` stop just *before*
``T`` — reproducing exactly where the sequential scheduler stopped mid-
instant — and every clock is advanced to ``T`` so periodic daemons ticked
identically everywhere.

Requirements are validated up front: ``parallel=True`` needs nodes > 1,
``client_entry="home"``, ``placement="node"`` and ``rebalance=False``; any
other shape raises :class:`~repro.errors.ConfigurationError` (rebalancing
migrates files across nodes mid-run, which breaks the partition).
"""

from __future__ import annotations

import os
import pickle
import struct
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SchedulerError
from repro.patsy.stats import LatencyRecorder

__all__ = ["ParallelReplayExecutor"]

_LEN = struct.Struct(">Q")


def _send(fd: int, obj: Any) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    os.write(fd, _LEN.pack(len(payload)) + payload)


def _recv(fd: int) -> Any:
    header = _read_exact(fd, _LEN.size)
    return pickle.loads(_read_exact(fd, _LEN.unpack(header)[0]))


def _read_exact(fd: int, n: int) -> bytes:
    chunks = []
    while n:
        chunk = os.read(fd, n)
        if not chunk:
            raise SchedulerError("parallel replay worker closed its pipe early")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


@dataclass
class _WorkerReport:
    """Everything one worker sends back after the end protocol."""

    node: int
    local_end: float
    final_time: float
    wall_seconds: float
    cpu_seconds: float
    recorder: LatencyRecorder
    errors: int
    operations: int
    digest: Optional[str]
    replacement: str
    cache_raw: Dict[str, int]
    policy_raw: Dict[str, Any]
    volume_layouts: Dict[int, dict]
    node_entry: Dict[str, Any]
    queue_stats: Dict[str, Any]


class ParallelReplayExecutor:
    """Replays one trace with one worker process per cluster node.

    ``jobs`` (from ``ClusterConfig.jobs``; 0 = one per node) caps how many
    workers replay concurrently — the rest are forked but wait for a start
    token, so the deterministic result never depends on the cap.
    """

    def __init__(self, config: SimulationConfig, enable_digests: bool = False):
        cluster = config.cluster
        if cluster is None or cluster.nodes <= 1:
            raise ConfigurationError("parallel replay needs a multi-node cluster")
        if not cluster.parallel:
            raise ConfigurationError("parallel replay requires cluster.parallel=True")
        if cluster.client_entry != "home":
            raise ConfigurationError(
                'parallel replay requires client_entry="home" (front-end entry '
                "funnels every operation through node 0, which serialises the run)"
            )
        if cluster.rebalance:
            raise ConfigurationError(
                "parallel replay requires rebalance=False (migration moves files "
                "across the node partition mid-run)"
            )
        from repro.assembly.spec import StackSpec

        spec_placement = StackSpec.from_config(config).effective_array.placement
        if spec_placement != "node":
            raise ConfigurationError(
                'parallel replay requires placement="node" so each client\'s tree '
                "stays on its home node"
            )
        if not os.name == "posix" or not hasattr(os, "fork"):
            raise ConfigurationError("parallel replay needs a POSIX fork()")
        self.config = config
        self.cluster = cluster
        self.nodes = cluster.nodes
        self.jobs = min(cluster.jobs, self.nodes) if cluster.jobs else self.nodes
        self.enable_digests = enable_digests

    # ------------------------------------------------------------------ driving

    def replay(
        self,
        records: Sequence[Any],
        trace_name: str = "",
        max_time: Optional[float] = None,
    ):
        """Replay ``records`` across the workers; returns the merged result.

        ``records`` must be materialised (the partition is computed up
        front; the list is shared with the forked workers copy-on-write).
        """
        from repro.patsy.simulator import PatsySimulator
        from repro.patsy.traces import load_trace

        if isinstance(records, (str, os.PathLike)):
            records = load_trace(records)
        records = list(records)
        if not records:
            raise ConfigurationError("cannot replay an empty trace")
        # The sequential config every worker runs under: identical stack,
        # parallel off (a worker must not recurse into this executor).
        worker_config = replace(
            self.config, cluster=replace(self.cluster, parallel=False, jobs=0)
        )
        setup_dirs = PatsySimulator.partition_setup_dirs(
            records, self.nodes, strict=True
        )
        pipes = []  # (child_pid, to_child_fd, from_child_fd)
        for node in range(self.nodes):
            parent_r, child_w = os.pipe()
            child_r, parent_w = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Worker process: close the parent's ends and every pipe of
                # previously forked siblings, then run and hard-exit.
                os.close(parent_r)
                os.close(parent_w)
                for _, sib_w, sib_r in pipes:
                    os.close(sib_w)
                    os.close(sib_r)
                code = 0
                try:
                    self._worker(
                        node, worker_config, records, setup_dirs, max_time,
                        child_r, child_w,
                    )
                except BaseException:
                    import traceback

                    traceback.print_exc()
                    code = 1
                finally:
                    os._exit(code)
            os.close(child_r)
            os.close(child_w)
            pipes.append((pid, parent_w, parent_r))
        try:
            return self._drive(pipes, trace_name)
        finally:
            for pid, to_child, from_child in pipes:
                for fd in (to_child, from_child):
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass

    def _drive(self, pipes: List[Tuple[int, int, int]], trace_name: str):
        # Phase 1: hand out start tokens (at most ``jobs`` replaying at
        # once) and collect each worker's local end time.
        local_ends: Dict[int, float] = {}
        started = 0
        pending = list(range(self.nodes))
        while started < min(self.jobs, self.nodes):
            _send(pipes[pending[0]][1], ("start",))
            pending.pop(0)
            started += 1
        for _ in range(self.nodes):
            # Workers finish phase 1 in any OS order; each message carries
            # its node id.
            node, local_end = self._collect_one(pipes, local_ends)
            local_ends[node] = local_end
            if pending:
                _send(pipes[pending[0]][1], ("start",))
                pending.pop(0)
        # Phase 2: broadcast the window grant (global end + merge pivot).
        pivot = max(range(self.nodes), key=lambda k: (local_ends[k], k))
        global_end = local_ends[pivot]
        for _, to_child, _ in pipes:
            _send(to_child, ("finish", global_end, pivot))
        # Phase 3: gather reports (in node order — each pipe carries its
        # own node's report, so ordering is by construction).
        reports = [
            _WorkerReport(**_recv(from_child)) for _, _, from_child in pipes
        ]
        return self._merge(reports, trace_name, global_end)

    def _collect_one(
        self, pipes: List[Tuple[int, int, int]], seen: Dict[int, float]
    ) -> Tuple[int, float]:
        import select

        waiting = [
            from_child
            for node, (_, _, from_child) in enumerate(pipes)
            if node not in seen
        ]
        ready, _, _ = select.select(waiting, [], [])
        message = _recv(ready[0])
        return message[1], message[2]

    # ------------------------------------------------------------------ the worker

    def _worker(
        self,
        node: int,
        config: SimulationConfig,
        records: Sequence[Any],
        setup_dirs: Sequence[Tuple[int, str]],
        max_time: Optional[float],
        rx: int,
        tx: int,
    ) -> None:
        import time

        from repro.patsy.simulator import PatsySimulator

        message = _recv(rx)
        assert message[0] == "start"
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        sim = PatsySimulator(config)
        if self.enable_digests:
            sim.scheduler.enable_schedule_hash()
        sim.mount()
        sim.prepare_namespace(setup_dirs)
        own = [r for r in records if sim.client_node(r.client) == node]
        limit = max_time if max_time is not None else config.max_simulated_time
        sim.run_client_streams(own, limit)
        local_end = sim.scheduler.now
        _send(tx, ("done", node, local_end))
        message = _recv(rx)
        assert message[0] == "finish"
        global_end, pivot = message[1], message[2]
        scheduler = sim.scheduler
        if node < pivot:
            # Merge order puts this node's events at the global end *before*
            # the pivot's final completion: run them.
            scheduler.run(until=global_end, inclusive=True)
        elif node > pivot:
            # ... and this node's after it: release but do not execute.
            scheduler.run(until=global_end)
        if scheduler.now < global_end:
            scheduler.clock.advance_to(global_end)
        sim.latency.finish()
        report = self._report(sim, node, local_end)
        # CPU seconds measure this worker's own work even when the host has
        # fewer cores than workers and the OS interleaves them; the maximum
        # over workers is the critical path of the parallel run.
        report["wall_seconds"] = time.perf_counter() - wall_start
        report["cpu_seconds"] = time.process_time() - cpu_start
        _send(tx, report)

    def _report(self, sim: Any, node: int, local_end: float) -> Dict[str, Any]:
        spec = sim.stack.spec
        own_volumes = [
            v for v in range(spec.num_volumes) if spec.node_of_volume(v) == node
        ]
        cache_raw: Dict[str, int] = {}
        policy_raw: Dict[str, Any] = {}
        for v in own_volumes:
            shard = sim.cache.shards[v] if len(sim.cache.shards) > 1 else None
            if shard is None:
                continue
            for key, value in shard.stats.snapshot().items():
                if key == "hit_rate":
                    continue
                cache_raw[key] = cache_raw.get(key, 0) + value
            for key, value in shard.policy.snapshot().items():
                if isinstance(value, (int, float)):
                    policy_raw[key] = policy_raw.get(key, 0) + value
                else:
                    policy_raw.setdefault(key, value)
        if len(sim.cache.shards) == 1 and node == 0:
            # Unified cache: the single shard belongs to node 0's report.
            cache_raw = {
                key: value
                for key, value in sim.cache.shards[0].stats.snapshot().items()
                if key != "hit_rate"
            }
            policy_raw = dict(sim.cache.shards[0].policy.snapshot())
        volume_layouts = {}
        for v in own_volumes:
            sub = sim.layout.sublayouts[v]
            volume_layouts[v] = {
                "kind": sub.name,
                "disk_reads": sub.stats.disk_reads,
                "disk_writes": sub.stats.disk_writes,
                "blocks_read": sub.stats.blocks_read,
                "blocks_written": sub.stats.blocks_written,
                "free_blocks": sub.free_blocks,
            }
        cluster_stats = sim.collect_cluster_stats()
        node_entry = cluster_stats.get("per_node", {}).get(f"node{node}", {})
        digests = sim.scheduler.schedule_digests()
        queue_stats = (
            sim.scheduler.queue_snapshot()
            if hasattr(sim.scheduler, "queue_snapshot")
            else {}
        )
        return {
            "node": node,
            "local_end": local_end,
            "final_time": sim.scheduler.now,
            "wall_seconds": 0.0,
            "cpu_seconds": 0.0,
            "recorder": sim.latency,
            "errors": sim.errors,
            "operations": sim.latency.count,
            "digest": digests.get(node),
            "replacement": sim.cache.policy.name,
            "cache_raw": cache_raw,
            "policy_raw": policy_raw,
            "volume_layouts": volume_layouts,
            "node_entry": node_entry,
            "queue_stats": queue_stats,
        }

    # ------------------------------------------------------------------ merging

    def _merge(
        self, reports: List[_WorkerReport], trace_name: str, global_end: float
    ):
        from repro.patsy.simulator import SimulationResult

        reports.sort(key=lambda r: r.node)
        recorder = LatencyRecorder.merged([r.recorder for r in reports])
        cache_raw: Dict[str, int] = {}
        policy_raw: Dict[str, Any] = {}
        for report in reports:
            for key, value in report.cache_raw.items():
                cache_raw[key] = cache_raw.get(key, 0) + value
            for key, value in report.policy_raw.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    policy_raw[key] = policy_raw.get(key, 0) + value
                else:
                    policy_raw.setdefault(key, value)
        lookups = cache_raw.get("lookups", 0)
        cache_stats: Dict[str, Any] = dict(cache_raw)
        cache_stats["hit_rate"] = (
            cache_raw.get("hits", 0) / lookups if lookups else 0.0
        )
        cache_stats["replacement"] = reports[0].replacement
        for key, value in policy_raw.items():
            cache_stats[f"policy_{key}"] = value
        per_volume = {}
        for report in reports:
            for v, layout in sorted(report.volume_layouts.items()):
                per_volume[f"vol{v}"] = {"layout": layout}
        per_node = {
            f"node{report.node}": report.node_entry
            for report in reports
            if report.node_entry
        }
        parallel_stats = {
            "workers": self.nodes,
            "jobs": self.jobs,
            "worker_wall_seconds": {
                report.node: report.wall_seconds for report in reports
            },
            "worker_cpu_seconds": {
                report.node: report.cpu_seconds for report in reports
            },
            "critical_path_seconds": max(
                report.cpu_seconds for report in reports
            ),
            "local_ends": {report.node: report.local_end for report in reports},
            "pivot": max(
                range(self.nodes),
                key=lambda k: (reports[k].local_end, k),
            ),
            "queue_stats": {report.node: report.queue_stats for report in reports},
        }
        result = SimulationResult(
            trace_name=trace_name,
            policy_name=self.config.flush.policy,
            simulated_time=global_end,
            operations=recorder.count,
            errors=sum(report.errors for report in reports),
            latency=recorder,
            cache_stats=cache_stats,
            write_savings_blocks=cache_raw.get("dirty_blocks_discarded", 0),
            blocks_written_to_disk=cache_raw.get("blocks_written", 0),
            volume_stats={"per_volume": per_volume} if per_volume else {},
            cluster_stats={
                "nodes": self.nodes,
                "per_node": per_node,
                "parallel": parallel_stats,
            },
        )
        result.schedule_digests = {
            report.node: report.digest
            for report in reports
            if report.digest is not None
        }
        result.parallel_stats = parallel_stats
        return result
