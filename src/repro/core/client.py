"""The abstract client interface.

"The abstract client interface provides the basic file-system interface.
There are functions to open, close, read, write or delete a file and there
are functions to manipulate an hierarchical name-space."  Front-ends — the
NFS-like interface of PFS and the trace replayers of Patsy — are derived
from (or dispatch into) this component; they never touch the cache, layout
or drivers directly.

When ``auto_materialize`` is enabled (simulator instantiations), references
to files that the system has never seen are satisfied by synthesising the
file on the fly: trace replay constantly touches files that existed before
the trace started, and "when replaying traces, we synthesize those
parameters that are missing as best we can (e.g. the initial location of a
file on disk, file names, initial layout of the file-system)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from repro.core.filesystem import FileSystem
from repro.core.filetypes import BaseFile, DirectoryFile, MultimediaFile, SymlinkFile
from repro.core.inode import FileKind
from repro.core.namespace import normalize_path, split_path
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)

__all__ = ["AbstractClientInterface", "ClientStatistics"]


@dataclass
class ClientStatistics:
    """Per-operation counters kept by the client interface."""

    operations: Dict[str, int] = field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0
    files_materialized: int = 0

    def count(self, op: str) -> None:
        self.operations[op] = self.operations.get(op, 0) + 1

    @property
    def total_operations(self) -> int:
        return sum(self.operations.values())


class AbstractClientInterface:
    """Path- and handle-based file-system operations."""

    def __init__(self, fs: FileSystem, auto_materialize: bool = False):
        self.fs = fs
        self.auto_materialize = auto_materialize
        self.stats = ClientStatistics()

    # ------------------------------------------------------------------ lookup / attributes

    def lookup(self, path: str) -> Generator[Any, Any, BaseFile]:
        """Resolve a path, materialising it when configured to do so."""
        try:
            file = yield from self.fs.namespace.resolve(path)
            return file
        except (FileNotFound, NotADirectory):
            if not self.auto_materialize:
                raise
            return (yield from self._materialize(path, FileKind.REGULAR))

    def stat(self, path: str) -> Generator[Any, Any, dict]:
        self.stats.count("stat")
        file = yield from self.lookup(path)
        return file.inode.stat()

    def exists(self, path: str) -> Generator[Any, Any, bool]:
        return (yield from self.fs.namespace.exists(path))

    # ------------------------------------------------------------------ open / close

    def create(
        self, path: str, kind: FileKind = FileKind.REGULAR, exclusive: bool = True
    ) -> Generator[Any, Any, int]:
        """Create a file and return an open handle to it."""
        self.stats.count("create")
        parent, name = yield from self._parent_for(path)
        existing = yield from parent.lookup(name)
        if existing is not None:
            if exclusive:
                raise FileExists(f"{path!r} already exists")
            file = yield from self.fs.file_table.load(existing)
        else:
            file = yield from self._create_in(parent, name, kind)
        yield from file.on_open()
        return self.fs.file_table.open_handle(file)

    def open(self, path: str, create: bool = False) -> Generator[Any, Any, int]:
        """Open an existing file (optionally creating it) and return a handle."""
        self.stats.count("open")
        try:
            file = yield from self.fs.namespace.resolve(path)
        except (FileNotFound, NotADirectory):
            if create:
                return (yield from self.create(path, exclusive=False))
            if self.auto_materialize:
                file = yield from self._materialize(path, FileKind.REGULAR)
            else:
                raise
        yield from file.on_open()
        return self.fs.file_table.open_handle(file)

    def close(self, handle: int) -> Generator[Any, Any, None]:
        self.stats.count("close")
        file = self.fs.file_table.close_handle(handle)
        yield from file.on_close()
        if file.inode.nlink == 0 and file.open_count == 0:
            yield from self._reap(file)

    # ------------------------------------------------------------------ data operations

    def read(self, handle: int, offset: int, length: int) -> Generator[Any, Any, bytes]:
        self.stats.count("read")
        entry = self.fs.file_table.get_handle(handle)
        if isinstance(entry.file, DirectoryFile):
            raise IsADirectory("cannot read a directory through the data interface")
        data = yield from entry.file.read(offset, length)
        self.stats.bytes_read += length
        entry.position = offset + length
        return data

    def write(
        self,
        handle: int,
        offset: int,
        data: Optional[bytes] = None,
        length: Optional[int] = None,
    ) -> Generator[Any, Any, int]:
        self.stats.count("write")
        entry = self.fs.file_table.get_handle(handle)
        if isinstance(entry.file, DirectoryFile):
            raise IsADirectory("cannot write a directory through the data interface")
        written = yield from entry.file.write(offset, data, length)
        self.stats.bytes_written += written
        entry.position = offset + written
        return written

    def truncate(self, handle: int, new_size: int) -> Generator[Any, Any, None]:
        self.stats.count("truncate")
        entry = self.fs.file_table.get_handle(handle)
        yield from entry.file.truncate(new_size)

    def truncate_path(self, path: str, new_size: int) -> Generator[Any, Any, None]:
        self.stats.count("truncate")
        file = yield from self.lookup(path)
        yield from file.truncate(new_size)

    def fsync(self, handle: int) -> Generator[Any, Any, int]:
        self.stats.count("fsync")
        entry = self.fs.file_table.get_handle(handle)
        file = entry.file
        written = yield from file.flush()
        yield from self.fs.sync_inode(file.file_id)
        # Make the file durable as a whole: it is only reachable through
        # its directory entries, so the *full ancestor dirent chain* is
        # flushed up to the root, plus — after a rename — both the source
        # and destination directories (and their chains).  The count
        # returned is still the file's own data blocks.
        # Consume the pending set *before* flushing: a rename racing the
        # flushes below re-records its directories (even ones this fsync
        # already flushed and the rename re-dirtied), so the next fsync
        # still makes that rename durable.
        starts = set(file.pending_sync_parents)
        file.pending_sync_parents.difference_update(starts)
        if file.parent_id is not None:
            starts.add(file.parent_id)
        flushed: set[int] = set()
        for start in sorted(starts):
            yield from self._sync_ancestor_chain(start, flushed)
        return written

    def _sync_ancestor_chain(
        self, directory_id: int, flushed: set[int]
    ) -> Generator[Any, Any, None]:
        """Flush a directory's blocks and inode, then its parent's, up to
        the root (or as far as the in-core parent linkage reaches)."""
        current: Optional[int] = directory_id
        while current is not None and current not in flushed:
            flushed.add(current)
            yield from self.fs.cache.flush_file(current)
            yield from self.fs.sync_inode(current)
            loaded = self.fs.file_table.find(current)
            current = loaded.parent_id if loaded is not None else None

    # Path-based conveniences (used by the NFS front-end, which is stateless).

    def read_file(self, path: str, offset: int, length: int) -> Generator[Any, Any, bytes]:
        self.stats.count("read")
        file = yield from self.lookup(path)
        if isinstance(file, DirectoryFile):
            raise IsADirectory("cannot read a directory through the data interface")
        data = yield from file.read(offset, length)
        self.stats.bytes_read += length
        return data

    def write_file(
        self,
        path: str,
        offset: int,
        data: Optional[bytes] = None,
        length: Optional[int] = None,
    ) -> Generator[Any, Any, int]:
        self.stats.count("write")
        try:
            file = yield from self.fs.namespace.resolve(path)
        except (FileNotFound, NotADirectory):
            parent, name = yield from self._parent_for(path)
            file = yield from self._create_in(parent, name, FileKind.REGULAR)
        if isinstance(file, DirectoryFile):
            raise IsADirectory("cannot write a directory through the data interface")
        written = yield from file.write(offset, data, length)
        self.stats.bytes_written += written
        return written

    # ------------------------------------------------------------------ namespace operations

    def mkdir(self, path: str) -> Generator[Any, Any, dict]:
        self.stats.count("mkdir")
        parent, name = yield from self._parent_for(path)
        existing = yield from parent.lookup(name)
        if existing is not None:
            raise FileExists(f"{path!r} already exists")
        directory = yield from self._create_in(parent, name, FileKind.DIRECTORY)
        return directory.inode.stat()

    def rmdir(self, path: str) -> Generator[Any, Any, None]:
        self.stats.count("rmdir")
        file = yield from self.fs.namespace.resolve(path)
        if not isinstance(file, DirectoryFile):
            raise NotADirectory(f"{path!r} is not a directory")
        if file is self.fs.root_directory():
            raise PermissionDenied("cannot remove the root directory")
        empty = yield from file.is_empty()
        if not empty:
            raise DirectoryNotEmpty(f"{path!r} is not empty")
        parent, name = yield from self.fs.namespace.resolve_parent(path)
        yield from parent.remove_entry(name)
        file.inode.nlink = 0
        yield from self._reap(file)

    def readdir(self, path: str) -> Generator[Any, Any, Dict[str, int]]:
        self.stats.count("readdir")
        file = yield from self.lookup(path)
        if not isinstance(file, DirectoryFile):
            raise NotADirectory(f"{path!r} is not a directory")
        return (yield from file.list_entries())

    def unlink(self, path: str) -> Generator[Any, Any, None]:
        """Remove a file (the paper's ``delete``)."""
        self.stats.count("unlink")
        file = yield from self.fs.namespace.resolve(path, follow_symlinks=False)
        if isinstance(file, DirectoryFile):
            raise IsADirectory(f"{path!r} is a directory; use rmdir")
        parent, name = yield from self.fs.namespace.resolve_parent(path)
        yield from parent.remove_entry(name)
        file.inode.nlink = max(file.inode.nlink - 1, 0)
        if file.inode.nlink == 0 and file.open_count == 0:
            yield from self._reap(file)

    def rename(self, old_path: str, new_path: str) -> Generator[Any, Any, None]:
        self.stats.count("rename")
        file = yield from self.fs.namespace.resolve(old_path, follow_symlinks=False)
        new_parent, new_name = yield from self._parent_for(new_path)
        existing = yield from new_parent.lookup(new_name)
        if existing is not None:
            target = yield from self.fs.file_table.load(existing)
            if isinstance(target, DirectoryFile):
                empty = yield from target.is_empty()
                if not empty:
                    raise DirectoryNotEmpty(f"{new_path!r} is not empty")
            target.inode.nlink = max(target.inode.nlink - 1, 0)
            if target.inode.nlink == 0 and target.open_count == 0:
                yield from self._reap(target)
            else:
                yield from new_parent.remove_entry(new_name)
        old_parent, old_name = yield from self.fs.namespace.resolve_parent(old_path)
        yield from new_parent.add_entry(new_name, file.file_id)
        yield from old_parent.remove_entry(old_name)
        # Rename durability: fsync of the renamed file must flush *both*
        # directories — the new entry and the removed old one.
        file.pending_sync_parents.update({old_parent.file_id, new_parent.file_id})
        file.parent_id = new_parent.file_id

    def symlink(self, target: str, path: str) -> Generator[Any, Any, dict]:
        self.stats.count("symlink")
        parent, name = yield from self._parent_for(path)
        existing = yield from parent.lookup(name)
        if existing is not None:
            raise FileExists(f"{path!r} already exists")
        link = yield from self._create_in(parent, name, FileKind.SYMLINK)
        assert isinstance(link, SymlinkFile)
        link.set_target(target)
        return link.inode.stat()

    def readlink(self, path: str) -> Generator[Any, Any, str]:
        self.stats.count("readlink")
        file = yield from self.fs.namespace.resolve(path, follow_symlinks=False)
        if not isinstance(file, SymlinkFile):
            raise InvalidArgument(f"{path!r} is not a symbolic link")
        return file.target

    # ------------------------------------------------------------------ whole-system operations

    def sync(self) -> Generator[Any, Any, int]:
        self.stats.count("sync")
        return (yield from self.fs.sync())

    # ------------------------------------------------------------------ helpers

    def _parent_for(self, path: str) -> Generator[Any, Any, tuple[DirectoryFile, str]]:
        try:
            return (yield from self.fs.namespace.resolve_parent(path))
        except (FileNotFound, NotADirectory):
            if not self.auto_materialize:
                raise
            # Build the missing intermediate directories.
            components = split_path(path)
            if not components:
                raise InvalidArgument("cannot create the root directory")
            yield from self._materialize_directories(components[:-1])
            return (yield from self.fs.namespace.resolve_parent(path))

    def _create_in(
        self, parent: DirectoryFile, name: str, kind: FileKind
    ) -> Generator[Any, Any, BaseFile]:
        # The parent directory and leaf name route the new file to a volume
        # in multi-volume arrays (directory-affinity / hash placement).
        inode = self.fs.layout.allocate_inode(kind, parent_id=parent.file_id, name=name)
        if kind is FileKind.DIRECTORY:
            inode.nlink = 2
            parent.inode.nlink += 1
        file = self.fs.file_table.instantiate(inode)
        file.parent_id = parent.file_id
        yield from parent.add_entry(name, inode.number)
        self.fs.note_inode_dirty(inode)
        self.fs.note_inode_dirty(parent.inode)
        return file

    def _materialize_directories(self, components: list[str]) -> Generator[Any, Any, DirectoryFile]:
        current = self.fs.root_directory()
        for name in components:
            child_number = yield from current.lookup(name)
            if child_number is None:
                child = yield from self._create_in(current, name, FileKind.DIRECTORY)
                self.stats.files_materialized += 1
            else:
                child = yield from self.fs.file_table.load(child_number)
            if not isinstance(child, DirectoryFile):
                raise NotADirectory(f"{name!r} exists and is not a directory")
            current = child
        return current

    def _materialize(self, path: str, kind: FileKind) -> Generator[Any, Any, BaseFile]:
        """Synthesise a file that existed before the simulation started."""
        components = split_path(path)
        if not components:
            return self.fs.root_directory()
        parent = yield from self._materialize_directories(components[:-1])
        existing = yield from parent.lookup(components[-1])
        if existing is not None:
            return (yield from self.fs.file_table.load(existing))
        file = yield from self._create_in(parent, components[-1], kind)
        file.materialized = True
        self.stats.files_materialized += 1
        return file

    def _reap(self, file: BaseFile) -> Generator[Any, Any, None]:
        """Release the cache blocks and on-disk storage of a dead file."""
        self.fs.cache.invalidate_file(file.file_id)
        yield from self.fs.layout.free_inode(file.inode)
        self.fs.file_table.forget(file.file_id)
        self.fs._dirty_inodes.pop(file.file_id, None)

    def open_multimedia(self, path: str) -> Generator[Any, Any, int]:
        """Open (or create) a continuous-media file."""
        self.stats.count("open_multimedia")
        try:
            file = yield from self.fs.namespace.resolve(path)
        except (FileNotFound, NotADirectory):
            parent, name = yield from self._parent_for(path)
            file = yield from self._create_in(parent, name, FileKind.MULTIMEDIA)
        if not isinstance(file, MultimediaFile):
            raise FileSystemError(f"{path!r} is not a multimedia file")
        yield from file.on_open()
        return self.fs.file_table.open_handle(file)
