"""Hierarchical name space: path resolution over directory files.

Paths are Unix-style (``/a/b/c``).  Resolution walks directory files through
the ordinary cached-read path, so name lookups hit the block cache and the
disk exactly like any other access — which is what makes directory traffic
show up in the simulator's latency distributions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.filetypes import BaseFile, DirectoryFile, SymlinkFile
from repro.errors import FileNotFound, InvalidArgument, NotADirectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.filesystem import FileSystem

__all__ = ["Namespace", "split_path", "normalize_path"]

#: maximum number of symbolic links followed during one resolution.
MAX_SYMLINK_DEPTH = 8


def split_path(path: str) -> list[str]:
    """Split a path into components, ignoring empty ones and single dots."""
    if not isinstance(path, str):
        raise InvalidArgument(f"path must be a string, got {type(path).__name__}")
    components = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        components.append(part)
    return components


def normalize_path(path: str) -> str:
    """Canonical form of a path (always absolute, no duplicate slashes)."""
    return "/" + "/".join(split_path(path))


class Namespace:
    """Resolves paths to instantiated files."""

    def __init__(self, fs: "FileSystem"):
        self.fs = fs
        self.lookups = 0
        self.symlinks_followed = 0

    # -- resolution --------------------------------------------------------------

    def resolve(
        self, path: str, follow_symlinks: bool = True, _depth: int = 0
    ) -> Generator[Any, Any, BaseFile]:
        """Resolve ``path`` to an instantiated file (raises FileNotFound)."""
        if _depth > MAX_SYMLINK_DEPTH:
            raise InvalidArgument(f"too many levels of symbolic links resolving {path!r}")
        self.lookups += 1
        current: BaseFile = self.fs.root_directory()
        components = split_path(path)
        for index, name in enumerate(components):
            if not isinstance(current, DirectoryFile):
                raise NotADirectory(f"{'/'.join(components[:index]) or '/'} is not a directory")
            inode_number = yield from current.lookup(name)
            if inode_number is None:
                raise FileNotFound(f"no such file or directory: {path!r}")
            parent_id = current.file_id
            current = yield from self.fs.file_table.load(inode_number)
            # Record the containing directory: fsync walks this linkage to
            # flush the full ancestor dirent chain.
            if current.parent_id is None:
                current.parent_id = parent_id
            is_last = index == len(components) - 1
            if isinstance(current, SymlinkFile) and (follow_symlinks or not is_last):
                self.symlinks_followed += 1
                target = current.target
                if not target.startswith("/"):
                    target = "/".join(["/".join(components[:index])] + [target])
                remainder = "/".join(components[index + 1 :])
                full = target if not remainder else target.rstrip("/") + "/" + remainder
                return (
                    yield from self.resolve(full, follow_symlinks=follow_symlinks, _depth=_depth + 1)
                )
        return current

    def resolve_parent(self, path: str) -> Generator[Any, Any, tuple[DirectoryFile, str]]:
        """Resolve the parent directory of ``path``; returns (dir, leaf name)."""
        components = split_path(path)
        if not components:
            raise InvalidArgument("the root directory has no parent")
        parent_path = "/" + "/".join(components[:-1])
        parent = yield from self.resolve(parent_path)
        if not isinstance(parent, DirectoryFile):
            raise NotADirectory(f"{parent_path} is not a directory")
        return parent, components[-1]

    def exists(self, path: str) -> Generator[Any, Any, bool]:
        try:
            yield from self.resolve(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def __repr__(self) -> str:
        return f"Namespace(lookups={self.lookups})"
