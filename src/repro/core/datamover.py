"""Data movement helper: real copies for PFS, time charges for Patsy.

"In all cases where data is moved between buffers, the simulator delays the
current thread for the amount of time it would take (based on the system
hardware configuration) to copy the data.  In a real system, a large chunk
of (physical) memory is allocated and divided over all the cache blocks."

The :class:`DataMover` is the helper component that hides this difference
from the rest of the framework: the client interface and file objects call
``copy_in`` / ``copy_out`` and never need to know whether bytes actually
moved.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.blocks import CacheBlock
from repro.core.scheduler import Delay
from repro.errors import InvalidArgument

__all__ = ["DataMover"]


class DataMover:
    """Copies data between client buffers and cache blocks.

    Parameters
    ----------
    charge_time:
        When true (simulator), every copy delays the calling thread by
        ``nbytes / bandwidth`` seconds.
    bandwidth:
        Memory copy bandwidth in bytes/second used for the time charge.
    """

    def __init__(self, charge_time: bool, bandwidth: float = 80 * 1024 * 1024):
        if bandwidth <= 0:
            raise InvalidArgument("memory copy bandwidth must be positive")
        self.charge_time = charge_time
        self.bandwidth = float(bandwidth)
        self.bytes_copied = 0

    def copy_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth

    def charge(self, nbytes: int) -> Generator[Any, Any, None]:
        """Charge copy time for ``nbytes`` without moving any data (used when
        the simulator has no real payload to copy)."""
        self.bytes_copied += nbytes
        if self.charge_time and nbytes:
            yield Delay(self.copy_time(nbytes))

    def copy_in(
        self, block: CacheBlock, offset: int, data: Optional[bytes]
    ) -> Generator[Any, Any, int]:
        """Copy ``data`` into ``block`` starting at ``offset``.

        ``data`` may be ``None`` in a simulated system (only its length
        matters then, supplied as 0 — callers pass real bytes when they have
        them).  Returns the number of bytes written into the block.
        """
        if data is None:
            return 0
        nbytes = len(data)
        if offset < 0 or offset + nbytes > block.size:
            raise InvalidArgument(
                f"copy_in outside block bounds: offset={offset} len={nbytes} size={block.size}"
            )
        if block.data is not None:
            block.data[offset : offset + nbytes] = data
            block.valid_bytes = max(block.valid_bytes, offset + nbytes)
        self.bytes_copied += nbytes
        if self.charge_time and nbytes:
            yield Delay(self.copy_time(nbytes))
        return nbytes

    def copy_out(
        self, block: CacheBlock, offset: int, length: int
    ) -> Generator[Any, Any, bytes]:
        """Copy ``length`` bytes out of ``block`` starting at ``offset``.

        In a simulated system (no data buffer) a zero-filled placeholder of
        the right length is returned so callers can stay oblivious.
        """
        if offset < 0 or length < 0 or offset + length > block.size:
            raise InvalidArgument(
                f"copy_out outside block bounds: offset={offset} len={length} size={block.size}"
            )
        if block.data is not None:
            payload = bytes(block.data[offset : offset + length])
        else:
            payload = bytes(length)
        self.bytes_copied += length
        if self.charge_time and length:
            yield Delay(self.copy_time(length))
        return payload
