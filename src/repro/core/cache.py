"""The file-system block cache.

"The cache modules are used to administer and maintain a file-system block
cache.  It provides interfaces to administer all dirty, non-dirty and free
blocks in lists, and it provides interfaces to allocate blocks from the
cache.  Also, when blocks are allocated from a full cache, it decides which
blocks are replaced and flushed." (Section 2)

The base cache keeps three collections:

* a free list of never-used slots,
* a *clean* (non-dirty) set whose eviction order is maintained by the
  replacement policy's own lists,
* a *dirty* list ordered by the time each block first became dirty.

Allocation takes free slots first, then asks the configured
:class:`~repro.core.replacement.ReplacementPolicy` for a victim.  The
policy is event-driven: the cache reports inserts, accesses, dirty/clean
transitions and evictions, and the policy answers ``victim()`` in O(1)
amortised time from its own intrusive lists (including ghost lists for the
adaptive policies).  When no block is evictable the cache "initiates a
cache flush through the oldest dirty block" — either synchronously in the
allocating thread, or by kicking an asynchronous flush daemon (the Section
5.2 lesson) registered by the active :class:`~repro.core.flush.FlushPolicy`.

Persistency policies (the 30-second update timer, UPS write-saving, NVRAM)
are *derived components* implemented in :mod:`repro.core.flush`; they drive
the cache through the public flush interfaces below.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.config import CacheConfig
from repro.core.blocks import BlockId, BlockState, CacheBlock
from repro.core.replacement import make_replacement_policy
from repro.core.scheduler import Scheduler
from repro.errors import CacheError, CacheExhaustedError

__all__ = ["BlockCache", "CacheStatistics", "WritebackFn"]

#: Writeback callback registered by the file system: a generator function
#: that writes the given logical blocks of ``file_id`` to stable storage and
#: returns when the write has completed.
WritebackFn = Callable[[int, list[int]], Generator[Any, Any, None]]


@dataclass
class CacheStatistics:
    """Counters maintained by the cache; read by statistics plug-ins."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    allocations: int = 0
    evictions: int = 0
    blocks_dirtied: int = 0
    blocks_cleaned: int = 0
    writeback_calls: int = 0
    blocks_written: int = 0
    dirty_blocks_discarded: int = 0
    allocation_stalls: int = 0
    nvram_stalls: int = 0
    peak_dirty_bytes: int = 0
    forced_replacement_flushes: int = 0
    #: misses whose identity was found in a policy ghost list (ARC/2Q).
    ghost_hits: int = 0
    #: times an adaptive policy re-tuned itself (ARC target movements).
    policy_adaptations: int = 0
    #: list nodes examined across all victim selections; divided by
    #: ``evictions`` this measures the (amortised O(1)) eviction cost.
    victim_scan_steps: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "allocations": self.allocations,
            "evictions": self.evictions,
            "blocks_dirtied": self.blocks_dirtied,
            "blocks_cleaned": self.blocks_cleaned,
            "writeback_calls": self.writeback_calls,
            "blocks_written": self.blocks_written,
            "dirty_blocks_discarded": self.dirty_blocks_discarded,
            "allocation_stalls": self.allocation_stalls,
            "nvram_stalls": self.nvram_stalls,
            "peak_dirty_bytes": self.peak_dirty_bytes,
            "forced_replacement_flushes": self.forced_replacement_flushes,
            "ghost_hits": self.ghost_hits,
            "policy_adaptations": self.policy_adaptations,
            "victim_scan_steps": self.victim_scan_steps,
        }


class BlockCache:
    """The framework's block cache (base component).

    Parameters
    ----------
    scheduler:
        The thread scheduler (for time stamps and blocking).
    config:
        Cache geometry and replacement policy.
    with_data:
        ``True`` for an on-line system (slots own real buffers), ``False``
        for a simulator.
    """

    def __init__(self, scheduler: Scheduler, config: CacheConfig, with_data: bool = True):
        self.scheduler = scheduler
        self.config = config
        self.block_size = config.block_size
        self.with_data = with_data
        self.stats = CacheStatistics()
        #: the replacement policy; event-driven, shares this cache's stats.
        self.policy = make_replacement_policy(
            config.replacement,
            config.num_blocks,
            rng=scheduler.rng,
            stats=self.stats,
            slru_fraction=config.slru_protected_fraction,
            k=config.lru_k,
            twoq_in_fraction=config.twoq_in_fraction,
            twoq_out_fraction=config.twoq_out_fraction,
        )
        self._slots = [
            CacheBlock(slot, config.block_size, with_data) for slot in range(config.num_blocks)
        ]
        self._free: deque[CacheBlock] = deque(self._slots)
        self._index: dict[BlockId, CacheBlock] = {}
        #: clean residents (membership/count only; eviction order lives in
        #: the policy's own lists).
        self._clean: dict[BlockId, CacheBlock] = {}
        #: dirty residents, in first-dirtied order (drives flush policies).
        self._dirty: "OrderedDict[BlockId, CacheBlock]" = OrderedDict()

        #: registered by the file system; required before any flush happens.
        self.writeback: Optional[WritebackFn] = None
        #: set by the NVRAM flush policy: maximum bytes of dirty data allowed.
        self.dirty_limit_bytes: Optional[int] = None
        #: whether draining for the dirty limit flushes whole files.
        self.drain_whole_file: bool = True
        #: whether replacement-pressure flushes write whole files.
        self.flush_whole_file_on_replacement: bool = False
        #: when set, allocation pressure is delegated to this callable
        #: (the asynchronous flush daemon) instead of flushing inline.
        self.space_requester: Optional[Callable[[], None]] = None

        self._space_available = scheduler.new_event("cache-space")
        self._io_done = scheduler.new_event("cache-io-done")

    # ------------------------------------------------------------------ queries

    @property
    def num_blocks(self) -> int:
        return len(self._slots)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def clean_count(self) -> int:
        return len(self._clean)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    @property
    def dirty_bytes(self) -> int:
        return len(self._dirty) * self.block_size

    @property
    def cached_count(self) -> int:
        return len(self._index)

    def contains(self, file_id: int, block_no: int) -> bool:
        return BlockId(file_id, block_no) in self._index

    def peek(self, file_id: int, block_no: int) -> Optional[CacheBlock]:
        """Look up a block without touching statistics or recency."""
        return self._index.get(BlockId(file_id, block_no))

    def lookup(self, file_id: int, block_no: int) -> Optional[CacheBlock]:
        """Look up a block, recording a hit or miss and updating recency."""
        self.stats.lookups += 1
        block = self._index.get(BlockId(file_id, block_no))
        if block is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.touch(block)
        return block

    def touch(self, block: CacheBlock) -> None:
        """Record a reference to ``block`` for replacement bookkeeping."""
        block.record_access(self.scheduler.now)
        self.policy.on_access(block)

    def dirty_blocks_of(self, file_id: int) -> list[CacheBlock]:
        """Dirty blocks of one file, oldest first."""
        return [block for block in self._dirty.values() if block.block_id.file_id == file_id]

    def cached_blocks_of(self, file_id: int) -> list[CacheBlock]:
        return [block for block in self._index.values() if block.block_id.file_id == file_id]

    def oldest_dirty(self, skip_busy: bool = True) -> Optional[CacheBlock]:
        for block in self._dirty.values():
            if skip_busy and block.busy:
                continue
            return block
        return None

    def dirty_files(self) -> list[int]:
        """File identifiers that currently own dirty blocks, oldest first."""
        seen: list[int] = []
        for block in self._dirty.values():
            file_id = block.block_id.file_id
            if file_id not in seen:
                seen.append(file_id)
        return seen

    def blocks(self) -> Iterable[CacheBlock]:
        return iter(self._slots)

    def oldest_dirty_age(self) -> float:
        """Age (seconds) of the oldest dirty block, or 0 when nothing is dirty."""
        block = self.oldest_dirty(skip_busy=False)
        if block is None or block.dirty_since is None:
            return 0.0
        return self.scheduler.now - block.dirty_since

    # ------------------------------------------------------------------ waiting helpers

    def wait_block_ready(
        self, file_id: Optional[int] = None, block_no: Optional[int] = None
    ) -> Generator[Any, Any, None]:
        """Wait until some in-flight block I/O completes (spurious wake-ups
        are possible; callers re-check their condition in a loop).  The
        optional ``(file_id, block_no)`` identifies the block being waited
        for; a plain cache has a single completion event, but the sharded
        façade uses the identity to wait on the owning shard."""
        yield from self._io_done.wait()

    def notify_block_ready(
        self, file_id: Optional[int] = None, block_no: Optional[int] = None
    ) -> None:
        self._io_done.signal()

    # ------------------------------------------------------------------ allocation

    def allocate(self, file_id: int, block_no: int) -> Generator[Any, Any, CacheBlock]:
        """Allocate a cache slot for ``(file_id, block_no)``.

        The returned block is inserted in the clean list with invalid
        contents; callers pin it and mark it busy while filling it (from disk
        or from a client write).  Blocks "are first allocated from the
        non-dirty list, and when there are no non-dirty blocks available, the
        cache initiates a cache flush through the oldest dirty block".
        """
        block_id = BlockId(file_id, block_no)
        if block_id in self._index:
            raise CacheError(f"block {block_id} is already cached")
        attempts = 0
        while True:
            block = self._take_free_or_evict(block_id)
            if block is not None:
                break
            attempts += 1
            if attempts > 10 * self.num_blocks:
                raise CacheExhaustedError(
                    f"cannot allocate a cache block for {block_id}: "
                    f"{self.dirty_count} dirty, {self.clean_count} clean (all pinned?)"
                )
            self.stats.allocation_stalls += 1
            yield from self._make_space()
            # Another thread may have cached this very block while we
            # waited for space; inserting a second copy would corrupt the
            # index.  Raise the same error the entry check uses — every
            # caller already handles it with a re-lookup.
            if block_id in self._index:
                raise CacheError(f"block {block_id} is already cached")
        block.block_id = block_id
        block.state = BlockState.CLEAN
        block.record_access(self.scheduler.now)
        self._index[block_id] = block
        self._clean[block_id] = block
        self.policy.on_insert(block)
        self.stats.allocations += 1
        return block

    def _take_free_or_evict(self, incoming: Optional[BlockId] = None) -> Optional[CacheBlock]:
        if self._free:
            return self._free.popleft()
        victim = self.policy.victim(incoming=incoming)
        if victim is None:
            return None
        # Replacement eviction: the policy may remember the identity in a
        # ghost list (the incoming block is what pushed it out).
        self.policy.on_evict(victim, ghost=True)
        self._remove(victim)
        victim.reset()
        self.stats.evictions += 1
        return victim

    def has_allocatable_slot(self) -> bool:
        """True when an allocation could succeed right now without flushing."""
        return bool(self._free) or self.policy.victim(peek=True) is not None

    def _make_space(self) -> Generator[Any, Any, None]:
        """Create an evictable block, by flushing dirty data."""
        if self.space_requester is not None:
            # Asynchronous flushing: wake the flush daemon and wait for it to
            # report that space is available.
            self.space_requester()
            yield from self._space_available.wait()
            return
        # Synchronous flushing in the allocating thread (the original design
        # the paper's Section 5.2 later moved away from).
        self.stats.forced_replacement_flushes += 1
        yield from self._flush_for_replacement()

    def _flush_for_replacement(self) -> Generator[Any, Any, int]:
        """Flush dirty data to make room.  Overridable: the default flushes
        the single oldest dirty block; with ``flush_whole_file_on_replacement``
        it flushes the whole file owning the oldest dirty block."""
        victim = self.oldest_dirty()
        if victim is None:
            # Everything is pinned/busy; wait for in-flight I/O to finish.
            yield from self.wait_block_ready()
            return 0
        if self.flush_whole_file_on_replacement:
            return (yield from self.flush_file(victim.block_id.file_id))
        return (yield from self.flush_block(victim))

    def notify_space_available(self) -> None:
        """Called by the flush daemon once clean/free blocks exist again."""
        self._space_available.signal()

    # ------------------------------------------------------------------ dirty / clean transitions

    def mark_dirty(self, block: CacheBlock) -> Generator[Any, Any, None]:
        """Mark ``block`` dirty, honouring the NVRAM dirty-data limit.

        When a dirty-byte limit is configured (the NVRAM experiments) and the
        limit is reached, the caller is stalled while the oldest dirty data
        is drained to disk — this is exactly the "new writes are waiting for
        the NVRAM to drain" behaviour reported for trace 1b.
        """
        if block.block_id is None or block.block_id not in self._index:
            raise CacheError("cannot dirty a block that is not in the cache")
        # The reference that dirtied this block was already counted by the
        # lookup/allocate that preceded it; notifying the policy again would
        # make every freshly written block look re-referenced and defeat
        # scan resistance, so only the block's own bookkeeping is updated.
        if block.is_dirty:
            block.record_access(self.scheduler.now)
            return
        while (
            self.dirty_limit_bytes is not None
            and self.dirty_bytes + self.block_size > self.dirty_limit_bytes
            and self.dirty_count > 0
        ):
            self.stats.nvram_stalls += 1
            yield from self._drain_for_dirty_limit()
        self._clean.pop(block.block_id, None)
        block.state = BlockState.DIRTY
        block.dirty_since = self.scheduler.now
        self._dirty[block.block_id] = block
        self.policy.on_dirty(block)
        self.stats.blocks_dirtied += 1
        self.stats.peak_dirty_bytes = max(self.stats.peak_dirty_bytes, self.dirty_bytes)
        block.record_access(self.scheduler.now)

    def _drain_for_dirty_limit(self) -> Generator[Any, Any, None]:
        victim = self.oldest_dirty()
        if victim is None:
            yield from self.wait_block_ready()
            return
        if self.drain_whole_file:
            yield from self.flush_file(victim.block_id.file_id)
        else:
            yield from self.flush_block(victim)

    def mark_clean(self, block: CacheBlock) -> None:
        """Move a dirty block back to the clean list (its data is on disk)."""
        if not block.is_dirty:
            return
        self._dirty.pop(block.block_id, None)
        block.state = BlockState.CLEAN
        block.dirty_since = None
        self._clean[block.block_id] = block
        self.policy.on_clean(block)
        self.stats.blocks_cleaned += 1

    # ------------------------------------------------------------------ invalidation

    def _remove(self, block: CacheBlock) -> None:
        if block.block_id is None:
            return
        self._index.pop(block.block_id, None)
        self._clean.pop(block.block_id, None)
        self._dirty.pop(block.block_id, None)

    def invalidate(self, block: CacheBlock) -> None:
        """Drop one block from the cache, discarding its contents."""
        if block.pinned or block.busy:
            raise CacheError(f"cannot invalidate pinned/busy block {block.block_id}")
        if block.is_dirty:
            self.stats.dirty_blocks_discarded += 1
        # No ghost: the data is destroyed (truncate/delete), not displaced.
        self.policy.on_evict(block, ghost=False)
        self._remove(block)
        block.reset()
        self._free.append(block)

    def invalidate_file(self, file_id: int, from_block: int = 0) -> tuple[int, int]:
        """Drop every cached block of ``file_id`` with block number >=
        ``from_block`` (used by delete and truncate).

        Returns ``(clean_dropped, dirty_dropped)``.  Dirty blocks dropped
        here are the "write savings" of the delayed-write policies: data that
        died in memory and never cost a disk write.
        """
        clean_dropped = 0
        dirty_dropped = 0
        doomed = [
            block
            for block in self._index.values()
            if block.block_id.file_id == file_id and block.block_id.block_no >= from_block
        ]
        for block in doomed:
            if block.pinned or block.busy:
                # An in-flight I/O will complete harmlessly; skip it.
                continue
            if block.is_dirty:
                dirty_dropped += 1
            else:
                clean_dropped += 1
            if block.is_dirty:
                self.stats.dirty_blocks_discarded += 1
            self.policy.on_evict(block, ghost=False)
            self._remove(block)
            block.reset()
            self._free.append(block)
        # Ghosts of previously evicted blocks of this file must go too:
        # the data range is destroyed, so a later write to the same block
        # numbers is new data, not reuse.
        self.policy.forget_file(file_id, from_block)
        if doomed:
            self.notify_space_available()
        return clean_dropped, dirty_dropped

    # ------------------------------------------------------------------ flushing

    def flush_block(self, block: CacheBlock) -> Generator[Any, Any, int]:
        """Write one dirty block to disk; returns the number of blocks written."""
        if not block.is_dirty or block.busy:
            return 0
        return (yield from self._writeback_blocks(block.block_id.file_id, [block]))

    def flush_file(self, file_id: int) -> Generator[Any, Any, int]:
        """Write every dirty block of ``file_id`` to disk."""
        blocks = [b for b in self.dirty_blocks_of(file_id) if not b.busy]
        if not blocks:
            return 0
        return (yield from self._writeback_blocks(file_id, blocks))

    def flush_oldest(self, whole_file: bool) -> Generator[Any, Any, int]:
        """Flush the oldest dirty block, or its whole file."""
        victim = self.oldest_dirty()
        if victim is None:
            return 0
        if whole_file:
            return (yield from self.flush_file(victim.block_id.file_id))
        return (yield from self.flush_block(victim))

    def flush_all(self) -> Generator[Any, Any, int]:
        """Flush every dirty block (sync / unmount / checkpoint)."""
        written = 0
        while True:
            victim = self.oldest_dirty()
            if victim is None:
                break
            written += yield from self.flush_file(victim.block_id.file_id)
        return written

    def _writeback_blocks(self, file_id: int, blocks: list[CacheBlock]) -> Generator[Any, Any, int]:
        if self.writeback is None:
            raise CacheError("no writeback function registered with the cache")
        for block in blocks:
            block.busy = True
            block.pin()
        block_nos = sorted(block.block_id.block_no for block in blocks)
        try:
            yield from self.writeback(file_id, block_nos)
        finally:
            for block in blocks:
                block.unpin()
                block.busy = False
        for block in blocks:
            self.mark_clean(block)
        self.stats.writeback_calls += 1
        self.stats.blocks_written += len(blocks)
        self.notify_space_available()
        self.notify_block_ready()
        return len(blocks)

    def __repr__(self) -> str:
        return (
            f"BlockCache(blocks={self.num_blocks}, free={self.free_count}, "
            f"clean={self.clean_count}, dirty={self.dirty_count})"
        )
