"""The cut-and-paste thread scheduler.

The scheduler is the first core component of the framework (Section 2 of the
paper): it "implements threads, synchronization primitives and real or
virtual time".  Independent file-system activities — client requests, the
cache-flush daemon, the LFS cleaner, each simulated disk — run as separate
cooperative threads on top of it.

Threads are Python generators.  A thread's body ``yield``\\ s small command
objects back to the scheduler:

* :class:`Delay` — suspend for some amount of (virtual or real) time,
* :class:`WaitEvent` — block until an :class:`Event` is signalled,
* :class:`Reschedule` — give up the processor but stay runnable.

Nested calls simply use ``yield from``, so a deep call chain (client
interface -> file -> cache -> storage layout -> disk driver) suspends and
resumes as a single logical thread, exactly like the C++ threads in the
original system.

When the scheduler is configured with a :class:`~repro.core.clock.VirtualClock`
it is a discrete-event simulator: time jumps to the expiry of the earliest
delayed thread whenever nothing is runnable.  With a
:class:`~repro.core.clock.RealClock` the same code waits in real time, which
is how a PFS instantiation serves real clients.

As in the paper, the default scheduling policy picks a *random* runnable
thread; other policies are derived classes of :class:`SchedulingPolicy`.

Cluster replays shard this event loop by node.  Every thread carries the
``node`` it runs on; :class:`NodeMergeSchedulingPolicy` makes the
interleaving a deterministic pure function of the workload (lowest node
first, then arrival order), and :class:`ShardedScheduler` reproduces exactly
that schedule from per-node sub-queues — node-local events run from a
node-local deque/heap, cross-node wake-ups pass through a small transfer
queue, and the global merge is only performed when the clock must advance
past another node's earliest pending event (the conservative window).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import random
from abc import ABC, abstractmethod
from collections import deque
from hashlib import blake2b
from typing import Any, Callable, Dict, Generator, Iterable, Optional, Sequence

from repro.core.clock import Clock, VirtualClock
from repro.errors import DeadlockError, SchedulerError

__all__ = [
    "Delay",
    "DELAY_ZERO",
    "WaitEvent",
    "Reschedule",
    "RESCHEDULE",
    "Event",
    "Thread",
    "ThreadState",
    "SchedulingPolicy",
    "RandomSchedulingPolicy",
    "FifoSchedulingPolicy",
    "NodeMergeSchedulingPolicy",
    "Scheduler",
    "ShardedScheduler",
]


# ---------------------------------------------------------------------------
# Primitives yielded by thread bodies
# ---------------------------------------------------------------------------


class Delay:
    """Suspend the calling thread for ``seconds`` of scheduler time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError(f"cannot delay for a negative duration: {seconds}")
        self.seconds = float(seconds)

    def __repr__(self) -> str:
        return f"Delay({self.seconds!r})"


class WaitEvent:
    """Block the calling thread until ``event`` is signalled.

    The value passed to :meth:`Event.signal` becomes the result of the
    ``yield`` expression in the waiting thread.
    """

    __slots__ = ("event",)

    def __init__(self, event: "Event"):
        self.event = event

    def __repr__(self) -> str:
        return f"WaitEvent({self.event!r})"


class Reschedule:
    """Yield the processor voluntarily; the thread stays runnable."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Reschedule()"


#: interned command singletons.  Commands are immutable once constructed and
#: the scheduler never stores them, so the same object can be yielded by any
#: number of threads; replaying millions of trace operations then allocates
#: no command objects for reschedules and zero-length delays.  Events intern
#: their own :class:`WaitEvent` the same way (see :meth:`Event.wait`).
RESCHEDULE = Reschedule()
DELAY_ZERO = Delay(0.0)


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


class Event:
    """The scheduler's basic synchronisation primitive.

    Following the paper, "each thread can pick a unique event and block on
    it; once a thread has blocked itself, another thread signals the event
    through the scheduler to make the thread runnable again".

    To avoid lost wake-ups in a cooperative system, a signal delivered while
    no thread is waiting is remembered: the next :meth:`wait` consumes it and
    returns immediately.  Signalling with waiters present wakes *all* of
    them (broadcast), each receiving the signalled value.
    """

    _counter = itertools.count()

    __slots__ = ("name", "_scheduler", "_waiters", "_pending", "_pending_value", "_wait_command")

    def __init__(self, scheduler: Optional["Scheduler"] = None, name: str = ""):
        self.name = name or f"event-{next(Event._counter)}"
        self._scheduler = scheduler
        self._waiters: list[Thread] = []
        self._pending = False
        self._pending_value: Any = None
        #: interned WaitEvent command — immutable, so one object serves every
        #: wait on this event (no allocation per blocking wait).
        self._wait_command: Optional[WaitEvent] = None

    # -- introspection ------------------------------------------------------

    @property
    def is_signalled(self) -> bool:
        """True if a signal is pending (delivered with no waiters present)."""
        return self._pending

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    # -- signalling ----------------------------------------------------------

    def signal(self, value: Any = None) -> int:
        """Wake every waiting thread, delivering ``value``.

        Returns the number of threads woken.  If nobody is waiting the
        signal is latched for the next waiter.
        """
        if self._waiters:
            woken = 0
            waiters, self._waiters = self._waiters, []
            for thread in waiters:
                thread._wake(value)
                woken += 1
            return woken
        self._pending = True
        self._pending_value = value
        return 0

    def clear(self) -> None:
        """Drop any latched signal."""
        self._pending = False
        self._pending_value = None

    # -- waiting -------------------------------------------------------------

    def wait(self) -> Generator[Any, Any, Any]:
        """Generator helper: ``value = yield from event.wait()``."""
        if self._pending:
            self._pending = False
            value, self._pending_value = self._pending_value, None
            return value
        command = self._wait_command
        if command is None:
            command = self._wait_command = WaitEvent(self)
        value = yield command
        return value

    # -- scheduler hooks ------------------------------------------------------

    def _consume_pending(self) -> tuple[bool, Any]:
        if self._pending:
            self._pending = False
            value, self._pending_value = self._pending_value, None
            return True, value
        return False, None

    def _add_waiter(self, thread: "Thread") -> None:
        self._waiters.append(thread)

    def _remove_waiter(self, thread: "Thread") -> None:
        if thread in self._waiters:
            self._waiters.remove(thread)

    def __repr__(self) -> str:
        return f"Event({self.name!r}, waiters={len(self._waiters)}, pending={self._pending})"


# ---------------------------------------------------------------------------
# Threads
# ---------------------------------------------------------------------------


class ThreadState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    DELAYED = "delayed"
    BLOCKED = "blocked"
    FINISHED = "finished"
    FAILED = "failed"


class Thread:
    """A cooperative thread of control managed by the :class:`Scheduler`.

    Threads are created by :meth:`Scheduler.spawn`; user code never
    instantiates this class directly.  The ``daemon`` flag marks service
    threads (disk controllers, the cleaner, flush daemons) that are expected
    to be blocked forever when a run ends; they are excluded from deadlock
    accounting.  ``node`` is the cluster node the thread belongs to (0 for
    single-machine stacks); it routes the thread to its per-node sub-queue
    under a :class:`ShardedScheduler`.
    """

    _counter = itertools.count(1)

    __slots__ = (
        "scheduler",
        "name",
        "daemon",
        "node",
        "ident",
        "state",
        "alive",
        "result",
        "exception",
        "finished_at",
        "_generator",
        "_send_value",
        "_joiners",
        "_waiting_on",
        "_heap_entry",
        "_stamp",
    )

    def __init__(
        self,
        scheduler: "Scheduler",
        generator: Generator[Any, Any, Any],
        name: str,
        daemon: bool = False,
        node: int = 0,
    ):
        if node < 0:
            raise SchedulerError(f"thread {name!r} placed on a negative node: {node}")
        self.scheduler = scheduler
        self.name = name
        self.daemon = daemon
        self.node = node
        self.ident = next(Thread._counter)
        self.state = ThreadState.NEW
        #: kept as a plain attribute (not derived from ``state``) because the
        #: run loops test it once per step; flipped exactly once, on death.
        self.alive = True
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._generator = generator
        self._send_value: Any = None
        self._joiners: list[Thread] = []
        self._waiting_on: Optional[Event] = None
        #: reusable delayed-heap entry ([wake_time, seq, thread]); a thread
        #: has at most one entry in the heap at a time, so the list object is
        #: recycled across delays instead of allocated per sleep.
        self._heap_entry: Optional[list] = None
        #: global arrival stamp assigned each time the thread becomes
        #: runnable; the deterministic node-merge order is (node, _stamp).
        self._stamp = 0
        #: time at which the thread became runnable/finished, for accounting.
        self.finished_at: Optional[float] = None

    # -- queries --------------------------------------------------------------

    @property
    def failed(self) -> bool:
        return self.state is ThreadState.FAILED

    # -- cooperation -----------------------------------------------------------

    def join(self) -> Generator[Any, Any, Any]:
        """Generator helper: wait until this thread terminates.

        Returns the thread's result, or re-raises the exception that killed
        it.  Usable from other threads as ``result = yield from t.join()``.
        """
        if self.alive:
            current = self.scheduler.current_thread
            if current is None:
                raise SchedulerError("join() may only be used from inside a thread")
            if current is self:
                raise SchedulerError(f"thread {self.name!r} cannot join itself")
            self._joiners.append(current)
            current.state = ThreadState.BLOCKED
            yield WaitEvent(_JOIN_SENTINEL)
        if self.exception is not None:
            raise self.exception
        return self.result

    # -- scheduler internals ----------------------------------------------------

    def _wake(self, value: Any = None) -> None:
        """Move a blocked/delayed thread back to the runnable set."""
        if not self.alive:
            return
        self._send_value = value
        self._waiting_on = None
        self.scheduler._make_runnable(self)

    def __repr__(self) -> str:
        return f"Thread(#{self.ident} {self.name!r} {self.state.value} node={self.node})"


class _JoinSentinelEvent(Event):
    """Placeholder event for join(): the scheduler never registers waiters on
    it because the joining thread is woken directly by thread completion."""

    def _add_waiter(self, thread: "Thread") -> None:  # pragma: no cover - trivial
        # Joiners are woken explicitly via Thread._joiners; nothing to do.
        return


_JOIN_SENTINEL = _JoinSentinelEvent(name="join-sentinel")


# ---------------------------------------------------------------------------
# Scheduling policies
# ---------------------------------------------------------------------------


class SchedulingPolicy(ABC):
    """Chooses which runnable thread runs next.

    The base framework ships random scheduling (the paper's default) and a
    FIFO policy; real-time policies for continuous-media files would be
    further derived classes.
    """

    @abstractmethod
    def select(self, runnable: Sequence[Thread], rng: random.Random) -> int:
        """Return the index of the thread to run next."""


class RandomSchedulingPolicy(SchedulingPolicy):
    """Pick a random runnable thread (the paper's default policy)."""

    def select(self, runnable: Sequence[Thread], rng: random.Random) -> int:
        return rng.randrange(len(runnable))


class FifoSchedulingPolicy(SchedulingPolicy):
    """Run threads in the order they became runnable (deterministic)."""

    def select(self, runnable: Sequence[Thread], rng: random.Random) -> int:
        return 0


class NodeMergeSchedulingPolicy(SchedulingPolicy):
    """Deterministic cluster merge order: lowest node first, then arrival.

    At equal simulated time the runnable thread with the smallest
    ``(node, arrival stamp)`` pair runs first.  This is the tie-break rule of
    the sharded event loop (time is handled by the delayed heap; the stamp is
    the per-node sequence), expressed as an ordinary policy so a plain
    :class:`Scheduler` produces the *identical* schedule — the sequential
    reference that :class:`ShardedScheduler` and the parallel executor are
    pinned against.
    """

    def select(self, runnable: Sequence[Thread], rng: random.Random) -> int:
        best = 0
        thread = runnable[0]
        best_key = (thread.node, thread._stamp)
        for index in range(1, len(runnable)):
            thread = runnable[index]
            key = (thread.node, thread._stamp)
            if key < best_key:
                best_key = key
                best = index
        return best


# ---------------------------------------------------------------------------
# The scheduler proper
# ---------------------------------------------------------------------------


class Scheduler:
    """Cooperative thread scheduler with real or virtual time.

    Parameters
    ----------
    clock:
        Time source; defaults to a fresh :class:`VirtualClock` (simulator
        behaviour).  Pass a :class:`~repro.core.clock.RealClock` for an
        on-line instantiation.
    seed:
        Seed for the random scheduling policy, so simulations are
        reproducible run-to-run.
    policy:
        A :class:`SchedulingPolicy`; defaults to random scheduling.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        seed: int = 0,
        policy: Optional[SchedulingPolicy] = None,
    ):
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = random.Random(seed)
        self.policy = policy if policy is not None else RandomSchedulingPolicy()
        self._runnable: list[Thread] = []
        #: min-heap of [wake_time, seq, thread] entries (mutable lists so a
        #: thread's entry can be recycled across repeated delays).
        self._delayed: list[list] = []
        self._seq = itertools.count()
        #: arrival stamps for the deterministic node-merge order; one global
        #: monotone counter shared by every sub-queue.
        self._stamp_counter = itertools.count()
        self._threads: list[Thread] = []
        self._failures: list[Thread] = []
        self.current_thread: Optional[Thread] = None
        #: number of thread resumptions performed (context switches).
        self.context_switches = 0
        #: set by abort(): the run loops re-raise it instead of stepping on,
        #: so one thread can take the whole scheduler down (crash injection).
        self._abort: Optional[BaseException] = None
        #: per-node schedule hashers (None = recording off); see
        #: :meth:`enable_schedule_hash`.
        self._schedule_hash: Optional[Dict[int, Any]] = None

    # -- time -------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now()

    def sleep(self, seconds: float) -> Generator[Any, Any, None]:
        """Generator helper: ``yield from scheduler.sleep(t)``."""
        yield DELAY_ZERO if seconds == 0 else Delay(seconds)

    # -- thread management --------------------------------------------------------

    def spawn(
        self,
        target: Callable[..., Generator[Any, Any, Any]] | Generator[Any, Any, Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        node: Optional[int] = None,
        **kwargs: Any,
    ) -> Thread:
        """Create a new thread from a generator function (or generator).

        The thread becomes runnable immediately; it first runs when the
        scheduler next picks it.  ``node`` places the thread on a cluster
        node; by default a thread inherits the node of the thread that
        spawned it (so e.g. a flush daemon's helper threads stay on the
        daemon's node), and threads spawned from outside run on node 0.
        """
        if callable(target):
            generator = target(*args, **kwargs)
            default_name = getattr(target, "__name__", "thread")
        else:
            if args or kwargs:
                raise SchedulerError("arguments are only valid with a callable target")
            generator = target
            default_name = getattr(target, "__name__", "thread")
        if not isinstance(generator, Generator):
            raise SchedulerError(
                f"spawn() needs a generator function, got {type(generator).__name__}"
            )
        if node is None:
            current = self.current_thread
            node = current.node if current is not None else 0
        thread = Thread(self, generator, name or default_name, daemon=daemon, node=node)
        self._threads.append(thread)
        self._make_runnable(thread)
        return thread

    def new_event(self, name: str = "") -> Event:
        """Create an :class:`Event` bound to this scheduler."""
        return Event(self, name)

    def signal(self, event: Event, value: Any = None) -> int:
        """Signal ``event`` on behalf of code running outside any thread."""
        return event.signal(value)

    @property
    def threads(self) -> tuple[Thread, ...]:
        return tuple(self._threads)

    @property
    def failures(self) -> tuple[Thread, ...]:
        return tuple(self._failures)

    def abort(self, exc: BaseException) -> None:
        """Stop the whole scheduler: the current run loop re-raises ``exc``
        before its next step, regardless of which thread is affected.

        Used by crash injection (:mod:`repro.core.metadata.crash`) to model
        a machine dying — every thread stops mid-flight, not just the one
        that tripped the crash point.
        """
        self._abort = exc

    def _check_abort(self) -> None:
        if self._abort is not None:
            exc, self._abort = self._abort, None
            # The machine died: daemons (flush/WAL/cleaner service threads,
            # including lazily-spawned ones sitting in per-node sub-queues)
            # must not survive into the post-crash recovery run, or an armed
            # crash point can leave a sub-queue non-empty and hang the
            # recovery matrix.
            self.cancel_daemons()
            raise exc

    def cancel_daemons(self) -> int:
        """Terminate every live daemon thread without running it further.

        Models a crash taking the service threads down with the machine: the
        generators are abandoned mid-flight (no ``finally`` cleanup runs, as
        none would on a real power failure) and their queue entries are
        purged so no sub-queue retains work.  Returns the number cancelled.
        """
        now = self.clock.now()
        cancelled = 0
        for thread in self._threads:
            if thread.alive and thread.daemon:
                thread.alive = False
                thread.state = ThreadState.FINISHED
                thread.finished_at = now
                waiting = thread._waiting_on
                if waiting is not None:
                    waiting._remove_waiter(thread)
                    thread._waiting_on = None
                cancelled += 1
        if cancelled:
            self._purge_dead()
        return cancelled

    def _purge_dead(self) -> None:
        """Drop dead threads from the runnable/delayed structures."""
        self._runnable[:] = [t for t in self._runnable if t.alive]
        live = [entry for entry in self._delayed if entry[2].alive]
        if len(live) != len(self._delayed):
            self._delayed[:] = live
            heapq.heapify(self._delayed)

    # -- schedule recording ----------------------------------------------------

    def enable_schedule_hash(self) -> None:
        """Record a per-node hash of the executed schedule.

        Every step folds ``(time, thread name)`` into the hasher of the
        stepped thread's node.  Per-node streams (rather than one global
        stream) are what make the digests comparable across the sequential,
        sharded and parallel executors: a worker process reproduces exactly
        its own node's stream.
        """
        if self._schedule_hash is None:
            self._schedule_hash = {}

    @property
    def schedule_hash_enabled(self) -> bool:
        return self._schedule_hash is not None

    def schedule_digests(self) -> Dict[int, str]:
        """Hex digests of the per-node schedule streams recorded so far."""
        if self._schedule_hash is None:
            return {}
        return {node: h.hexdigest() for node, h in sorted(self._schedule_hash.items())}

    def _record_step(self, thread: Thread) -> None:
        hashers = self._schedule_hash
        node = thread.node
        h = hashers.get(node)
        if h is None:
            h = hashers[node] = blake2b(digest_size=16)
        h.update(b"%r %s\n" % (self.clock.now(), thread.name.encode()))

    # -- the run loop ---------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
        raise_failures: bool = True,
        inclusive: bool = False,
    ) -> float:
        """Run threads until nothing remains runnable or delayed.

        ``until`` bounds (virtual or real) time: the scheduler stops once the
        clock would pass it.  By default threads scheduled at exactly
        ``until`` are released but not executed; ``inclusive`` also executes
        everything due at that instant (the parallel executor's end
        protocol needs both edges).  Returns the clock value when the run
        stopped.
        """
        runnable = self._runnable
        delayed = self._delayed
        clock = self.clock
        step = self._step
        steps = 0
        while True:
            if self._abort is not None:
                self._check_abort()
            if max_steps is not None and steps >= max_steps:
                break
            if until is not None:
                now = clock.now()
                if now > until or not inclusive and now >= until:
                    break
            if runnable:
                step()
                steps += 1
                continue
            if delayed:
                wake_time = delayed[0][0]
                if until is not None and wake_time > until:
                    clock.advance_to(until)
                    break
                clock.advance_to(wake_time)
                self._release_expired(wake_time)
                continue
            break
        if raise_failures:
            self._raise_pending_failure()
        return clock.now()

    def run_until_complete(self, thread: Thread, raise_failures: bool = True) -> Any:
        """Drive the scheduler until ``thread`` terminates; return its result.

        Raises :class:`DeadlockError` if the thread can never complete
        because nothing is runnable or delayed.
        """
        runnable = self._runnable
        delayed = self._delayed
        clock = self.clock
        step = self._step
        while thread.alive:
            if self._abort is not None:
                self._check_abort()
            if runnable:
                step()
            elif delayed:
                wake_time = delayed[0][0]
                clock.advance_to(wake_time)
                self._release_expired(wake_time)
            else:
                self._raise_deadlock(thread)
        return self._finish_run(thread, raise_failures)

    def _raise_deadlock(self, thread: Thread) -> None:
        blocked = [t.name for t in self._threads if t.alive and not t.daemon]
        raise DeadlockError(
            f"thread {thread.name!r} cannot complete: no runnable or delayed "
            f"threads remain (blocked non-daemon threads: {blocked})"
        )

    def _finish_run(self, thread: Thread, raise_failures: bool) -> Any:
        if thread in self._failures:
            self._failures.remove(thread)
        if thread.exception is not None:
            if self._abort is thread.exception:
                self._abort = None
            raise thread.exception
        if raise_failures:
            self._raise_pending_failure()
        return thread.result

    def run_all(self, threads: Iterable[Thread]) -> list[Any]:
        """Run until every thread in ``threads`` has terminated."""
        results = []
        for thread in threads:
            results.append(self.run_until_complete(thread))
        return results

    # -- internals ---------------------------------------------------------------------

    def _make_runnable(self, thread: Thread) -> None:
        thread.state = ThreadState.RUNNABLE
        thread._stamp = next(self._stamp_counter)
        self._runnable.append(thread)

    def _release_expired(self, now: Optional[float] = None) -> None:
        delayed = self._delayed
        if not delayed:
            return
        if now is None:
            now = self.clock.now()
        pop = heapq.heappop
        delayed_state = ThreadState.DELAYED
        while delayed and delayed[0][0] <= now:
            thread = pop(delayed)[2]
            if thread.alive and thread.state is delayed_state:
                thread._send_value = None
                self._make_runnable(thread)

    def _step(self) -> None:
        runnable = self._runnable
        if len(runnable) == 1:
            # Fast path shared by every policy: with a single runnable thread
            # there is nothing to choose, so skip the policy dispatch (and,
            # for the random policy, the RNG draw).  Replay workloads spend
            # most steps here — one client thread running between I/Os.
            thread = runnable.pop()
        else:
            index = self.policy.select(runnable, self.rng)
            thread = runnable.pop(index)
        if not thread.alive:
            return
        self._execute(thread)

    def _execute(self, thread: Thread) -> None:
        """Resume ``thread`` once and dispatch whatever it yields."""
        if self._schedule_hash is not None:
            self._record_step(thread)
        self.current_thread = thread
        thread.state = ThreadState.RUNNING
        self.context_switches += 1
        send_value, thread._send_value = thread._send_value, None
        try:
            command = thread._generator.send(send_value)
        except StopIteration as stop:
            self._finish(thread, result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - thread bodies may raise anything
            self._finish(thread, exception=exc)
            return
        finally:
            self.current_thread = None
        self._dispatch(thread, command)

    def _dispatch(self, thread: Thread, command: Any) -> None:
        # Exact-type tests: the command classes are final in practice (the
        # interned singletons cover the hottest yields) and this dispatch
        # runs once per context switch.
        cls = command.__class__
        if cls is Delay:
            thread.state = ThreadState.DELAYED
            entry = thread._heap_entry
            if entry is None:
                thread._heap_entry = entry = [0.0, 0, thread]
            # The entry is guaranteed out of the heap here (a DELAYED thread
            # cannot yield another Delay before _release_expired pops it),
            # so mutate and re-push instead of allocating a fresh tuple.
            entry[0] = self.clock.now() + command.seconds
            entry[1] = next(self._seq)
            self._push_delayed(thread, entry)
        elif cls is WaitEvent:
            consumed, value = command.event._consume_pending()
            if consumed:
                thread._send_value = value
                self._make_runnable(thread)
            else:
                thread.state = ThreadState.BLOCKED
                thread._waiting_on = command.event
                command.event._add_waiter(thread)
        elif cls is Reschedule or command is None:
            self._make_runnable(thread)
        elif isinstance(command, (Delay, WaitEvent, Reschedule)):
            # A subclassed command: route through the exact-type branches.
            if isinstance(command, Delay):
                self._dispatch(thread, Delay(command.seconds))
            elif isinstance(command, WaitEvent):
                self._dispatch(thread, WaitEvent(command.event))
            else:
                self._make_runnable(thread)
        else:
            error = SchedulerError(
                f"thread {thread.name!r} yielded an unknown command: {command!r}"
            )
            self._finish(thread, exception=error)

    def _push_delayed(self, thread: Thread, entry: list) -> None:
        heapq.heappush(self._delayed, entry)

    def _finish(
        self,
        thread: Thread,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        thread.result = result
        thread.exception = exception
        thread.state = ThreadState.FAILED if exception is not None else ThreadState.FINISHED
        thread.alive = False
        thread.finished_at = self.clock.now()
        joiners, thread._joiners = thread._joiners, []
        if exception is not None and not joiners:
            # Nobody is waiting to observe the failure; remember it so run()
            # can surface it instead of silently dropping the error.
            self._failures.append(thread)
        for joiner in joiners:
            joiner._wake(thread.result)

    def _raise_pending_failure(self) -> None:
        if not self._failures:
            return
        thread = self._failures.pop(0)
        raise SchedulerError(
            f"thread {thread.name!r} died with an unhandled exception"
        ) from thread.exception


# ---------------------------------------------------------------------------
# The sharded event loop
# ---------------------------------------------------------------------------


class ShardedScheduler(Scheduler):
    """Per-node sub-queues with a deterministic cross-node merge.

    The global runnable list and delayed heap of :class:`Scheduler` are
    split by cluster node: each node owns a FIFO deque of runnable threads
    and a min-heap of delayed ones.  Because arrival stamps are drawn from
    one global counter and each deque is FIFO, the head of the lowest-index
    non-empty deque *is* the global ``(node, stamp)`` minimum — so stepping
    sub-queues in node order reproduces, step for step, the schedule of a
    plain scheduler under :class:`NodeMergeSchedulingPolicy` without the
    O(runnable) policy scan.

    Cross-node wake-ups (a thread on node *i* signalling a thread on node
    *j*) pass through a small transfer queue that is folded into the
    destination deques at the start of the next step; since no release or
    external wake can interleave before that step, stamp order within every
    deque is preserved.

    Clock advances use the conservative-window rule of parallel discrete
    event simulation: when the earliest delayed wake-up belongs to node *k*
    and is *strictly earlier* than every other node's earliest wake-up, only
    node *k*'s heap is consulted (a node-local window); the full cross-node
    merge runs only when two nodes' windows touch.  In-process the window
    closes at the other nodes' earliest event because shared-memory
    interactions have zero lookahead; across worker processes the NIC
    delivery latency widens it (see :mod:`repro.core.parallel`).
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        seed: int = 0,
        policy: Optional[SchedulingPolicy] = None,
        nodes: int = 1,
    ):
        super().__init__(
            clock,
            seed,
            policy if policy is not None else NodeMergeSchedulingPolicy(),
        )
        self.nodes = max(int(nodes), 1)
        self._run_q: list[deque[Thread]] = [deque() for _ in range(self.nodes)]
        self._delay_q: list[list[list]] = [[] for _ in range(self.nodes)]
        self._cross: deque[Thread] = deque()
        self._runnable_count = 0
        self._min_node = self.nodes
        #: statistics: how often the loop crossed a node boundary vs stayed
        #: inside one node's conservative window.
        self.cross_node_wakes = 0
        self.window_batches = 0
        self.window_releases = 0

    # -- sub-queue bookkeeping -------------------------------------------------

    def _make_runnable(self, thread: Thread) -> None:
        thread.state = ThreadState.RUNNABLE
        thread._stamp = next(self._stamp_counter)
        self._runnable_count += 1
        node = thread.node
        current = self.current_thread
        if current is not None and current.node != node:
            # A cross-node wake-up: park it on the transfer queue; it is
            # folded into the destination deque at the next step, before any
            # other wake source can run, so deque stamp order is preserved.
            self._cross.append(thread)
            self.cross_node_wakes += 1
        else:
            if self._cross:
                # A direct append (spawn, release, same-node wake) while
                # cross-parked wake-ups are pending: fold them first — they
                # carry older stamps and must precede this thread in its
                # deque.  Happens when a run loop returns with parked wakes
                # (e.g. the awaited thread finished mid-instant) and the
                # caller then spawns or releases before stepping again.
                self._drain_cross()
            self._run_q[node].append(thread)
            if node < self._min_node:
                self._min_node = node

    def _drain_cross(self) -> None:
        cross = self._cross
        run_q = self._run_q
        min_node = self._min_node
        while cross:
            thread = cross.popleft()
            node = thread.node
            run_q[node].append(thread)
            if node < min_node:
                min_node = node
        self._min_node = min_node

    def _step(self) -> None:
        if self._cross:
            self._drain_cross()
        node = self._min_node
        run_q = self._run_q
        q = run_q[node]
        thread = q.popleft()
        self._runnable_count -= 1
        if not q:
            # Advance to the next non-empty deque *before* running the
            # thread: wake-ups during the step re-lower _min_node as needed.
            nodes = self.nodes
            node += 1
            while node < nodes and not run_q[node]:
                node += 1
            self._min_node = node
        if not thread.alive:
            return
        self._execute(thread)

    def _push_delayed(self, thread: Thread, entry: list) -> None:
        heapq.heappush(self._delay_q[thread.node], entry)

    def _release_expired(self, now: Optional[float] = None) -> None:
        """Release every delayed thread due at or before the current time,
        merging the per-node heaps in global (time, seq) order."""
        if now is None:
            now = self.clock.now()
        heaps = self._delay_q
        delayed_state = ThreadState.DELAYED
        while True:
            best = None
            best_node = -1
            for node, heap in enumerate(heaps):
                if heap:
                    head = heap[0]
                    if head[0] <= now and (best is None or head < best):
                        best = head
                        best_node = node
            if best is None:
                return
            heapq.heappop(heaps[best_node])
            thread = best[2]
            if thread.alive and thread.state is delayed_state:
                thread._send_value = None
                self._make_runnable(thread)

    def _release_node(self, node: int, now: Optional[float] = None) -> None:
        """Node-local window release: pop due entries from one heap only."""
        heap = self._delay_q[node]
        if now is None:
            now = self.clock.now()
        pop = heapq.heappop
        delayed_state = ThreadState.DELAYED
        released = 0
        while heap and heap[0][0] <= now:
            thread = pop(heap)[2]
            released += 1
            if thread.alive and thread.state is delayed_state:
                thread._send_value = None
                self._make_runnable(thread)
        self.window_releases += released

    def _earliest_delayed(self) -> tuple[int, float, float]:
        """(node, wake time, next other node's wake time) of the earliest
        delayed thread; node is -1 when nothing is delayed."""
        best_node = -1
        best = 0.0
        other = float("inf")
        for node, heap in enumerate(self._delay_q):
            if heap:
                t = heap[0][0]
                if best_node < 0 or t < best:
                    if best_node >= 0 and best < other:
                        other = best
                    best = t
                    best_node = node
                elif t < other:
                    other = t
        return best_node, best, other

    def _advance_clock(self) -> bool:
        """Advance time to the earliest delayed wake-up and release it.

        Uses the node-local window when the earliest wake-up is strictly
        before every other node's: only that node's heap is touched.
        Returns False when nothing is delayed.
        """
        node, wake, other = self._earliest_delayed()
        if node < 0:
            return False
        self.clock.advance_to(wake)
        if wake < other:
            self.window_batches += 1
            self._release_node(node, wake)
        else:
            self._release_expired(wake)
        return True

    # -- run loops --------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
        raise_failures: bool = True,
        inclusive: bool = False,
    ) -> float:
        clock = self.clock
        step = self._step
        heaps = self._delay_q
        infinity = float("inf")
        steps = 0
        while True:
            if self._abort is not None:
                self._check_abort()
            if max_steps is not None and steps >= max_steps:
                break
            if until is not None:
                now = clock.now()
                if now > until or not inclusive and now >= until:
                    break
            if self._runnable_count:
                step()
                steps += 1
                continue
            # Inlined _earliest_delayed: scan the per-node heap heads for the
            # earliest wake-up and the next other node's earliest.
            best_node = -1
            wake = 0.0
            other = infinity
            for node, heap in enumerate(heaps):
                if heap:
                    t = heap[0][0]
                    if best_node < 0 or t < wake:
                        if best_node >= 0 and wake < other:
                            other = wake
                        wake = t
                        best_node = node
                    elif t < other:
                        other = t
            if best_node < 0:
                break
            if until is not None and wake > until:
                clock.advance_to(until)
                break
            clock.advance_to(wake)
            if wake < other:
                self.window_batches += 1
                self._release_node(best_node, wake)
            else:
                self._release_expired(wake)
        if raise_failures:
            self._raise_pending_failure()
        return clock.now()

    def run_until_complete(self, thread: Thread, raise_failures: bool = True) -> Any:
        step = self._step
        heaps = self._delay_q
        advance_to = self.clock.advance_to
        infinity = float("inf")
        while thread.alive:
            if self._abort is not None:
                self._check_abort()
            if self._runnable_count:
                step()
                continue
            # Inlined _advance_clock: find the earliest delayed wake-up and
            # release within the node-local window when it is strictly
            # earlier than every other node's.
            best_node = -1
            wake = 0.0
            other = infinity
            for node, heap in enumerate(heaps):
                if heap:
                    t = heap[0][0]
                    if best_node < 0 or t < wake:
                        if best_node >= 0 and wake < other:
                            other = wake
                        wake = t
                        best_node = node
                    elif t < other:
                        other = t
            if best_node < 0:
                self._raise_deadlock(thread)
            advance_to(wake)
            if wake < other:
                self.window_batches += 1
                self._release_node(best_node, wake)
            else:
                self._release_expired(wake)
        return self._finish_run(thread, raise_failures)

    # -- crash cleanup -----------------------------------------------------------

    def _purge_dead(self) -> None:
        count = 0
        min_node = self.nodes
        for node, q in enumerate(self._run_q):
            if q:
                live = [t for t in q if t.alive]
                q.clear()
                q.extend(live)
                if live and node < min_node:
                    min_node = node
                count += len(live)
        live_cross = [t for t in self._cross if t.alive]
        self._cross.clear()
        self._cross.extend(live_cross)
        count += len(live_cross)
        self._runnable_count = count
        self._min_node = min_node
        for heap in self._delay_q:
            live_entries = [entry for entry in heap if entry[2].alive]
            if len(live_entries) != len(heap):
                heap[:] = live_entries
                heapq.heapify(heap)

    # -- introspection ------------------------------------------------------------

    def queue_snapshot(self) -> Dict[str, Any]:
        """Per-node queue depths, for the cluster statistics report."""
        return {
            "runnable": [len(q) for q in self._run_q],
            "delayed": [len(h) for h in self._delay_q],
            "cross_queue": len(self._cross),
            "cross_node_wakes": self.cross_node_wakes,
            "window_batches": self.window_batches,
            "window_releases": self.window_releases,
        }
