"""The cut-and-paste thread scheduler.

The scheduler is the first core component of the framework (Section 2 of the
paper): it "implements threads, synchronization primitives and real or
virtual time".  Independent file-system activities — client requests, the
cache-flush daemon, the LFS cleaner, each simulated disk — run as separate
cooperative threads on top of it.

Threads are Python generators.  A thread's body ``yield``\\ s small command
objects back to the scheduler:

* :class:`Delay` — suspend for some amount of (virtual or real) time,
* :class:`WaitEvent` — block until an :class:`Event` is signalled,
* :class:`Reschedule` — give up the processor but stay runnable.

Nested calls simply use ``yield from``, so a deep call chain (client
interface -> file -> cache -> storage layout -> disk driver) suspends and
resumes as a single logical thread, exactly like the C++ threads in the
original system.

When the scheduler is configured with a :class:`~repro.core.clock.VirtualClock`
it is a discrete-event simulator: time jumps to the expiry of the earliest
delayed thread whenever nothing is runnable.  With a
:class:`~repro.core.clock.RealClock` the same code waits in real time, which
is how a PFS instantiation serves real clients.

As in the paper, the default scheduling policy picks a *random* runnable
thread; other policies are derived classes of :class:`SchedulingPolicy`.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import random
from abc import ABC, abstractmethod
from typing import Any, Callable, Generator, Iterable, Optional, Sequence

from repro.core.clock import Clock, VirtualClock
from repro.errors import DeadlockError, SchedulerError

__all__ = [
    "Delay",
    "DELAY_ZERO",
    "WaitEvent",
    "Reschedule",
    "RESCHEDULE",
    "Event",
    "Thread",
    "ThreadState",
    "SchedulingPolicy",
    "RandomSchedulingPolicy",
    "FifoSchedulingPolicy",
    "Scheduler",
]


# ---------------------------------------------------------------------------
# Primitives yielded by thread bodies
# ---------------------------------------------------------------------------


class Delay:
    """Suspend the calling thread for ``seconds`` of scheduler time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError(f"cannot delay for a negative duration: {seconds}")
        self.seconds = float(seconds)

    def __repr__(self) -> str:
        return f"Delay({self.seconds!r})"


class WaitEvent:
    """Block the calling thread until ``event`` is signalled.

    The value passed to :meth:`Event.signal` becomes the result of the
    ``yield`` expression in the waiting thread.
    """

    __slots__ = ("event",)

    def __init__(self, event: "Event"):
        self.event = event

    def __repr__(self) -> str:
        return f"WaitEvent({self.event!r})"


class Reschedule:
    """Yield the processor voluntarily; the thread stays runnable."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Reschedule()"


#: interned command singletons.  Commands are immutable once constructed and
#: the scheduler never stores them, so the same object can be yielded by any
#: number of threads; replaying millions of trace operations then allocates
#: no command objects for reschedules and zero-length delays.
RESCHEDULE = Reschedule()
DELAY_ZERO = Delay(0.0)


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


class Event:
    """The scheduler's basic synchronisation primitive.

    Following the paper, "each thread can pick a unique event and block on
    it; once a thread has blocked itself, another thread signals the event
    through the scheduler to make the thread runnable again".

    To avoid lost wake-ups in a cooperative system, a signal delivered while
    no thread is waiting is remembered: the next :meth:`wait` consumes it and
    returns immediately.  Signalling with waiters present wakes *all* of
    them (broadcast), each receiving the signalled value.
    """

    _counter = itertools.count()

    __slots__ = ("name", "_scheduler", "_waiters", "_pending", "_pending_value")

    def __init__(self, scheduler: Optional["Scheduler"] = None, name: str = ""):
        self.name = name or f"event-{next(Event._counter)}"
        self._scheduler = scheduler
        self._waiters: list[Thread] = []
        self._pending = False
        self._pending_value: Any = None

    # -- introspection ------------------------------------------------------

    @property
    def is_signalled(self) -> bool:
        """True if a signal is pending (delivered with no waiters present)."""
        return self._pending

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    # -- signalling ----------------------------------------------------------

    def signal(self, value: Any = None) -> int:
        """Wake every waiting thread, delivering ``value``.

        Returns the number of threads woken.  If nobody is waiting the
        signal is latched for the next waiter.
        """
        if self._waiters:
            woken = 0
            waiters, self._waiters = self._waiters, []
            for thread in waiters:
                thread._wake(value)
                woken += 1
            return woken
        self._pending = True
        self._pending_value = value
        return 0

    def clear(self) -> None:
        """Drop any latched signal."""
        self._pending = False
        self._pending_value = None

    # -- waiting -------------------------------------------------------------

    def wait(self) -> Generator[Any, Any, Any]:
        """Generator helper: ``value = yield from event.wait()``."""
        if self._pending:
            self._pending = False
            value, self._pending_value = self._pending_value, None
            return value
        value = yield WaitEvent(self)
        return value

    # -- scheduler hooks ------------------------------------------------------

    def _consume_pending(self) -> tuple[bool, Any]:
        if self._pending:
            self._pending = False
            value, self._pending_value = self._pending_value, None
            return True, value
        return False, None

    def _add_waiter(self, thread: "Thread") -> None:
        self._waiters.append(thread)

    def _remove_waiter(self, thread: "Thread") -> None:
        if thread in self._waiters:
            self._waiters.remove(thread)

    def __repr__(self) -> str:
        return f"Event({self.name!r}, waiters={len(self._waiters)}, pending={self._pending})"


# ---------------------------------------------------------------------------
# Threads
# ---------------------------------------------------------------------------


class ThreadState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    DELAYED = "delayed"
    BLOCKED = "blocked"
    FINISHED = "finished"
    FAILED = "failed"


class Thread:
    """A cooperative thread of control managed by the :class:`Scheduler`.

    Threads are created by :meth:`Scheduler.spawn`; user code never
    instantiates this class directly.  The ``daemon`` flag marks service
    threads (disk controllers, the cleaner, flush daemons) that are expected
    to be blocked forever when a run ends; they are excluded from deadlock
    accounting.
    """

    _counter = itertools.count(1)

    def __init__(
        self,
        scheduler: "Scheduler",
        generator: Generator[Any, Any, Any],
        name: str,
        daemon: bool = False,
    ):
        self.scheduler = scheduler
        self.name = name
        self.daemon = daemon
        self.ident = next(Thread._counter)
        self.state = ThreadState.NEW
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._generator = generator
        self._send_value: Any = None
        self._joiners: list[Thread] = []
        self._waiting_on: Optional[Event] = None
        #: reusable delayed-heap entry ([wake_time, seq, thread]); a thread
        #: has at most one entry in the heap at a time, so the list object is
        #: recycled across delays instead of allocated per sleep.
        self._heap_entry: Optional[list] = None
        #: time at which the thread became runnable/finished, for accounting.
        self.finished_at: Optional[float] = None

    # -- queries --------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state not in (ThreadState.FINISHED, ThreadState.FAILED)

    @property
    def failed(self) -> bool:
        return self.state is ThreadState.FAILED

    # -- cooperation -----------------------------------------------------------

    def join(self) -> Generator[Any, Any, Any]:
        """Generator helper: wait until this thread terminates.

        Returns the thread's result, or re-raises the exception that killed
        it.  Usable from other threads as ``result = yield from t.join()``.
        """
        if self.alive:
            current = self.scheduler.current_thread
            if current is None:
                raise SchedulerError("join() may only be used from inside a thread")
            if current is self:
                raise SchedulerError(f"thread {self.name!r} cannot join itself")
            self._joiners.append(current)
            current.state = ThreadState.BLOCKED
            yield WaitEvent(_JOIN_SENTINEL)
        if self.exception is not None:
            raise self.exception
        return self.result

    # -- scheduler internals ----------------------------------------------------

    def _wake(self, value: Any = None) -> None:
        """Move a blocked/delayed thread back to the runnable set."""
        if not self.alive:
            return
        self._send_value = value
        self._waiting_on = None
        self.scheduler._make_runnable(self)

    def __repr__(self) -> str:
        return f"Thread(#{self.ident} {self.name!r} {self.state.value})"


class _JoinSentinelEvent(Event):
    """Placeholder event for join(): the scheduler never registers waiters on
    it because the joining thread is woken directly by thread completion."""

    def _add_waiter(self, thread: "Thread") -> None:  # pragma: no cover - trivial
        # Joiners are woken explicitly via Thread._joiners; nothing to do.
        return


_JOIN_SENTINEL = _JoinSentinelEvent(name="join-sentinel")


# ---------------------------------------------------------------------------
# Scheduling policies
# ---------------------------------------------------------------------------


class SchedulingPolicy(ABC):
    """Chooses which runnable thread runs next.

    The base framework ships random scheduling (the paper's default) and a
    FIFO policy; real-time policies for continuous-media files would be
    further derived classes.
    """

    @abstractmethod
    def select(self, runnable: Sequence[Thread], rng: random.Random) -> int:
        """Return the index of the thread to run next."""


class RandomSchedulingPolicy(SchedulingPolicy):
    """Pick a random runnable thread (the paper's default policy)."""

    def select(self, runnable: Sequence[Thread], rng: random.Random) -> int:
        return rng.randrange(len(runnable))


class FifoSchedulingPolicy(SchedulingPolicy):
    """Run threads in the order they became runnable (deterministic)."""

    def select(self, runnable: Sequence[Thread], rng: random.Random) -> int:
        return 0


# ---------------------------------------------------------------------------
# The scheduler proper
# ---------------------------------------------------------------------------


class Scheduler:
    """Cooperative thread scheduler with real or virtual time.

    Parameters
    ----------
    clock:
        Time source; defaults to a fresh :class:`VirtualClock` (simulator
        behaviour).  Pass a :class:`~repro.core.clock.RealClock` for an
        on-line instantiation.
    seed:
        Seed for the random scheduling policy, so simulations are
        reproducible run-to-run.
    policy:
        A :class:`SchedulingPolicy`; defaults to random scheduling.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        seed: int = 0,
        policy: Optional[SchedulingPolicy] = None,
    ):
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = random.Random(seed)
        self.policy = policy if policy is not None else RandomSchedulingPolicy()
        self._runnable: list[Thread] = []
        #: min-heap of [wake_time, seq, thread] entries (mutable lists so a
        #: thread's entry can be recycled across repeated delays).
        self._delayed: list[list] = []
        self._seq = itertools.count()
        self._threads: list[Thread] = []
        self._failures: list[Thread] = []
        self.current_thread: Optional[Thread] = None
        #: number of thread resumptions performed (context switches).
        self.context_switches = 0
        #: set by abort(): the run loops re-raise it instead of stepping on,
        #: so one thread can take the whole scheduler down (crash injection).
        self._abort: Optional[BaseException] = None

    # -- time -------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now()

    def sleep(self, seconds: float) -> Generator[Any, Any, None]:
        """Generator helper: ``yield from scheduler.sleep(t)``."""
        yield DELAY_ZERO if seconds == 0 else Delay(seconds)

    # -- thread management --------------------------------------------------------

    def spawn(
        self,
        target: Callable[..., Generator[Any, Any, Any]] | Generator[Any, Any, Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> Thread:
        """Create a new thread from a generator function (or generator).

        The thread becomes runnable immediately; it first runs when the
        scheduler next picks it.
        """
        if callable(target):
            generator = target(*args, **kwargs)
            default_name = getattr(target, "__name__", "thread")
        else:
            if args or kwargs:
                raise SchedulerError("arguments are only valid with a callable target")
            generator = target
            default_name = getattr(target, "__name__", "thread")
        if not isinstance(generator, Generator):
            raise SchedulerError(
                f"spawn() needs a generator function, got {type(generator).__name__}"
            )
        thread = Thread(self, generator, name or default_name, daemon=daemon)
        self._threads.append(thread)
        self._make_runnable(thread)
        return thread

    def new_event(self, name: str = "") -> Event:
        """Create an :class:`Event` bound to this scheduler."""
        return Event(self, name)

    def signal(self, event: Event, value: Any = None) -> int:
        """Signal ``event`` on behalf of code running outside any thread."""
        return event.signal(value)

    @property
    def threads(self) -> tuple[Thread, ...]:
        return tuple(self._threads)

    @property
    def failures(self) -> tuple[Thread, ...]:
        return tuple(self._failures)

    def abort(self, exc: BaseException) -> None:
        """Stop the whole scheduler: the current run loop re-raises ``exc``
        before its next step, regardless of which thread is affected.

        Used by crash injection (:mod:`repro.core.metadata.crash`) to model
        a machine dying — every thread stops mid-flight, not just the one
        that tripped the crash point.
        """
        self._abort = exc

    def _check_abort(self) -> None:
        if self._abort is not None:
            exc, self._abort = self._abort, None
            raise exc

    # -- the run loop ---------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
        raise_failures: bool = True,
    ) -> float:
        """Run threads until nothing remains runnable or delayed.

        ``until`` bounds (virtual or real) time: the scheduler stops once the
        clock would pass it.  Returns the clock value when the run stopped.
        """
        steps = 0
        while True:
            self._check_abort()
            if max_steps is not None and steps >= max_steps:
                break
            if until is not None and self.now >= until:
                break
            if self._runnable:
                self._step()
                steps += 1
                continue
            if self._delayed:
                wake_time = self._delayed[0][0]
                if until is not None and wake_time > until:
                    self.clock.advance_to(until)
                    break
                self.clock.advance_to(wake_time)
                self._release_expired()
                continue
            break
        if raise_failures:
            self._raise_pending_failure()
        return self.now

    def run_until_complete(self, thread: Thread, raise_failures: bool = True) -> Any:
        """Drive the scheduler until ``thread`` terminates; return its result.

        Raises :class:`DeadlockError` if the thread can never complete
        because nothing is runnable or delayed.
        """
        while thread.alive:
            self._check_abort()
            if self._runnable:
                self._step()
            elif self._delayed:
                self.clock.advance_to(self._delayed[0][0])
                self._release_expired()
            else:
                blocked = [t.name for t in self._threads if t.alive and not t.daemon]
                raise DeadlockError(
                    f"thread {thread.name!r} cannot complete: no runnable or delayed "
                    f"threads remain (blocked non-daemon threads: {blocked})"
                )
        if thread in self._failures:
            self._failures.remove(thread)
        if thread.exception is not None:
            if self._abort is thread.exception:
                self._abort = None
            raise thread.exception
        if raise_failures:
            self._raise_pending_failure()
        return thread.result

    def run_all(self, threads: Iterable[Thread]) -> list[Any]:
        """Run until every thread in ``threads`` has terminated."""
        results = []
        for thread in threads:
            results.append(self.run_until_complete(thread))
        return results

    # -- internals ---------------------------------------------------------------------

    def _make_runnable(self, thread: Thread) -> None:
        thread.state = ThreadState.RUNNABLE
        self._runnable.append(thread)

    def _release_expired(self) -> None:
        now = self.now
        while self._delayed and self._delayed[0][0] <= now:
            _, _, thread = heapq.heappop(self._delayed)
            if thread.alive and thread.state is ThreadState.DELAYED:
                thread._send_value = None
                self._make_runnable(thread)

    def _step(self) -> None:
        runnable = self._runnable
        if len(runnable) == 1:
            # Fast path shared by every policy: with a single runnable thread
            # there is nothing to choose, so skip the policy dispatch (and,
            # for the random policy, the RNG draw).  Replay workloads spend
            # most steps here — one client thread running between I/Os.
            thread = runnable.pop()
        else:
            index = self.policy.select(runnable, self.rng)
            thread = runnable.pop(index)
        if not thread.alive:
            return
        self.current_thread = thread
        thread.state = ThreadState.RUNNING
        self.context_switches += 1
        send_value, thread._send_value = thread._send_value, None
        try:
            command = thread._generator.send(send_value)
        except StopIteration as stop:
            self._finish(thread, result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - thread bodies may raise anything
            self._finish(thread, exception=exc)
            return
        finally:
            self.current_thread = None
        self._dispatch(thread, command)

    def _dispatch(self, thread: Thread, command: Any) -> None:
        if isinstance(command, Delay):
            thread.state = ThreadState.DELAYED
            entry = thread._heap_entry
            if entry is None:
                thread._heap_entry = entry = [0.0, 0, thread]
            # The entry is guaranteed out of the heap here (a DELAYED thread
            # cannot yield another Delay before _release_expired pops it),
            # so mutate and re-push instead of allocating a fresh tuple.
            entry[0] = self.now + command.seconds
            entry[1] = next(self._seq)
            heapq.heappush(self._delayed, entry)
        elif isinstance(command, WaitEvent):
            consumed, value = command.event._consume_pending()
            if consumed:
                thread._send_value = value
                self._make_runnable(thread)
            else:
                thread.state = ThreadState.BLOCKED
                thread._waiting_on = command.event
                command.event._add_waiter(thread)
        elif isinstance(command, Reschedule) or command is None:
            self._make_runnable(thread)
        else:
            error = SchedulerError(
                f"thread {thread.name!r} yielded an unknown command: {command!r}"
            )
            self._finish(thread, exception=error)

    def _finish(
        self,
        thread: Thread,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        thread.result = result
        thread.exception = exception
        thread.state = ThreadState.FAILED if exception is not None else ThreadState.FINISHED
        thread.finished_at = self.now
        joiners, thread._joiners = thread._joiners, []
        if exception is not None and not joiners:
            # Nobody is waiting to observe the failure; remember it so run()
            # can surface it instead of silently dropping the error.
            self._failures.append(thread)
        for joiner in joiners:
            joiner._wake(thread.result)

    def _raise_pending_failure(self) -> None:
        if not self._failures:
            return
        thread = self._failures.pop(0)
        raise SchedulerError(
            f"thread {thread.name!r} died with an unhandled exception"
        ) from thread.exception
