"""Clocks: virtual time for the simulator, real time for the on-line system.

The paper's thread scheduler "knows what the current time is for a real
system and it defines virtual time for a simulator".  We capture that with a
small :class:`Clock` interface and two implementations:

* :class:`VirtualClock` — time only moves when the scheduler advances it
  (to the expiry time of the earliest delayed thread).  This is the discrete
  event simulation clock used by Patsy.
* :class:`RealClock` — time is wall-clock time (``time.monotonic``), and
  "advancing" the clock sleeps until the requested instant.  This is what a
  PFS instantiation uses when serving real clients.

Both clocks report time in seconds since the clock was created, so simulated
and real runs of the same code see the same time base.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Abstract time source used by :class:`repro.core.scheduler.Scheduler`."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds since the clock's epoch."""

    @abstractmethod
    def advance_to(self, deadline: float) -> None:
        """Move time forward to ``deadline`` (never backwards)."""

    @property
    def is_virtual(self) -> bool:
        """``True`` if advancing this clock costs no wall-clock time."""
        return False


class VirtualClock(Clock):
    """Discrete-event simulation clock.

    ``advance_to`` jumps straight to the deadline; attempts to move time
    backwards are ignored, which makes the scheduler's "advance to the first
    delayed thread" step idempotent.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, deadline: float) -> None:
        if deadline > self._now:
            self._now = float(deadline)

    @property
    def is_virtual(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"


class RealClock(Clock):
    """Wall-clock time source for on-line (PFS) instantiations.

    The epoch is the moment the clock is constructed, so ``now()`` starts at
    (approximately) zero just like :class:`VirtualClock`.
    """

    def __init__(self, sleep=time.sleep, monotonic=time.monotonic):
        self._sleep = sleep
        self._monotonic = monotonic
        self._epoch = monotonic()

    def now(self) -> float:
        return self._monotonic() - self._epoch

    def advance_to(self, deadline: float) -> None:
        remaining = deadline - self.now()
        if remaining > 0:
            self._sleep(remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RealClock(now={self.now():.6f})"
