"""Cache flush (delayed write / "write saving") policies.

"Specific persistency requirements can be implemented in derived components
that call into the base component to initiate cache flushes."  These are the
policies compared in Section 5.1 of the paper:

* :class:`PeriodicUpdatePolicy` — the Unix SVR4 30-second-update timer: a
  daemon examines the cache every few seconds and, while there is a dirty
  block older than the update interval, flushes the file that owns the
  oldest dirty block.
* :class:`WriteSavingPolicy` (the "UPS" experiment) — dirty data stays in
  memory indefinitely; blocks are only written when the cache runs out of
  non-dirty blocks (a UPS protects against power failure).
* :class:`NvramPolicy` — dirty data may only occupy an NVRAM buffer of fixed
  size (4 MB in the paper); when the NVRAM is full, the oldest dirty block is
  flushed, either on its own (``whole_file=False``, the "partial file"
  experiment) or together with all other dirty blocks of its file
  (``whole_file=True``, the "whole file" experiment).

All policies additionally install an *asynchronous flush daemon* when
``FlushConfig.asynchronous`` is true: allocation pressure wakes the daemon
instead of performing the flush in the thread that needed a block — the
exact change Section 5.2 describes as a lesson learnt in the simulator.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Generator, List, Optional

from repro.assembly.registry import registry
from repro.config import FlushConfig
from repro.core.cache import BlockCache
from repro.core.scheduler import Scheduler, Thread
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.storage.array import ShardedCache

__all__ = [
    "FlushPolicy",
    "PeriodicUpdatePolicy",
    "WriteSavingPolicy",
    "NvramPolicy",
    "ShardedFlushPolicy",
    "make_flush_policy",
]


class FlushPolicy(ABC):
    """Base class for persistency policies driving the block cache."""

    name = "abstract"

    def __init__(self, config: FlushConfig):
        self.config = config
        self.cache: Optional[BlockCache] = None
        self.scheduler: Optional[Scheduler] = None
        self.daemon_thread: Optional[Thread] = None
        self.policy_thread: Optional[Thread] = None
        self._work = None
        self.daemon_wakeups = 0
        self.policy_flushes = 0
        #: space requests absorbed by an already-pending daemon wakeup.
        self.wakeups_coalesced = 0
        #: blocks flushed ahead of demand to restock the free-block pool.
        self.flush_ahead_blocks = 0
        #: cluster node whose sub-queue runs this policy's daemons.
        self.node = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, cache: BlockCache, scheduler: Scheduler, node: int = 0) -> None:
        """Connect the policy to a cache and start its service threads.

        ``node`` tags the daemons with the cluster node that owns the cache,
        so a sharded or parallel replay runs them on that node's sub-queue.
        """
        self.cache = cache
        self.scheduler = scheduler
        self.node = node
        self._work = scheduler.new_event(f"{self.name}-flush-work")
        self.configure_cache(cache)
        if self.config.asynchronous:
            cache.space_requester = self._request_space
            self.daemon_thread = scheduler.spawn(
                self._flush_daemon, name=f"{self.name}-flush-daemon", daemon=True, node=node
            )
        self.policy_thread = self.start()

    def configure_cache(self, cache: BlockCache) -> None:
        """Hook for derived policies to set cache knobs (NVRAM limit, ...)."""

    def start(self) -> Optional[Thread]:
        """Hook for derived policies to spawn their periodic thread."""
        return None

    # -- asynchronous flush daemon ----------------------------------------------

    def _request_space(self) -> None:
        assert self._work is not None
        if self._work.is_signalled:
            # A wakeup is already latched: this request rides along with it
            # instead of costing another daemon round trip.
            self.wakeups_coalesced += 1
            return
        self._work.signal()

    def stats(self) -> dict:
        """Daemon and policy counters for reports and ablations."""
        return {
            "daemon_wakeups": self.daemon_wakeups,
            "wakeups_coalesced": self.wakeups_coalesced,
            "policy_flushes": self.policy_flushes,
            "flush_ahead_blocks": self.flush_ahead_blocks,
        }

    def _flush_daemon(self) -> Generator[Any, Any, None]:
        """Flush dirty data whenever allocation pressure asks for space.

        With ``FlushConfig.daemon_low_water`` set, each wakeup also flushes
        *ahead* of demand until that fraction of the cache is allocatable
        again, so a burst of allocations is absorbed by one wakeup instead
        of one per request.  The default of 0 keeps strict flush-on-demand
        (the UPS write-saving policy depends on never writing early).
        """
        assert self.cache is not None
        cache = self.cache
        low_water_blocks = int(cache.num_blocks * self.config.resolved_daemon_low_water())
        while True:
            yield from self._work.wait()
            self.daemon_wakeups += 1
            guard = 0
            while not cache.has_allocatable_slot():
                written = yield from cache.flush_oldest(
                    whole_file=cache.flush_whole_file_on_replacement
                )
                if written == 0:
                    # Nothing flushable right now (everything busy); wait for
                    # in-flight I/O to complete and re-evaluate.
                    yield from cache.wait_block_ready()
                guard += 1
                if guard > 10 * cache.num_blocks:
                    break
            cache.notify_space_available()
            # Flush ahead of demand down to the free-block low-water mark.
            while (
                low_water_blocks
                and cache.free_count + cache.clean_count < low_water_blocks
                and guard <= 10 * cache.num_blocks
            ):
                written = yield from cache.flush_oldest(
                    whole_file=cache.flush_whole_file_on_replacement
                )
                if written == 0:
                    break
                self.flush_ahead_blocks += written
                guard += 1


class PeriodicUpdatePolicy(FlushPolicy):
    """The Unix 30-second-update baseline (the "write delay" experiment).

    Every ``scan_interval`` seconds the daemon examines the cache; every file
    owning a dirty block older than ``update_interval`` is pushed to disk.
    As in the real Unix update daemon, the write-backs are *asynchronous*:
    the daemon queues one flush per eligible file and does not wait for the
    disk, so an update cycle dumps a burst of writes into the disk queues —
    which is exactly the queueing behaviour ("disk I/O queues are the main
    cause of relatively high file-system latencies") that the write-saving
    experiments set out to eliminate.
    """

    name = "periodic"

    def __init__(self, config: FlushConfig):
        super().__init__(config)
        #: bound on concurrently outstanding file flushes per update cycle.
        self.max_outstanding_flushes = 128
        self._outstanding = 0

    def start(self) -> Thread:
        assert self.scheduler is not None
        return self.scheduler.spawn(
            self._update_daemon, name="update-daemon", daemon=True, node=self.node
        )

    def _update_daemon(self) -> Generator[Any, Any, None]:
        assert self.cache is not None and self.scheduler is not None
        cache = self.cache
        while True:
            yield from self.scheduler.sleep(self.config.scan_interval)
            # "When it detects that there exists a dirty block older than 30
            # seconds, it flushes the file associated to the oldest block."
            expired: list[int] = []
            cutoff = self.scheduler.now - self.config.update_interval
            for block in cache._dirty.values():
                if block.dirty_since is None or block.dirty_since > cutoff:
                    continue
                file_id = block.block_id.file_id
                if file_id not in expired:
                    expired.append(file_id)
            for file_id in expired:
                if self._outstanding >= self.max_outstanding_flushes:
                    break
                self._outstanding += 1
                self.scheduler.spawn(
                    self._flush_one_file, file_id, name=f"update-flush-{file_id}", daemon=True
                )

    def _flush_one_file(self, file_id: int) -> Generator[Any, Any, None]:
        assert self.cache is not None
        try:
            flushed = yield from self.cache.flush_file(file_id)
            self.policy_flushes += flushed
        finally:
            self._outstanding -= 1


class WriteSavingPolicy(FlushPolicy):
    """Write-saving / UPS: flush only under allocation pressure.

    All of memory may hold dirty data; a UPS (or client-side replication, see
    the paper's reference [4]) protects it against power failure.  Nothing is
    written until the cache runs out of non-dirty blocks, which maximises the
    chance that deletes and truncates make writes unnecessary.
    """

    name = "ups"


class NvramPolicy(FlushPolicy):
    """Dirty data confined to an NVRAM buffer.

    ``whole_file`` selects between the two flush variants measured in the
    paper.  There are no timer-driven writes; the NVRAM is drained oldest
    first when space is needed.  A small write-behind daemon starts draining
    once occupancy passes a high-water mark so that a writer only has to
    wait ("new writes are waiting for the NVRAM to drain") when the incoming
    write rate genuinely exceeds the drain rate — which is exactly what
    happens on the write-heavy traces (1b, 5) and not on the ordinary ones.
    """

    name = "nvram"

    #: start draining when dirty data exceeds this fraction of the NVRAM.
    high_water = 0.90
    #: stop draining when dirty data falls below this fraction.
    low_water = 0.75
    #: how often the drain daemon re-examines the NVRAM occupancy.
    drain_check_interval = 0.25

    def configure_cache(self, cache: BlockCache) -> None:
        cache.dirty_limit_bytes = self.config.nvram_bytes
        cache.drain_whole_file = self.config.whole_file
        # Replacement pressure should honour the same flush granularity.
        cache.flush_whole_file_on_replacement = self.config.whole_file

    def start(self) -> Optional[Thread]:
        assert self.scheduler is not None
        return self.scheduler.spawn(
            self._drain_daemon, name="nvram-drain", daemon=True, node=self.node
        )

    def _drain_daemon(self) -> Generator[Any, Any, None]:
        assert self.cache is not None and self.scheduler is not None
        cache = self.cache
        limit = self.config.nvram_bytes
        while True:
            yield from self.scheduler.sleep(self.drain_check_interval)
            if cache.dirty_bytes <= self.high_water * limit:
                continue
            while cache.dirty_bytes > self.low_water * limit:
                flushed = yield from cache.flush_oldest(whole_file=self.config.whole_file)
                self.policy_flushes += flushed
                if flushed == 0:
                    break

    @property
    def nvram_blocks(self) -> int:
        assert self.cache is not None
        return self.config.nvram_bytes // self.cache.block_size


class ShardedFlushPolicy(FlushPolicy):
    """One flush daemon per cache shard, plus a shared dirty-ratio governor.

    Attached to a :class:`~repro.core.storage.array.ShardedCache`, this
    policy instantiates the configured flush policy once *per shard* — each
    volume gets its own update/drain daemon working against its own dirty
    list, exactly as the real machine ran one update daemon per file system.
    The NVRAM budget is split evenly over the shards so the array's total
    dirty-data bound matches the single-volume configuration.

    Cross-volume flush pressure is coordinated by a *governor* thread: when
    the aggregate dirty ratio across all shards passes ``high_water`` it
    drains the dirtiest shard (whole-file granularity when the shard is
    configured for it) until the aggregate falls back below ``low_water``.
    The governor never runs for the UPS write-saving policy — writing ahead
    of real allocation pressure would defeat the write savings that policy
    exists to measure — or for single-shard caches, which keeps a one-volume
    array byte-identical to the legacy assembly.
    """

    name = "sharded"

    def __init__(
        self,
        config: FlushConfig,
        high_water: float = 0.85,
        low_water: float = 0.70,
        check_interval: float = 1.0,
    ):
        super().__init__(config)
        if not (0.0 <= low_water <= high_water <= 1.0):
            raise ConfigurationError("governor water marks must satisfy 0 <= low <= high <= 1")
        if check_interval <= 0:
            raise ConfigurationError("governor check interval must be positive")
        self.high_water = high_water
        self.low_water = low_water
        self.check_interval = check_interval
        self.children: List[FlushPolicy] = []
        #: node index per shard, set by the builder before :meth:`attach` on
        #: cluster stacks; None keeps every shard (and the governor) on the
        #: node passed to ``attach``.
        self.shard_nodes: Optional[List[int]] = None
        self.governor_thread: Optional[Thread] = None
        self.governor_threads: List[Thread] = []
        self.governor_wakeups = 0
        self.governor_flushes = 0

    def attach(self, cache: "ShardedCache", scheduler: Scheduler, node: int = 0) -> None:
        self.cache = cache  # type: ignore[assignment]
        self.scheduler = scheduler
        self.node = node
        shards = cache.shards
        shard_nodes = self.shard_nodes
        if shard_nodes is None:
            shard_nodes = [node] * len(shards)
        elif len(shard_nodes) != len(shards):
            raise ConfigurationError(
                f"shard_nodes carries {len(shard_nodes)} entries "
                f"for a {len(shards)}-shard cache"
            )
        child_config = self.config
        if self.config.policy == "nvram" and len(shards) > 1:
            child_config = replace(
                self.config, nvram_bytes=max(self.config.nvram_bytes // len(shards), 1)
            )
        for shard, shard_node in zip(shards, shard_nodes):
            child = make_flush_policy(child_config)
            child.attach(shard, scheduler, node=shard_node)
            self.children.append(child)
        if self.config.policy == "ups" or self.high_water >= 1.0:
            return
        distinct_nodes = sorted(set(shard_nodes))
        if len(distinct_nodes) == 1:
            # Single machine: one governor over the whole array, spawned
            # under the legacy name so one-node stacks stay byte-identical.
            if len(shards) > 1:
                self.governor_thread = scheduler.spawn(
                    self._governor,
                    list(shards),
                    name="dirty-governor",
                    daemon=True,
                    node=distinct_nodes[0],
                )
                self.governor_threads = [self.governor_thread]
            return
        # Cluster: one governor per node, each watching only its node's
        # shards — flush pressure never crosses the NIC boundary, which is
        # what lets the parallel executor run each node independently.
        for shard_node in distinct_nodes:
            group = [s for s, n in zip(shards, shard_nodes) if n == shard_node]
            if len(group) <= 1:
                continue
            thread = scheduler.spawn(
                self._governor,
                group,
                name=f"dirty-governor-n{shard_node}",
                daemon=True,
                node=shard_node,
            )
            self.governor_threads.append(thread)
        self.governor_thread = self.governor_threads[0] if self.governor_threads else None

    def _governor(self, shards: List[BlockCache]) -> Generator[Any, Any, None]:
        assert self.cache is not None and self.scheduler is not None
        capacity = sum(shard.num_blocks * shard.block_size for shard in shards)
        while True:
            yield from self.scheduler.sleep(self.check_interval)
            if self._dirty_ratio(shards, capacity) <= self.high_water:
                continue
            self.governor_wakeups += 1
            while self._dirty_ratio(shards, capacity) > self.low_water:
                victim = max(
                    shards, key=lambda shard: shard.dirty_bytes / max(shard.num_blocks, 1)
                )
                written = yield from victim.flush_oldest(
                    whole_file=victim.flush_whole_file_on_replacement
                )
                if written == 0:
                    break
                self.governor_flushes += written

    @staticmethod
    def _dirty_ratio(shards: List[BlockCache], capacity: int) -> float:
        return sum(shard.dirty_bytes for shard in shards) / max(capacity, 1)

    def stats(self) -> dict:
        """Aggregate child counters plus governor activity."""
        totals = {
            "daemon_wakeups": 0,
            "wakeups_coalesced": 0,
            "policy_flushes": 0,
            "flush_ahead_blocks": 0,
        }
        for child in self.children:
            for key, value in child.stats().items():
                totals[key] = totals.get(key, 0) + value
        totals["governor_wakeups"] = self.governor_wakeups
        totals["governor_flushes"] = self.governor_flushes
        return totals

    def shard_stats(self) -> List[dict]:
        """Per-shard flush counters, in shard (= volume) order."""
        return [child.stats() for child in self.children]


# "flush" factories take one FlushConfig and return an unattached policy.
registry.register("flush", "periodic", PeriodicUpdatePolicy)
registry.register("flush", "ups", WriteSavingPolicy)
registry.register("flush", "nvram", NvramPolicy)


def make_flush_policy(config: FlushConfig) -> FlushPolicy:
    """Instantiate the flush policy selected by ``config.policy``.

    Thin wrapper over ``registry.create("flush", ...)``; a third-party
    policy registered under kind ``"flush"`` is instantiated the same way.
    """
    return registry.create("flush", config.policy, config)
