"""Device drivers: the framework's abstract disk interface.

"Real disks are accessed through disk-drivers.  Disk-drivers implement one
or more disk queues and send new operations to disks whenever they are
ready to service new requests." (Section 3)

The base class below owns a combined read/write queue ordered by a pluggable
:class:`~repro.core.iosched.IoScheduler` and a service thread that feeds one
request at a time to the underlying device.  The *real* driver
(:class:`repro.pfs.diskfile.FileBackedDiskDriver`) performs the operation on
a Unix file; the *simulated* driver
(:class:`repro.patsy.simdriver.SimulatedDiskDriver`) packages the operation
into an I/O-request, acquires the host/disk connection and hands it to a
simulated disk.  "The simulated disk-drivers have exactly the same interface
as a real disk-driver: the differences are in the internal implementation.
The system itself does not know it is communicating with a 'fake' disk."
"""

from __future__ import annotations

import enum
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.iosched import IoScheduler, make_io_scheduler
from repro.core.scheduler import Event, Scheduler
from repro.errors import DiskAddressError, DiskError
from repro.units import SECTOR_SIZE

__all__ = ["IOKind", "IORequest", "DiskDriver", "DriverStatistics"]


class IOKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class IORequest:
    """One disk operation, with the timing information needed for analysis.

    The simulated and real drivers use the same structure — it "contains all
    the relevant information for the disk simulator to simulate a disk read
    or write and contains timing information to measure the performance of
    the I/O operation".
    """

    kind: IOKind
    sector: int
    count: int
    #: payload for writes / destination buffer for reads (real systems only).
    data: Optional[bytearray] = None
    #: optional real-time deadline (scan-EDF).
    deadline: Optional[float] = None
    request_id: int = field(default_factory=itertools.count(1).__next__)
    # -- timing ---------------------------------------------------------------
    created_at: float = 0.0
    dispatched_at: float = 0.0
    completed_at: float = 0.0
    #: rotational latency incurred (filled in by the disk model).
    rotational_delay: float = 0.0
    #: seek time incurred (filled in by the disk model).
    seek_time: float = 0.0
    #: whether the disk serviced this request from its internal cache.
    disk_cache_hit: bool = False
    #: completion event signalled by the driver.
    done: Optional[Event] = None

    @property
    def nbytes(self) -> int:
        return self.count * SECTOR_SIZE

    @property
    def queue_time(self) -> float:
        return max(self.dispatched_at - self.created_at, 0.0)

    @property
    def service_time(self) -> float:
        return max(self.completed_at - self.dispatched_at, 0.0)

    @property
    def response_time(self) -> float:
        return max(self.completed_at - self.created_at, 0.0)

    def __repr__(self) -> str:
        return (
            f"IORequest(#{self.request_id} {self.kind.value} sector={self.sector} "
            f"count={self.count})"
        )


@dataclass
class DriverStatistics:
    """Counters and samples collected by every driver."""

    reads: int = 0
    writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    queue_length_samples: list[int] = field(default_factory=list)
    queue_times: list[float] = field(default_factory=list)
    service_times: list[float] = field(default_factory=list)
    response_times: list[float] = field(default_factory=list)

    def record_submit(self, queue_length: int) -> None:
        self.queue_length_samples.append(queue_length)

    def record_completion(self, request: IORequest) -> None:
        if request.kind is IOKind.READ:
            self.reads += 1
            self.sectors_read += request.count
        else:
            self.writes += 1
            self.sectors_written += request.count
        self.queue_times.append(request.queue_time)
        self.service_times.append(request.service_time)
        self.response_times.append(request.response_time)

    @property
    def operations(self) -> int:
        return self.reads + self.writes

    def mean_queue_length(self) -> float:
        if not self.queue_length_samples:
            return 0.0
        return sum(self.queue_length_samples) / len(self.queue_length_samples)

    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    @property
    def busy_time(self) -> float:
        """Total time the device spent servicing requests."""
        return sum(self.service_times)

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the device was busy."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)


class DiskDriver(ABC):
    """Base disk driver: queueing, scheduling and completion plumbing.

    Derived classes implement :meth:`_perform`, which carries out one request
    on the underlying device (real file or simulated disk) and returns when
    it has completed.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "disk0",
        io_scheduler: Optional[IoScheduler] = None,
        num_sectors: int = 2_000_000,
        sector_size: int = SECTOR_SIZE,
        node: int = 0,
    ):
        if num_sectors <= 0:
            raise DiskError("disk must have a positive number of sectors")
        self.scheduler = scheduler
        self.name = name
        self.node = node
        self.queue = io_scheduler if io_scheduler is not None else make_io_scheduler("clook")
        self.num_sectors = num_sectors
        self.sector_size = sector_size
        self.stats = DriverStatistics()
        self._io_event_name = f"{name}-io"
        self._head_position = 0
        self._in_flight = 0
        self._work = scheduler.new_event(f"{name}-driver-work")
        self._idle = scheduler.new_event(f"{name}-driver-idle")
        self._service_thread = scheduler.spawn(
            self._service_loop, name=f"{name}-driver", daemon=True, node=node
        )

    # -- public interface ------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.num_sectors * self.sector_size

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def read(self, sector: int, count: int) -> Generator[Any, Any, IORequest]:
        """Read ``count`` sectors starting at ``sector``; returns the
        completed request (whose ``data`` holds the bytes for real drivers)."""
        request = self._new_request(IOKind.READ, sector, count, data=None)
        yield from self.submit(request)
        return request

    def write(
        self, sector: int, count: int, data: Optional[bytes] = None
    ) -> Generator[Any, Any, IORequest]:
        """Write ``count`` sectors starting at ``sector``."""
        buffer = bytearray(data) if data is not None else None
        request = self._new_request(IOKind.WRITE, sector, count, data=buffer)
        yield from self.submit(request)
        return request

    def submit(self, request: IORequest) -> Generator[Any, Any, IORequest]:
        """Queue a request and wait for its completion."""
        self._check_bounds(request)
        request.created_at = self.scheduler.now
        request.done = self.scheduler.new_event(self._io_event_name)
        self.stats.record_submit(len(self.queue))
        self.queue.add(request)
        self._work.signal()
        yield from request.done.wait()
        return request

    @property
    def outstanding(self) -> int:
        """Requests queued or in service."""
        return len(self.queue) + self._in_flight

    def flush(self) -> Generator[Any, Any, None]:
        """Wait until the queue drains and in-flight work completes."""
        while self.outstanding > 0:
            yield from self._idle.wait()

    # -- service loop -------------------------------------------------------------

    def _service_loop(self) -> Generator[Any, Any, None]:
        while True:
            request = self.queue.next(self._head_position)
            if request is None:
                yield from self._work.wait()
                continue
            request.dispatched_at = self.scheduler.now
            self._in_flight += 1
            try:
                yield from self._perform(request)
            finally:
                self._in_flight -= 1
            request.completed_at = self.scheduler.now
            self._head_position = request.sector + request.count
            self.stats.record_completion(request)
            assert request.done is not None
            request.done.signal(request)
            if self.outstanding == 0:
                self._idle.signal()

    # -- to be provided by derived drivers ------------------------------------------

    @abstractmethod
    def _perform(self, request: IORequest) -> Generator[Any, Any, None]:
        """Carry out ``request`` on the device; return when complete."""

    # -- helpers ----------------------------------------------------------------------

    def _new_request(
        self, kind: IOKind, sector: int, count: int, data: Optional[bytearray]
    ) -> IORequest:
        if count <= 0:
            raise DiskError(f"I/O request must cover at least one sector (got {count})")
        return IORequest(kind=kind, sector=sector, count=count, data=data)

    def _check_bounds(self, request: IORequest) -> None:
        if request.sector < 0 or request.sector + request.count > self.num_sectors:
            raise DiskAddressError(
                f"request {request!r} outside disk {self.name!r} "
                f"({self.num_sectors} sectors)"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, queued={len(self.queue)})"
