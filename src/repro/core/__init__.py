"""The cut-and-paste component library.

Everything in this package is shared between the on-line file system
(:mod:`repro.pfs`) and the off-line simulator (:mod:`repro.patsy`); the two
instantiations only add *helper* components (a real disk back-end and NFS
front-end on one side, simulated disks/buses and trace readers on the
other), exactly as described in Sections 2-4 of the paper.
"""

from repro.core.clock import Clock, RealClock, VirtualClock
from repro.core.scheduler import (
    Delay,
    Reschedule,
    Scheduler,
    SchedulingPolicy,
    FifoSchedulingPolicy,
    RandomSchedulingPolicy,
    Thread,
    ThreadState,
    WaitEvent,
)
from repro.core.sync import Event, Mutex, Resource, Semaphore

__all__ = [
    "Clock",
    "RealClock",
    "VirtualClock",
    "Delay",
    "Reschedule",
    "Scheduler",
    "SchedulingPolicy",
    "FifoSchedulingPolicy",
    "RandomSchedulingPolicy",
    "Thread",
    "ThreadState",
    "WaitEvent",
    "Event",
    "Mutex",
    "Resource",
    "Semaphore",
]
