"""The global file table.

"The abstract client interface initiates the loading of a file from disk
when it is first accessed.  It calls into the file system module to read the
file's inode into memory.  Once the file is in memory, the component stores
a reference to it in a global file table."

The file table maps inode numbers to *instantiated files* (see
:mod:`repro.core.filetypes`) and hands out small integer handles to clients.
When a file is requested, "the file-system front-end examines the file type
of the requested file and instantiates an object of that type to manage the
file while it is in core."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.core.filetypes import FILE_CLASS_BY_KIND, BaseFile
from repro.core.inode import Inode
from repro.errors import StaleHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.filesystem import FileSystem

__all__ = ["FileTable", "OpenHandle"]


@dataclass
class OpenHandle:
    """A client's open-file handle."""

    handle: int
    file: BaseFile
    #: implicit file position for sequential read/write convenience calls.
    position: int = 0


class FileTable:
    """Tracks instantiated files and open handles."""

    def __init__(self, fs: "FileSystem"):
        self.fs = fs
        self._files: Dict[int, BaseFile] = {}
        self._handles: Dict[int, OpenHandle] = {}
        self._next_handle = itertools.count(3)  # 0..2 reserved, Unix-style
        self.instantiations = 0

    # -- instantiated files ------------------------------------------------------

    def find(self, inode_number: int) -> Optional[BaseFile]:
        """The loaded file for ``inode_number``, if it is in core."""
        return self._files.get(inode_number)

    def instantiate(self, inode: Inode) -> BaseFile:
        """Wrap an in-core inode in the file class matching its type."""
        existing = self._files.get(inode.number)
        if existing is not None:
            return existing
        file_class = FILE_CLASS_BY_KIND[inode.kind]
        file = file_class(self.fs, inode)
        self._files[inode.number] = file
        self.instantiations += 1
        return file

    def load(self, inode_number: int) -> Generator[Any, Any, BaseFile]:
        """Get the instantiated file, reading the inode from disk if needed."""
        existing = self._files.get(inode_number)
        if existing is not None:
            return existing
        inode = yield from self.fs.layout.read_inode(inode_number)
        return self.instantiate(inode)

    def forget(self, inode_number: int) -> None:
        """Drop an instantiated file from the table (after delete)."""
        self._files.pop(inode_number, None)

    @property
    def loaded_files(self) -> tuple[BaseFile, ...]:
        return tuple(self._files.values())

    @property
    def loaded_count(self) -> int:
        return len(self._files)

    # -- handles -------------------------------------------------------------------

    def open_handle(self, file: BaseFile) -> int:
        handle = next(self._next_handle)
        self._handles[handle] = OpenHandle(handle=handle, file=file)
        return handle

    def get_handle(self, handle: int) -> OpenHandle:
        entry = self._handles.get(handle)
        if entry is None:
            raise StaleHandle(f"unknown or closed file handle {handle}")
        return entry

    def close_handle(self, handle: int) -> BaseFile:
        entry = self._handles.pop(handle, None)
        if entry is None:
            raise StaleHandle(f"unknown or closed file handle {handle}")
        return entry.file

    @property
    def open_count(self) -> int:
        return len(self._handles)

    def handles_for(self, inode_number: int) -> list[OpenHandle]:
        return [h for h in self._handles.values() if h.file.file_id == inode_number]

    def __repr__(self) -> str:
        return f"FileTable(loaded={len(self._files)}, open={len(self._handles)})"
