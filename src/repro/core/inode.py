"""Inodes and file types.

An inode is the on-disk (and in-core) description of a file: its type, size,
link count, times, and the mapping from logical block numbers to disk block
addresses.  The block map is a sparse dictionary — holes simply have no
entry — which matches the behaviour of both the segmented LFS and the
FFS-like layout in :mod:`repro.core.storage`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.errors import InvalidArgument

__all__ = ["FileKind", "Inode", "ROOT_INODE_NUMBER"]

#: Inode number of the root directory in every layout.
ROOT_INODE_NUMBER = 2


class FileKind(enum.Enum):
    """File types supported by the framework (Section 2, "Files")."""

    REGULAR = 1
    DIRECTORY = 2
    SYMLINK = 3
    MULTIMEDIA = 4
    ADMINISTRATIVE = 5


@dataclass
class Inode:
    """In-core inode.

    ``block_map`` maps logical file block numbers to *volume* block
    addresses.  An address of ``None`` never appears: unmapped blocks are
    simply missing keys (holes read as zeros).
    """

    number: int
    kind: FileKind
    size: int = 0
    nlink: int = 1
    uid: int = 0
    gid: int = 0
    mode: int = 0o644
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    #: generation number: bumped when the inode number is reused, so stale
    #: client handles can be detected.
    generation: int = 1
    block_map: Dict[int, int] = field(default_factory=dict)
    #: symlink target (SYMLINK inodes only).
    symlink_target: str = ""

    # -- block map ------------------------------------------------------------

    def get_block_address(self, block_no: int) -> Optional[int]:
        return self.block_map.get(block_no)

    def set_block_address(self, block_no: int, address: int) -> None:
        if block_no < 0:
            raise InvalidArgument(f"negative logical block number {block_no}")
        self.block_map[block_no] = address

    def drop_blocks_from(self, first_block: int) -> list[int]:
        """Remove mappings for blocks >= ``first_block`` (truncate); returns
        the freed disk addresses."""
        doomed = [bn for bn in self.block_map if bn >= first_block]
        freed = []
        for block_no in doomed:
            freed.append(self.block_map.pop(block_no))
        return freed

    def mapped_blocks(self) -> Iterable[tuple[int, int]]:
        """(logical block, disk address) pairs in logical order."""
        return sorted(self.block_map.items())

    @property
    def block_count(self) -> int:
        return len(self.block_map)

    # -- convenience ------------------------------------------------------------

    @property
    def is_directory(self) -> bool:
        return self.kind is FileKind.DIRECTORY

    @property
    def is_regular(self) -> bool:
        return self.kind is FileKind.REGULAR

    @property
    def is_symlink(self) -> bool:
        return self.kind is FileKind.SYMLINK

    def blocks_for_size(self, block_size: int) -> int:
        return (self.size + block_size - 1) // block_size

    def touch_mtime(self, now: float) -> None:
        self.mtime = now
        self.ctime = now

    def touch_atime(self, now: float) -> None:
        self.atime = now

    def stat(self) -> dict:
        """A plain-dict stat result, as returned through the client interface."""
        return {
            "ino": self.number,
            "kind": self.kind.name.lower(),
            "size": self.size,
            "nlink": self.nlink,
            "uid": self.uid,
            "gid": self.gid,
            "mode": self.mode,
            "atime": self.atime,
            "mtime": self.mtime,
            "ctime": self.ctime,
            "generation": self.generation,
            "blocks": self.block_count,
        }

    def __repr__(self) -> str:
        return f"Inode(#{self.number} {self.kind.name.lower()} size={self.size})"
