"""The cluster tier: multiple machines above the storage array.

The paper stops at one Sun 4/280; this package grows the same component
library to N machines.  Node 0 is the front end where clients arrive; every
other node contributes its volumes through a :class:`RemoteVolume`, whose
block I/O crosses a simulated network link (:class:`Nic`) with the same
charged-time discipline as PATSY's SCSI buses.  A :class:`ClusterPlacement`
tier above the array's placement policies owns the file→volume routing
table, and a :class:`ClusterRebalancer` watches per-volume load/free-space
skew and migrates files online — copy the live blocks forward through the
cache, atomically flip the routing entry.

With one node none of this exists at run time: no NICs, no remote volumes,
no monitor thread — a one-node cluster replay is byte-identical to the bare
array stack.
"""

from __future__ import annotations

from repro.core.cluster.network import Nic
from repro.core.cluster.remote import RemoteVolume
from repro.core.cluster.placement import ClusterPlacement
from repro.core.cluster.node import ClusterNode, ClusterTopology
from repro.core.cluster.rebalance import ClusterRebalancer, Migration

__all__ = [
    "Nic",
    "RemoteVolume",
    "ClusterPlacement",
    "ClusterNode",
    "ClusterTopology",
    "ClusterRebalancer",
    "Migration",
]
