"""Online rebalancing: the skew monitor and the file-migration machinery.

Placement skew is the array's known failure mode (one volume filling up or
carrying most of the traffic while others idle).  The rebalancer watches
per-volume load (disk operations over the last interval) and free space,
and when the imbalance passes the configured thresholds it *migrates* files
from the overloaded volume to the least-loaded one, online, through the
ordinary cache and layout paths.

One migration runs this state machine (all steps through charged I/O, so a
migration's cost shows up in the measurements like any other traffic):

1. **PULL**   — every live block of the file is brought into the cache
   through the *old* routing (cache hits are free; misses are charged
   reads, over the network for a remote volume).  Pulled blocks are pinned
   (``busy``) so replacement cannot drop them mid-migration.
2. **FLIP**   — the routing entry flips to the new home volume.  A single
   dictionary store under the cooperative scheduler: atomic.
3. **COPY**   — cached copies move into the new home's cache shard and are
   marked dirty ("copy-forward through the cache").  From this instant
   every lookup routes to the new shard and hits.
4. **FLUSH**  — the file's dirty blocks are written out; the layout assigns
   fresh addresses on the new volume and updates the block map.
5. **RETIRE** — the old on-disk blocks (captured before the flip) are
   released on the old volume and the old inode record is retired; the
   inode is persisted on its new home.

Monitor decisions use only sorted orders and interval counters — no RNG —
so the same seed and the same skew produce the identical migration
schedule (pinned by ``tests/test_cluster.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.config import ClusterConfig
from repro.core.cluster.placement import ClusterPlacement
from repro.core.inode import FileKind, Inode, ROOT_INODE_NUMBER
from repro.core.scheduler import Scheduler, Thread
from repro.core.storage.array import RoutedLayout, ShardedCache
from repro.errors import CacheError, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.filesystem import FileSystem

__all__ = ["ClusterRebalancer", "Migration"]


@dataclass(frozen=True)
class Migration:
    """One completed migration, as recorded in the schedule."""

    time: float
    file_id: int
    source: int
    target: int
    blocks: int


class ClusterRebalancer:
    """Skew monitor plus the per-file migration state machine."""

    def __init__(
        self,
        fs: "FileSystem",
        placement: ClusterPlacement,
        config: ClusterConfig,
        metadata: Optional[Any] = None,
        crashpoints: Optional[Any] = None,
    ):
        self.fs = fs
        self.placement = placement
        self.config = config
        #: the durable metadata tier (``repro.core.metadata``); None runs
        #: the PR 5 behaviour — in-memory routing only.
        self.metadata = metadata
        #: crash-injection hooks for the recovery test harness.
        self.crashpoints = crashpoints
        self.scheduler: Scheduler = fs.scheduler
        self.monitor_thread: Optional[Thread] = None
        #: completed migrations, in order (the deterministic schedule).
        self.schedule: List[Migration] = []
        self.rounds = 0
        self.migrations = 0
        self.blocks_copied = 0
        self.migrations_skipped = 0
        self._last_ops: Optional[List[int]] = None

    # ------------------------------------------------------------------ wiring

    def _hit(self, point: str) -> None:
        if self.crashpoints is not None:
            self.crashpoints.hit(point)

    @property
    def layout(self) -> RoutedLayout:
        return self.fs.layout  # type: ignore[return-value]

    @property
    def cache(self) -> ShardedCache:
        return self.fs.cache  # type: ignore[return-value]

    def start(self) -> None:
        """Spawn the skew-monitor daemon (idempotent)."""
        if self.monitor_thread is None:
            self.monitor_thread = self.scheduler.spawn(
                self._monitor, name="cluster-rebalancer", daemon=True
            )

    # ------------------------------------------------------------------ the monitor

    def _volume_drivers(self, volume: int):
        return self.layout.sublayouts[volume].volume.drivers

    def _load_snapshot(self) -> List[int]:
        return [
            sum(driver.stats.operations for driver in self._volume_drivers(v))
            for v in range(self.placement.num_volumes)
        ]

    def _free_fraction(self, volume: int) -> float:
        sub = self.layout.sublayouts[volume]
        total = max(sub.volume.total_blocks, 1)
        return sub.free_blocks / total

    def _monitor(self) -> Generator[Any, Any, None]:
        config = self.config
        while True:
            yield from self.scheduler.sleep(config.rebalance_interval)
            self.rounds += 1
            ops = self._load_snapshot()
            if self._last_ops is None:
                delta = list(ops)
            else:
                delta = [now - before for now, before in zip(ops, self._last_ops)]
            self._last_ops = ops
            yield from self.rebalance_once(delta)

    def rebalance_once(self, load: List[int]) -> Generator[Any, Any, int]:
        """One monitor round over per-volume interval loads.

        Returns the number of files migrated.  Exposed separately so tests
        and experiments can drive rounds without the daemon.
        """
        config = self.config
        volumes = self.placement.num_volumes
        if volumes < 2:
            return 0
        free = [self._free_fraction(v) for v in range(volumes)]
        mean_load = sum(load) / volumes

        source: Optional[int] = None
        starved = [v for v in range(volumes) if free[v] < config.free_space_low_water]
        if starved:
            # Free-space pressure beats load skew: migrate off the fullest.
            source = min(starved, key=lambda v: (free[v], v))
        elif mean_load > 0:
            busiest = max(range(volumes), key=lambda v: (load[v], -v))
            if load[busiest] > config.imbalance_threshold * mean_load:
                source = busiest
        if source is None:
            return 0
        # The least-loaded volume with the most room — never the source,
        # and never a volume itself below the free-space low water (moving
        # files onto a full volume just ping-pongs them back next round).
        candidates = [
            v
            for v in range(volumes)
            if v != source and free[v] >= config.free_space_low_water
        ]
        if not candidates:
            return 0
        target = min(candidates, key=lambda v: (load[v], -free[v], v))
        migrated = 0
        for file_id in self._victims(source):
            if migrated >= config.max_migrations_per_round:
                break
            moved = yield from self.migrate_file(file_id, target)
            if moved:
                migrated += 1
        return migrated

    def _victims(self, source: int) -> List[int]:
        """Deterministic victim order: hottest cached files of ``source``
        first (most cached blocks), then the cold remainder by inode
        number.  The root directory is never a victim."""
        counts: Dict[int, int] = {}
        for shard in self.cache.shards:
            for block in shard.blocks():
                if block.block_id is None:
                    continue
                file_id = block.block_id.file_id
                if self.placement.volume_of_file(file_id) == source:
                    counts[file_id] = counts.get(file_id, 0) + 1
        hot = sorted(counts, key=lambda fid: (-counts[fid], fid))
        cold = [
            fid
            for fid in self.layout.sublayouts[source].known_inode_numbers()
            if fid not in counts and self.placement.volume_of_file(fid) == source
        ]
        return [fid for fid in hot + cold if fid != ROOT_INODE_NUMBER]

    # ------------------------------------------------------------------ migration

    def migrate_file(self, file_id: int, new_home: int) -> Generator[Any, Any, bool]:
        """Move ``file_id``'s home volume to ``new_home`` (see the module
        docstring for the state machine).  Returns True when the file
        actually moved; directories, the root and layouts that cannot host
        foreign inode numbers are skipped."""
        placement = self.placement
        layout = self.layout
        cache = self.cache
        old_home = placement.volume_of_file(file_id)
        if new_home == old_home or file_id == ROOT_INODE_NUMBER:
            return False
        conflict = getattr(placement, "replication_conflict", None)
        if conflict is not None and conflict(file_id, new_home):
            # The target volume (or its node) holds one of the file's
            # replicas: the primary landing there would collide with the
            # shadow inode already carrying this inode number.
            self.migrations_skipped += 1
            return False
        new_sub = layout.sublayouts[new_home]
        old_sub = layout.sublayouts[old_home]
        if not hasattr(new_sub, "inode_map") or not hasattr(old_sub, "inode_map"):
            # Slot-mapped layouts (FFS) pin inode numbers to their home
            # volume's arithmetic progression; they cannot adopt a migrant.
            self.migrations_skipped += 1
            return False
        loaded = self.fs.file_table.find(file_id)
        if loaded is not None:
            inode = loaded.inode
        else:
            try:
                inode = yield from layout.read_inode(file_id)
            except StorageError:
                self.migrations_skipped += 1
                return False
        if inode.kind is not FileKind.REGULAR:
            self.migrations_skipped += 1
            return False

        # Journal the migration's intent before touching anything.  A BEGIN
        # without a later COMMIT is ignored at recovery, so an abandoned or
        # crashed migration leaves routing exactly where it was.
        if self.metadata is not None:
            self.metadata.journal_begin(file_id, old_home, new_home)
        self._hit("migrate.pull.pre")

        # -- PULL: every live block into the cache through the old routing.
        if len(inode.block_map) > min(s.num_blocks for s in cache.shards) // 2:
            # Too big to copy-forward through the cache without starving it.
            self.migrations_skipped += 1
            return False
        pulled: List[tuple[int, Any, Any]] = []  # (block_no, block, owning shard)
        to_move: List[tuple[int, Any, Any]] = []
        #: pre-allocated landing slots in the new home's shard, by block no.
        copies: Dict[int, Any] = {}
        # Where the file's blocks route once the flip lands (a migrated file
        # is whole-file resident, so every block shares one target shard).
        target = cache.shards[0 if len(cache.shards) == 1 else new_home]

        def release_pins() -> None:
            for _no, block, _shard in pulled + to_move:
                block.busy = False
            for block_no, copy in copies.items():
                copy.busy = False
                if target.peek(file_id, block_no) is copy:
                    target.invalidate(copy)

        try:
            for _attempt in range(8):
                # -- PULL: every live block into the cache, old routing.
                block_nos = sorted(
                    set(inode.block_map)
                    | {b.block_id.block_no for b in cache.cached_blocks_of(file_id)}
                )
                if len(block_nos) > min(s.num_blocks for s in cache.shards) // 2:
                    release_pins()
                    self.migrations_skipped += 1
                    return False
                for block_no in block_nos:
                    shard = cache.shard_for(file_id, block_no)
                    while True:
                        block = shard.peek(file_id, block_no)
                        if block is not None:
                            break
                        try:
                            block = yield from shard.allocate(file_id, block_no)
                        except CacheError:
                            # A client cached it while we waited for space.
                            continue
                        block.busy = True
                        try:
                            yield from layout.read_file_block(inode, block_no, block)
                        finally:
                            block.busy = False
                        break
                    block.busy = True  # pinned until the move completes
                    pulled.append((block_no, block, shard))

                # Pre-allocate the landing slots in the new home's shard
                # while nothing routes to them yet: after the flip a client
                # finds these blocks busy and *waits*, instead of reading
                # stale addresses through the new volume's sub-layout.
                for block_no in block_nos:
                    if cache.shard_for(file_id, block_no) is target or block_no in copies:
                        continue
                    while True:
                        try:
                            copy = yield from target.allocate(file_id, block_no)
                            break
                        except CacheError:
                            copy = target.peek(file_id, block_no)
                            if copy is not None:
                                break
                    copy.busy = True
                    copies[block_no] = copy

                # Re-scan the whole cache for this file's blocks — clients
                # may have created new ones while the steps above yielded.
                # This scan, the completeness check, the pin check and the
                # flip below all share one scheduler step, so nothing can
                # change in between.
                landing = {id(copy) for copy in copies.values()}
                to_move = []
                for shard in cache.shards:
                    for block in shard.cached_blocks_of(file_id):
                        if id(block) not in landing:
                            to_move.append((block.block_id.block_no, block, shard))
                to_move.sort(key=lambda item: item[0])
                # A concurrent flush clearing ``busy`` can let a pulled
                # block be evicted before we get here: every on-disk block
                # must be back in the cache, and every cached block outside
                # the target shard needs its landing slot — else go again.
                missing_pull = set(inode.block_map) - {no for no, _b, _s in to_move}
                missing_copy = any(
                    shard is not target and no not in copies
                    for no, _b, shard in to_move
                )
                if missing_pull or missing_copy:
                    for _no, block, _shard in pulled:
                        block.busy = False
                    pulled = []
                    continue
                break
            else:
                release_pins()
                self.migrations_skipped += 1
                return False
            # Abort if any block is pinned: a client mid-operation would
            # strand its block in the old shard once the routing flips.
            ours = {id(block) for _no, block, _shard in pulled}
            if any(
                block.pinned or (block.busy and id(block) not in ours)
                for _no, block, _shard in to_move
            ):
                release_pins()
                self.migrations_skipped += 1
                return False
            # Pin the whole move set: ``busy`` keeps the replacement policy
            # and the flush daemons off these blocks until each is moved.
            for _no, block, _shard in to_move:
                block.busy = True

            # Old on-disk addresses, grouped by the *old* routing, captured
            # before the flip so RETIRE frees exactly what the file owned.
            old_groups: Dict[int, Dict[int, int]] = {}
            for block_no, address in inode.block_map.items():
                volume = placement.volume_for_block(file_id, block_no)
                old_groups.setdefault(volume, {})[block_no] = address

            # -- FLIP + COPY, one scheduler step: the routing entry flips,
            # every byte lands in its (busy) pre-allocated slot, and the
            # stale old-volume addresses leave the block map.  No client
            # I/O can interleave, and readers/writers racing the remaining
            # bookkeeping find busy blocks and wait for them.
            self._hit("migrate.flip.pre")
            placement.flip(file_id, new_home)
            if self.metadata is not None:
                # Same atomic step as the flip (append is synchronous and
                # non-durable): the journal never disagrees with memory
                # about the order of routing changes.
                self.metadata.journal_flip(file_id, new_home)
            for block_no, block, _shard in to_move:
                copy = copies.get(block_no)
                if copy is not None and block.data is not None and copy.data is not None:
                    copy.data[:] = block.data
            inode.drop_blocks_from(0)

            # -- DIRTY: publish each landing slot (mark dirty, clear busy)
            # and retire the old shard's now-redundant copy.
            for block_no, block, shard in to_move:
                copy = copies.get(block_no)
                if copy is None:  # already in the target shard
                    yield from target.mark_dirty(block)
                    block.busy = False
                else:
                    yield from target.mark_dirty(copy)
                    copy.busy = False
                    shard.mark_clean(block)
                    block.busy = False
                    shard.invalidate(block)
                    # Wake anyone parked on either shard's block-ready
                    # event so they re-look-up through the flipped routing.
                    target.notify_block_ready()
                    shard.notify_block_ready()
                self.blocks_copied += 1
            # Landing slots whose source vanished mid-protocol (truncate or
            # delete racing the pulls) were never published: drop them.
            published = {no for no, _b, _s in to_move}
            for block_no, copy in copies.items():
                if block_no not in published and target.peek(file_id, block_no) is copy:
                    copy.busy = False
                    target.invalidate(copy)
            self._hit("migrate.copy.post")
        except BaseException:
            release_pins()
            raise

        # Register the inode on its new home *before* flushing: the
        # writeback path re-reads an unloaded file's inode through the (now
        # flipped) routing, so the record must already exist there.
        yield from layout.write_inode(inode)

        # -- FLUSH: write the file out; the new volume assigns addresses.
        self._hit("migrate.flush.pre")
        yield from cache.flush_file(file_id)

        if self.metadata is not None:
            # Durability barrier before COMMIT.  The flush wrote the blocks,
            # but an LFS volume recovers only from its last checkpoint — so
            # checkpoint the new home first, *then* journal COMMIT.  Crash
            # before the COMMIT is durable: recovery routes to the old home,
            # whose on-disk state is untouched (RETIRE has not run).  Crash
            # after: recovery routes to the new home, whose copy is durable.
            if hasattr(new_sub, "checkpoint"):
                self._hit("migrate.checkpoint.pre")
                yield from new_sub.checkpoint()
            self._hit("migrate.commit.pre")
            yield from self.metadata.journal_commit(file_id)
            self._hit("migrate.commit.post")

        # -- RETIRE: free the old storage and the old inode record.
        self._hit("migrate.retire.pre")
        for volume in sorted(old_groups):
            shim = Inode(number=file_id, kind=inode.kind)
            shim.block_map = dict(old_groups[volume])
            yield from layout.sublayouts[volume].release_blocks(shim, 0)
        retire = Inode(number=file_id, kind=inode.kind)
        yield from old_sub.free_inode(retire)
        self._hit("migrate.retire.post")

        if self.metadata is not None:
            self.metadata.journal_end(file_id)
            yield from self.metadata.post_migration()

        self.migrations += 1
        self.schedule.append(
            Migration(
                time=self.scheduler.now,
                file_id=file_id,
                source=old_home,
                target=new_home,
                blocks=len(to_move),
            )
        )
        return True

    # ------------------------------------------------------------------ reporting

    def snapshot(self) -> dict:
        return {
            "rounds": self.rounds,
            "migrations": self.migrations,
            "blocks_copied": self.blocks_copied,
            "migrations_skipped": self.migrations_skipped,
            "displaced_files": self.placement.displaced_files,
        }
