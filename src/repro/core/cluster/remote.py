"""``RemoteVolume``: a volume whose block I/O crosses the network.

The storage layouts only ever talk to the :class:`~repro.core.storage.volume.Volume`
protocol, so putting a volume on another machine is one wrapper: every read
sends a request out of the front end's NIC and returns the data out of the
serving node's NIC; every write pushes the data out of the front end's NIC
and returns an acknowledgement.  Each crossing queues on the sending NIC
(bandwidth + per-message overhead) and then pays the propagation latency —
the same charged-time discipline the SCSI buses use, so network contention
surfaces in the measured latencies exactly like bus contention does.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.cluster.network import Nic
from repro.core.storage.volume import LocalVolume, Volume

__all__ = ["RemoteVolume"]


class RemoteVolume(Volume):
    """A volume served by another node over simulated network links.

    Parameters
    ----------
    backing:
        The serving node's local volume (holds the disks and queues).
    local_nic:
        The front end's NIC: requests and write payloads leave through it.
    remote_nic:
        The serving node's NIC: read payloads and acknowledgements leave
        through it.
    request_bytes:
        Size of a request/acknowledgement header message.
    scheduler / node / nics:
        Node-aware routing (cluster stacks): ``node`` is the volume's owner
        and ``nics`` the per-node interfaces.  Each access resolves the
        *accessor's* node from the scheduler's current thread — an access
        from the owner node (its flush daemon, cleaner, or a client homed
        there) goes straight to the backing volume, while a foreign access
        crosses the accessor's NIC out and the owner's NIC back.  Without a
        scheduler the wrapper is static: every access is charged the
        ``local_nic``/``remote_nic`` pair (the front-end-relative model).
    """

    def __init__(
        self,
        backing: LocalVolume,
        local_nic: Nic,
        remote_nic: Nic,
        request_bytes: int = 128,
        scheduler: Optional[Any] = None,
        node: int = 0,
        nics: Optional[list] = None,
    ):
        self.backing = backing
        self.local_nic = local_nic
        self.remote_nic = remote_nic
        self.request_bytes = request_bytes
        self.node = node
        self._scheduler = scheduler if nics else None
        self._nics = nics
        self.block_size = backing.block_size
        self.remote_reads = 0
        self.remote_writes = 0
        self.local_io = 0
        self.bytes_over_wire = 0

    def _route(self) -> Optional[tuple[Nic, Nic]]:
        """(outbound NIC, return NIC) for this access, or None if node-local."""
        scheduler = self._scheduler
        if scheduler is None:
            return self.local_nic, self.remote_nic
        current = scheduler.current_thread
        accessor = current.node if current is not None else 0
        if accessor == self.node:
            return None
        nics = self._nics
        return nics[accessor], nics[self.node]

    # -- shape (delegated) -------------------------------------------------------

    @property
    def total_blocks(self) -> int:
        return self.backing.total_blocks

    @property
    def num_disks(self) -> int:
        return self.backing.num_disks

    @property
    def drivers(self):
        return self.backing.drivers

    @property
    def sectors_per_block(self) -> int:
        return self.backing.sectors_per_block

    def disk_of(self, block_addr: int) -> int:
        return self.backing.disk_of(block_addr)

    def locate(self, block_addr: int):
        return self.backing.locate(block_addr)

    def blocks_on_disk(self, disk_index: int) -> range:
        return self.backing.blocks_on_disk(disk_index)

    # -- I/O ---------------------------------------------------------------------

    def read_run(self, block_addr: int, nblocks: int = 1) -> Generator[Any, Any, Optional[bytes]]:
        """Request out of the accessor's NIC, data back out of the owner's."""
        route = self._route()
        if route is None:
            self.local_io += 1
            return (yield from self.backing.read_run(block_addr, nblocks))
        out_nic, back_nic = route
        yield from out_nic.send(self.request_bytes)
        data = yield from self.backing.read_run(block_addr, nblocks)
        payload = nblocks * self.block_size
        yield from back_nic.send(payload)
        self.remote_reads += 1
        self.bytes_over_wire += self.request_bytes + payload
        return data

    def write_run(
        self, block_addr: int, nblocks: int, data: Optional[bytes]
    ) -> Generator[Any, Any, None]:
        """Data out of the accessor's NIC, acknowledgement back over the owner's."""
        route = self._route()
        if route is None:
            self.local_io += 1
            yield from self.backing.write_run(block_addr, nblocks, data)
            return
        out_nic, back_nic = route
        payload = nblocks * self.block_size
        yield from out_nic.send(self.request_bytes + payload)
        yield from self.backing.write_run(block_addr, nblocks, data)
        yield from back_nic.send(self.request_bytes)
        self.remote_writes += 1
        self.bytes_over_wire += 2 * self.request_bytes + payload

    def flush(self) -> Generator[Any, Any, None]:
        """One control round trip, then drain the remote disk queues."""
        route = self._route()
        if route is None:
            self.local_io += 1
            yield from self.backing.flush()
            return
        out_nic, back_nic = route
        yield from out_nic.send(self.request_bytes)
        yield from self.backing.flush()
        yield from back_nic.send(self.request_bytes)
        self.bytes_over_wire += 2 * self.request_bytes

    def snapshot(self) -> dict:
        return {
            "remote_reads": self.remote_reads,
            "remote_writes": self.remote_writes,
            "local_io": self.local_io,
            "bytes_over_wire": self.bytes_over_wire,
        }

    def __repr__(self) -> str:
        return (
            f"RemoteVolume(backing={self.backing!r}, "
            f"reads={self.remote_reads}, writes={self.remote_writes})"
        )
