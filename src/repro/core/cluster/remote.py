"""``RemoteVolume``: a volume whose block I/O crosses the network.

The storage layouts only ever talk to the :class:`~repro.core.storage.volume.Volume`
protocol, so putting a volume on another machine is one wrapper: every read
sends a request out of the front end's NIC and returns the data out of the
serving node's NIC; every write pushes the data out of the front end's NIC
and returns an acknowledgement.  Each crossing queues on the sending NIC
(bandwidth + per-message overhead) and then pays the propagation latency —
the same charged-time discipline the SCSI buses use, so network contention
surfaces in the measured latencies exactly like bus contention does.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.cluster.network import Nic
from repro.core.storage.volume import LocalVolume, Volume

__all__ = ["RemoteVolume"]


class RemoteVolume(Volume):
    """A volume served by another node over simulated network links.

    Parameters
    ----------
    backing:
        The serving node's local volume (holds the disks and queues).
    local_nic:
        The front end's NIC: requests and write payloads leave through it.
    remote_nic:
        The serving node's NIC: read payloads and acknowledgements leave
        through it.
    request_bytes:
        Size of a request/acknowledgement header message.
    """

    def __init__(
        self,
        backing: LocalVolume,
        local_nic: Nic,
        remote_nic: Nic,
        request_bytes: int = 128,
    ):
        self.backing = backing
        self.local_nic = local_nic
        self.remote_nic = remote_nic
        self.request_bytes = request_bytes
        self.block_size = backing.block_size
        self.remote_reads = 0
        self.remote_writes = 0
        self.bytes_over_wire = 0

    # -- shape (delegated) -------------------------------------------------------

    @property
    def total_blocks(self) -> int:
        return self.backing.total_blocks

    @property
    def num_disks(self) -> int:
        return self.backing.num_disks

    @property
    def drivers(self):
        return self.backing.drivers

    @property
    def sectors_per_block(self) -> int:
        return self.backing.sectors_per_block

    def disk_of(self, block_addr: int) -> int:
        return self.backing.disk_of(block_addr)

    def locate(self, block_addr: int):
        return self.backing.locate(block_addr)

    def blocks_on_disk(self, disk_index: int) -> range:
        return self.backing.blocks_on_disk(disk_index)

    # -- I/O ---------------------------------------------------------------------

    def read_run(self, block_addr: int, nblocks: int = 1) -> Generator[Any, Any, Optional[bytes]]:
        """Request out of the local NIC, data back out of the remote NIC."""
        yield from self.local_nic.send(self.request_bytes)
        data = yield from self.backing.read_run(block_addr, nblocks)
        payload = nblocks * self.block_size
        yield from self.remote_nic.send(payload)
        self.remote_reads += 1
        self.bytes_over_wire += self.request_bytes + payload
        return data

    def write_run(
        self, block_addr: int, nblocks: int, data: Optional[bytes]
    ) -> Generator[Any, Any, None]:
        """Data out of the local NIC, acknowledgement back over the remote."""
        payload = nblocks * self.block_size
        yield from self.local_nic.send(self.request_bytes + payload)
        yield from self.backing.write_run(block_addr, nblocks, data)
        yield from self.remote_nic.send(self.request_bytes)
        self.remote_writes += 1
        self.bytes_over_wire += 2 * self.request_bytes + payload

    def flush(self) -> Generator[Any, Any, None]:
        """One control round trip, then drain the remote disk queues."""
        yield from self.local_nic.send(self.request_bytes)
        yield from self.backing.flush()
        yield from self.remote_nic.send(self.request_bytes)
        self.bytes_over_wire += 2 * self.request_bytes

    def snapshot(self) -> dict:
        return {
            "remote_reads": self.remote_reads,
            "remote_writes": self.remote_writes,
            "bytes_over_wire": self.bytes_over_wire,
        }

    def __repr__(self) -> str:
        return (
            f"RemoteVolume(backing={self.backing!r}, "
            f"reads={self.remote_reads}, writes={self.remote_writes})"
        )
