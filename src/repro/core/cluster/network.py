"""The cluster interconnect: a per-node network interface model.

Modelled exactly like :class:`repro.patsy.bus.ScsiBus` — the *connection*
helper component of Section 3, one level up: a NIC is a capacity-1 resource
that a message holds for its serialisation time (per-message overhead plus
bytes over bandwidth), so concurrent senders queue and the contention shows
up in the latency distributions.  Propagation latency is charged *after*
the NIC is released — the wire is pipelined, only the interface serialises.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.scheduler import Scheduler
from repro.core.sync import Resource
from repro.errors import ConfigurationError
from repro.units import MB

__all__ = ["Nic"]


class Nic:
    """One node's network interface: bandwidth, latency and queueing."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "nic0",
        bandwidth: float = 100 * MB,
        latency: float = 0.0002,
        overhead: float = 0.00005,
    ):
        if bandwidth <= 0:
            raise ConfigurationError("NIC bandwidth must be positive")
        if latency < 0 or overhead < 0:
            raise ConfigurationError("NIC latency/overhead cannot be negative")
        self.scheduler = scheduler
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = latency
        self.overhead = overhead
        self._resource = Resource(scheduler, capacity=1, name=name)
        self.bytes_sent = 0
        self.messages = 0
        self.busy_time = 0.0

    # -- timing ------------------------------------------------------------------

    def serialisation_time(self, nbytes: int) -> float:
        return self.overhead + nbytes / self.bandwidth

    # -- use ---------------------------------------------------------------------

    def send(self, nbytes: int) -> Generator[Any, Any, None]:
        """Transmit a message of ``nbytes`` out of this NIC.

        Holds the interface for the serialisation time (queueing behind any
        other sender on this node), then charges the one-way propagation
        latency without holding it.
        """
        yield from self._resource.acquire()
        started = self.scheduler.now
        try:
            yield from self.scheduler.sleep(self.serialisation_time(nbytes))
        finally:
            self.busy_time += self.scheduler.now - started
            self._resource.release()
        self.bytes_sent += nbytes
        self.messages += 1
        if self.latency > 0:
            yield from self.scheduler.sleep(self.latency)

    # -- statistics ----------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    @property
    def mean_wait_time(self) -> float:
        return self._resource.mean_wait_time

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the interface was serialising."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "busy_time": self.busy_time,
            "mean_wait_time": self.mean_wait_time,
        }

    def __repr__(self) -> str:
        return f"Nic({self.name!r}, messages={self.messages})"
