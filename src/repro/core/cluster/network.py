"""The cluster interconnect: a per-node network interface model.

Modelled exactly like :class:`repro.patsy.bus.ScsiBus` — the *connection*
helper component of Section 3, one level up: a NIC is a capacity-1 resource
that a message holds for its serialisation time (per-message overhead plus
bytes over bandwidth), so concurrent senders queue and the contention shows
up in the latency distributions.  Propagation latency is charged *after*
the NIC is released — the wire is pipelined, only the interface serialises.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.scheduler import Delay, Scheduler
from repro.core.sync import Resource
from repro.errors import ConfigurationError
from repro.units import MB

__all__ = ["Nic"]


class Nic:
    """One node's network interface: bandwidth, latency and queueing."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "nic0",
        bandwidth: float = 100 * MB,
        latency: float = 0.0002,
        overhead: float = 0.00005,
    ):
        if bandwidth <= 0:
            raise ConfigurationError("NIC bandwidth must be positive")
        if latency < 0 or overhead < 0:
            raise ConfigurationError("NIC latency/overhead cannot be negative")
        self.scheduler = scheduler
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = latency
        self.overhead = overhead
        self._resource = Resource(scheduler, capacity=1, name=name)
        self.bytes_sent = 0
        self.messages = 0
        self.busy_time = 0.0

    # -- timing ------------------------------------------------------------------

    def serialisation_time(self, nbytes: int) -> float:
        return self.overhead + nbytes / self.bandwidth

    @property
    def lookahead(self) -> float:
        """Minimum in-flight time of any message through this NIC.

        Per-message overhead plus propagation latency — the serialisation
        term only grows with the payload, so this is a hard lower bound on
        how long any cross-node interaction stays invisible to the peer.
        Conservative parallel replay (:mod:`repro.core.parallel`) uses it as
        the Chandy–Misra lookahead: a node granted time ``T`` may run freely
        to ``T + lookahead`` without waiting for new messages.
        """
        return self.overhead + self.latency

    def earliest_delivery(self, now: Optional[float] = None) -> float:
        """Earliest time a message sent through this NIC from ``now`` (default:
        the current scheduler time) can reach its destination."""
        if now is None:
            now = self.scheduler.now
        return now + self.lookahead

    # -- use ---------------------------------------------------------------------

    def send(self, nbytes: int) -> Generator[Any, Any, None]:
        """Transmit a message of ``nbytes`` out of this NIC.

        Holds the interface for the serialisation time (queueing behind any
        other sender on this node), then charges the one-way propagation
        latency without holding it.
        """
        yield from self._resource.acquire()
        hold = self.serialisation_time(nbytes)
        try:
            yield Delay(hold)
        except BaseException:
            self._resource.release()
            raise
        # An uninterrupted Delay advances the clock by exactly ``hold``.
        self.busy_time += hold
        self._resource.release()
        self.bytes_sent += nbytes
        self.messages += 1
        if self.latency > 0:
            yield Delay(self.latency)

    # -- statistics ----------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    @property
    def mean_wait_time(self) -> float:
        return self._resource.mean_wait_time

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the interface was serialising."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "busy_time": self.busy_time,
            "mean_wait_time": self.mean_wait_time,
        }

    def __repr__(self) -> str:
        return f"Nic({self.name!r}, messages={self.messages})"
