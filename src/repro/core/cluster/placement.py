"""``ClusterPlacement``: the routing tier above the array's placement.

The array's placement policies (hash / stripe / directory-affinity) are
pure arithmetic: a file's home volume is encoded in its inode number, so
routing needs no table.  A cluster must be able to *change* a file's home —
that is what rebalancing is — so this tier adds exactly one thing on top of
an inner policy: a routing table of overrides.  A file without an entry
routes by the inner policy's arithmetic (the common case stays O(1) and
table-free); a migrated file routes by its entry.  Flipping an entry is a
single dictionary store, which under the cooperative scheduler makes the
switch atomic — no I/O can interleave with it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.inode import FileKind
from repro.core.storage.array import PlacementPolicy
from repro.errors import ConfigurationError

__all__ = ["ClusterPlacement"]

#: WAL replica-set records pack each volume index into one byte (offset by
#: one so zero terminates the list), so replicated clusters are bounded.
MAX_REPLICA_VOLUME = 254


class ClusterPlacement(PlacementPolicy):
    """An inner placement policy plus a migration routing table.

    ``nodes`` machines each own ``volumes_per_node`` consecutive volumes
    (node ``n`` owns ``[n * vpn, (n + 1) * vpn)``); the inner policy is
    built over the *total* volume count, so its statistical spread covers
    the whole cluster.
    """

    name = "cluster"

    def __init__(
        self,
        inner: PlacementPolicy,
        nodes: int,
        volumes_per_node: int,
        replicas: int = 0,
    ):
        if nodes < 1 or volumes_per_node < 1:
            raise ConfigurationError("cluster placement needs at least one node and volume")
        if inner.num_volumes != nodes * volumes_per_node:
            raise ConfigurationError(
                f"inner placement covers {inner.num_volumes} volumes, "
                f"but {nodes} nodes x {volumes_per_node} volumes were configured"
            )
        if replicas < 0:
            raise ConfigurationError("replicas cannot be negative")
        if replicas > 0:
            # Replicas never share a failure domain with the primary: with
            # several nodes the domain is the node, with one node it is the
            # volume, so each copy needs a domain of its own.
            domains = nodes if nodes > 1 else volumes_per_node
            if replicas >= domains:
                raise ConfigurationError(
                    f"{replicas} replicas need at least {replicas + 1} "
                    f"failure domains, but this cluster has {domains}"
                )
            if inner.num_volumes - 1 > MAX_REPLICA_VOLUME:
                raise ConfigurationError(
                    f"replication supports at most {MAX_REPLICA_VOLUME + 1} volumes "
                    "(replica-set journal records pack one volume per byte)"
                )
        super().__init__(inner.num_volumes)
        self.inner = inner
        self.nodes = nodes
        self.volumes_per_node = volumes_per_node
        self.replicas = replicas
        #: the routing table: file id -> migrated home volume.
        self._overrides: Dict[int, int] = {}
        #: replica routing table: file id -> explicit replica volumes.
        #: Files without an entry derive their set from the default rule.
        self._replica_overrides: Dict[int, Tuple[int, ...]] = {}
        #: called with the file id whenever an *existing* entry is dropped
        #: by :meth:`forget` (the metadata tier journals a FORGET record).
        self._forget_hook: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------ topology

    def node_of_volume(self, volume: int) -> int:
        return volume // self.volumes_per_node

    def node_of_file(self, file_id: int) -> int:
        return self.node_of_volume(self.volume_of_file(file_id))

    def volumes_of_node(self, node: int) -> range:
        start = node * self.volumes_per_node
        return range(start, start + self.volumes_per_node)

    # ------------------------------------------------------------------ routing

    def home_for_new_file(
        self,
        parent_id: Optional[int],
        name: Optional[str],
        counter: int,
        kind: Optional[FileKind] = None,
    ) -> int:
        return self.inner.home_for_new_file(parent_id, name, counter, kind=kind)

    def volume_of_file(self, file_id: int) -> int:
        home = self._overrides.get(file_id)
        if home is not None:
            return home
        return self.inner.volume_of_file(file_id)

    def volume_for_block(self, file_id: int, block_no: int) -> int:
        # Migrated files are whole-file resident on their new home: a
        # striped file collapses onto one volume when it migrates (the
        # migration copies every live block there).
        home = self._overrides.get(file_id)
        if home is not None:
            return home
        return self.inner.volume_for_block(file_id, block_no)

    # ------------------------------------------------------------------ migration

    def migrated_home(self, file_id: int) -> Optional[int]:
        """The override for ``file_id``, or None when it routes natively."""
        return self._overrides.get(file_id)

    def flip(self, file_id: int, new_volume: int) -> None:
        """Atomically repoint ``file_id`` at ``new_volume``.

        A flip back to the file's native arithmetic home removes the entry,
        so the table only ever holds genuinely displaced files.
        """
        if not (0 <= new_volume < self.num_volumes):
            raise ConfigurationError(f"no volume {new_volume} in this cluster")
        whole_file = (
            type(self.inner).volume_for_block is PlacementPolicy.volume_for_block
        )
        if whole_file and new_volume == self.inner.volume_of_file(file_id):
            # Back on the native home of a whole-file policy: no entry
            # needed.  Striped files keep one (their native routing rotates
            # per block, but a migrated file is whole-file resident).
            self._overrides.pop(file_id, None)
            return
        self._overrides[file_id] = new_volume

    def forget(self, file_id: int) -> None:
        """Drop the routing entries of a deleted file.

        The forget hook only fires when an entry actually existed: files
        that never migrated leave no trace in the journal (keeping an idle
        metadata tier byte-invisible — the one-node equivalence pin).  One
        FORGET record covers both tables: recovery clears the replica
        override together with the home override.
        """
        dropped = self._overrides.pop(file_id, None) is not None
        dropped |= self._replica_overrides.pop(file_id, None) is not None
        if dropped and self._forget_hook is not None:
            self._forget_hook(file_id)

    def set_forget_hook(self, hook: Optional[Callable[[int], None]]) -> None:
        self._forget_hook = hook

    # ------------------------------------------------------------------ replication

    def default_replica_set(self, file_id: int) -> Tuple[int, ...]:
        """The arithmetic replica homes of ``file_id`` (no table entry).

        Derived from the *native* primary — ``inner.volume_of_file``, not
        the override table — so the set is stable under migration flips.
        With several nodes, replica ``i`` lives on the same volume slot of
        the ``i``-th next node (distinct nodes, hence distinct volumes);
        with one node it lives on the ``i``-th next volume.
        """
        if self.replicas == 0:
            return ()
        primary = self.inner.volume_of_file(file_id)
        vpn = self.volumes_per_node
        if self.nodes > 1:
            node, slot = divmod(primary, vpn)
            return tuple(
                ((node + i) % self.nodes) * vpn + slot
                for i in range(1, self.replicas + 1)
            )
        return tuple(
            (primary + i) % self.num_volumes for i in range(1, self.replicas + 1)
        )

    def replica_set(self, file_id: int) -> Tuple[int, ...]:
        """The volumes holding replicas of ``file_id`` (primary excluded)."""
        if self.replicas == 0:
            return ()
        entry = self._replica_overrides.get(file_id)
        if entry is not None:
            return entry
        return self.default_replica_set(file_id)

    def set_replica_set(self, file_id: int, volumes: Tuple[int, ...]) -> None:
        """Repoint ``file_id``'s replicas (repair installs new homes).

        Like :meth:`flip`, setting the default rule's answer removes the
        entry so the table only holds genuinely repaired files.
        """
        for volume in volumes:
            if not (0 <= volume < self.num_volumes):
                raise ConfigurationError(f"no volume {volume} in this cluster")
        volumes = tuple(volumes)
        if volumes == self.default_replica_set(file_id):
            self._replica_overrides.pop(file_id, None)
        else:
            self._replica_overrides[file_id] = volumes

    def replication_conflict(self, file_id: int, volume: int) -> bool:
        """Would homing ``file_id``'s primary on ``volume`` collide with one
        of its replicas (same volume, or same node when nodes > 1)?

        The rebalancer consults this before migrating: a primary landing on
        a replica's sub-layout would collide with the shadow inode that
        already carries the file's inode number there.
        """
        if self.replicas == 0:
            return False
        rset = self.replica_set(file_id)
        if volume in rset:
            return True
        if self.nodes > 1:
            node = self.node_of_volume(volume)
            return any(self.node_of_volume(r) == node for r in rset)
        return False

    # ------------------------------------------------------------------ durability

    def load_overrides(self, overrides: Dict[int, int]) -> None:
        """Replace the whole routing table (recovery: the manifest snapshot
        is authoritative for everything up to its checkpoint LSN)."""
        for volume in overrides.values():
            if not (0 <= volume < self.num_volumes):
                raise ConfigurationError(f"no volume {volume} in this cluster")
        self._overrides = dict(overrides)

    def overrides_snapshot(self) -> Dict[int, int]:
        """A copy of the routing table (checkpoint: what the manifest saves)."""
        return dict(self._overrides)

    def load_replicas(self, replicas: Dict[int, Tuple[int, ...]]) -> None:
        """Replace the replica routing table (recovery)."""
        for volumes in replicas.values():
            for volume in volumes:
                if not (0 <= volume < self.num_volumes):
                    raise ConfigurationError(f"no volume {volume} in this cluster")
        self._replica_overrides = {fid: tuple(vols) for fid, vols in replicas.items()}

    def replica_snapshot(self) -> Dict[int, Tuple[int, ...]]:
        """A copy of the replica routing table (checkpoint)."""
        return dict(self._replica_overrides)

    @property
    def displaced_files(self) -> int:
        return len(self._overrides)

    @property
    def repaired_files(self) -> int:
        return len(self._replica_overrides)

    def snapshot(self) -> dict:
        snap = {
            "inner": self.inner.name,
            "nodes": self.nodes,
            "volumes_per_node": self.volumes_per_node,
            "displaced_files": self.displaced_files,
        }
        if self.replicas:
            snap["replicas"] = self.replicas
            snap["repaired_files"] = self.repaired_files
        return snap
