"""n-way replication: shadow copies, read fail-over, re-replication.

The cluster keeps ``k`` extra copies of every file (``ClusterConfig.
replicas``).  Each copy is a *shadow inode* on a replica volume: the same
inode number, registered in that volume's sub-layout, but carrying its own
block map of replica-local addresses — exactly the mechanism PR 5's
migration uses to let an LFS sub-layout host a foreign file.  Which
volumes hold the copies is the placement tier's business
(:meth:`~repro.core.cluster.placement.ClusterPlacement.replica_set`):
derived arithmetically from the file's *native* home (so the default needs
no table and no journal), overridden per file only when repair moves a
copy (journalled as an RSET record under the same durable-COMMIT rule as
migration flips).

Three moving parts, all owned by this module:

* :class:`ReplicaManager` — the data-path half.  The routed layout calls
  it after every primary write (fan the blocks out to the shadows; writes
  to an unavailable volume are dropped and the copy marked *stale*) and
  when a read addresses an unavailable volume (iterate the surviving
  fresh copies, serve from the first one).  Replica I/O goes through the
  serving volumes' ``RemoteVolume`` wrappers, so every copy crossing a
  machine boundary is charged to the NICs like any other remote I/O.
* :class:`ReplicationRepairer` — the control-loop half.  A daemon that
  watches the fault board's epoch and, per damaged file: promotes a
  surviving replica to primary when the primary's volume died (flush →
  atomic flip+RSET in one scheduler step → checkpoint → COMMIT, riding
  the metadata tier's migration rule), then re-replicates missing or
  stale copies onto replacement volumes (copy-forward block by block,
  checkpoint the target, RSET + COMMIT).
* fail-over reads themselves never touch the dead volume: the tests prove
  it by scrubbing the dead volume's disk image to zeros at kill time.

Fencing caveat (documented, by design): a volume's death is *runtime*
state — it does not survive a whole-stack crash.  Writes issued after a
kill land only on the surviving copies, so if the stack then power-fails
before the repairer promoted the survivor, recovery routes the file back
to its old (revived) primary, which misses those post-kill writes.  The
recovery matrix therefore crashes at repair boundaries, not between a
kill and un-repaired post-kill writes.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.core.blocks import CacheBlock
from repro.core.inode import Inode
from repro.errors import DataUnavailable, StorageError

__all__ = ["ReplicaManager", "ReplicationRepairer"]


def _choose_spare_volume(
    placement: Any, faults: Any, primary: int, occupied: Tuple[int, ...]
) -> Optional[int]:
    """A live volume in a failure domain neither the primary nor any
    volume in ``occupied`` already uses (lowest index wins, so every
    chooser in the module picks deterministically)."""
    if placement.nodes > 1:
        used_nodes = {placement.node_of_volume(primary)}
        used_nodes.update(placement.node_of_volume(v) for v in occupied)
        for volume in range(placement.num_volumes):
            if faults.volume_unavailable(volume):
                continue
            if placement.node_of_volume(volume) in used_nodes:
                continue
            return volume
        return None
    for volume in range(placement.num_volumes):
        if faults.volume_unavailable(volume):
            continue
        if volume == primary or volume in occupied:
            continue
        return volume
    return None

#: inode attributes mirrored into shadows (everything but the number and
#: the block map, which are the shadow's own).
_MIRRORED_ATTRS = (
    "kind",
    "size",
    "nlink",
    "uid",
    "gid",
    "mode",
    "atime",
    "mtime",
    "ctime",
    "generation",
    "symlink_target",
)


class ReplicaManager:
    """The data-path half of replication: shadow writes and fail-over reads.

    Owned by the routed layout (``layout.replication``); every method that
    touches a device is a scheduler generator, called from inside the
    layout's own read/write paths.
    """

    def __init__(self, scheduler: Any, layout: Any, placement: Any, faults: Any):
        self.scheduler = scheduler
        self.layout = layout
        self.placement = placement
        self.faults = faults
        #: metadata tier for journalling creation-time RSET overrides
        #: (wired by the builder when the cluster keeps a durable tier).
        self.metadata: Any = None
        #: shadow inodes by (file id, replica volume).
        self._shadows: Dict[Tuple[int, int], Inode] = {}
        #: the live primary inode object per replicated file — the object
        #: the file system holds, so promotion can swap its block map.
        self._primaries: Dict[int, Inode] = {}
        #: copies that missed writes while their volume was unavailable;
        #: never served until repair re-syncs them.
        self._stale: Set[Tuple[int, int]] = set()
        #: every file that ever replicated a write (the repairer's scan set).
        self.files: Set[int] = set()
        # -- counters
        self.replicated_block_writes = 0
        self.replicated_inode_writes = 0
        self.dropped_replica_writes = 0
        self.failover_reads = 0
        self.failovers_by_node: Dict[int, int] = {}

    # ------------------------------------------------------------------ shadows

    def is_stale(self, file_id: int, volume: int) -> bool:
        return (file_id, volume) in self._stale

    def _shadow(
        self, file_id: int, volume: int, like: Optional[Inode] = None
    ) -> Generator[Any, Any, Optional[Inode]]:
        """The shadow inode of ``file_id`` on ``volume``; created fresh when
        ``like`` is given, loaded from the sub-layout after a remount."""
        shadow = self._shadows.get((file_id, volume))
        if shadow is None:
            sub = self.layout.sublayouts[volume]
            # LFS sub-layouts expose an O(1) owner-bloom probe: a False is
            # authoritative, so the doomed read_inode attempt (a disk read
            # that ends in StorageError) can be skipped outright.
            probe = getattr(sub, "may_contain_inode", None)
            if probe is not None and not probe(file_id):
                if like is None:
                    return None
                shadow = Inode(number=file_id, kind=like.kind)
            else:
                try:
                    shadow = yield from sub.read_inode(file_id)
                except StorageError:
                    if like is None:
                        return None
                    shadow = Inode(number=file_id, kind=like.kind)
            self._shadows[(file_id, volume)] = shadow
        return shadow

    def _mirror_attrs(self, primary: Inode, shadow: Inode) -> None:
        for attr in _MIRRORED_ATTRS:
            setattr(shadow, attr, getattr(primary, attr))

    def _track(self, inode: Inode) -> None:
        self.files.add(inode.number)
        self._primaries[inode.number] = inode

    def _adopt_live_rset(
        self, file_id: int, rset: Tuple[int, ...]
    ) -> Generator[Any, Any, Tuple[int, ...]]:
        """Swap dead volumes out of a *new* file's replica set.

        Placement's arithmetic default is fault-blind: a file born while
        its default replica volume is dead would miss that copy from its
        first write — and when its primary is dead too, the bytes would
        land nowhere at all, a loss no later repair can undo.  So the
        first replication of a file under active faults re-homes dead
        default volumes onto live spare domains, journalling the override
        exactly like a repair (RSET + durable COMMIT) so routing and
        copies still agree after a crash.

        A file born behind a *dead primary* starts life one copy short no
        matter how live its replicas are, so it gets one extra replica
        home — the full ``1 + k`` live-copy count — until the repairer
        promotes a survivor (promotion consumes the surplus entry).
        """
        primary = self.placement.volume_of_file(file_id)
        primary_dead = self.faults.volume_unavailable(primary)
        live = [v for v in rset if not self.faults.volume_unavailable(v)]
        target = self.placement.replicas + (1 if primary_dead else 0)
        while len(live) < target:
            spare = _choose_spare_volume(
                self.placement, self.faults, primary, tuple(live)
            )
            if spare is None:
                break  # no spare domain: stay short until a heal frees one
            live.append(spare)
        new_rset = tuple(live)
        if new_rset == rset:
            return rset
        self.placement.set_replica_set(file_id, new_rset)
        if self.metadata is not None:
            self.metadata.journal_rset(file_id, new_rset)
            yield from self.metadata.journal_commit(file_id)
        return new_rset

    # ------------------------------------------------------------------ write path

    def replicate_writes(
        self, inode: Inode, blocks: List[Tuple[int, CacheBlock]]
    ) -> Generator[Any, Any, None]:
        """Fan a primary write out to every replica volume.

        Copies on unavailable volumes miss the write: it is dropped,
        counted, and the copy marked stale so fail-over never serves it.
        """
        rset = self.placement.replica_set(inode.number)
        if not rset:
            return
        new_file = inode.number not in self.files
        self._track(inode)
        if new_file and self.faults.active:
            rset = yield from self._adopt_live_rset(inode.number, rset)
        faults = self.faults
        for volume in rset:
            if faults.active and faults.volume_unavailable(volume):
                self._stale.add((inode.number, volume))
                self.dropped_replica_writes += len(blocks)
                faults.note_dropped_write(volume, len(blocks))
                continue
            if faults.active:
                extra = faults.extra_delay(volume)
                if extra:
                    yield from self.scheduler.sleep(extra)
            shadow = yield from self._shadow(inode.number, volume, like=inode)
            self._mirror_attrs(inode, shadow)
            sub = self.layout.sublayouts[volume]
            yield from sub.write_file_blocks(shadow, blocks)
            yield from sub.write_inode(shadow)
            self.replicated_block_writes += len(blocks)

    def replicate_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        """Mirror an inode write (attributes) to every available copy."""
        rset = self.placement.replica_set(inode.number)
        if not rset:
            return
        new_file = inode.number not in self.files
        self._track(inode)
        if new_file and self.faults.active:
            rset = yield from self._adopt_live_rset(inode.number, rset)
        faults = self.faults
        for volume in rset:
            if faults.active and faults.volume_unavailable(volume):
                self._stale.add((inode.number, volume))
                faults.note_dropped_write(volume)
                continue
            shadow = yield from self._shadow(inode.number, volume, like=inode)
            self._mirror_attrs(inode, shadow)
            yield from self.layout.sublayouts[volume].write_inode(shadow)
            self.replicated_inode_writes += 1

    # ------------------------------------------------------------------ read path

    def _live_copies(self, file_id: int) -> List[int]:
        """Replica volumes that can serve ``file_id`` right now."""
        faults = self.faults
        return [
            volume
            for volume in self.placement.replica_set(file_id)
            if not faults.volume_unavailable(volume)
            and (file_id, volume) not in self._stale
        ]

    def _count_failover(self, failed_volume: int) -> None:
        self.failover_reads += 1
        node = self.faults.node_of_volume(failed_volume)
        self.failovers_by_node[node] = self.failovers_by_node.get(node, 0) + 1

    def read_failover(
        self, inode: Inode, block_no: int, block: CacheBlock, failed_volume: int
    ) -> Generator[Any, Any, bool]:
        """Serve one block from a surviving fresh copy, or raise
        :class:`DataUnavailable` when none is left.

        In the simulated world a missing shadow is created on demand: a
        pre-existing (materialized) file's bytes predate the trace, so in
        a replicated cluster its copies predate it too — the replica sub
        then synthesizes the read exactly like the primary would have."""
        like = inode if self.layout.simulated else None
        if like is not None and inode.number not in self.files and self.faults.active:
            # First touch of a materialized file under active faults: the
            # file enters the simulation *now*, so give it the same
            # fault-aware replica homes a freshly written file would get —
            # its synthetic bytes can be served from any live copy.
            self._track(inode)
            yield from self._adopt_live_rset(
                inode.number, self.placement.replica_set(inode.number)
            )
        for volume in self._live_copies(inode.number):
            shadow = yield from self._shadow(inode.number, volume, like=like)
            if shadow is None:
                continue
            result = yield from self.layout.sublayouts[volume].read_file_block(
                shadow, block_no, block
            )
            self._count_failover(failed_volume)
            return result
        raise DataUnavailable(
            f"block {block_no} of file {inode.number} lives on unavailable "
            f"volume {failed_volume} and no surviving replica holds a copy"
        )

    def read_inode_failover(
        self, inode_number: int, failed_volume: int
    ) -> Generator[Any, Any, Inode]:
        """Serve an inode read from a surviving fresh copy's shadow."""
        for volume in self._live_copies(inode_number):
            shadow = yield from self._shadow(inode_number, volume)
            if shadow is None:
                continue
            self._count_failover(failed_volume)
            return shadow
        raise DataUnavailable(
            f"inode {inode_number} lives on unavailable volume "
            f"{failed_volume} and no surviving replica holds a copy"
        )

    # ------------------------------------------------------------------ deletion

    def free_replicas(self, inode: Inode) -> Generator[Any, Any, None]:
        """Release every copy of a deleted file (dead volumes skipped —
        their bytes are gone anyway)."""
        rset = self.placement.replica_set(inode.number)
        for volume in rset:
            self._stale.discard((inode.number, volume))
            shadow = self._shadows.pop((inode.number, volume), None)
            if self.faults.active and self.faults.volume_unavailable(volume):
                continue
            sub = self.layout.sublayouts[volume]
            if shadow is None:
                try:
                    shadow = yield from sub.read_inode(inode.number)
                except StorageError:
                    continue
            yield from sub.free_inode(shadow)
        self.files.discard(inode.number)
        self._primaries.pop(inode.number, None)

    # ------------------------------------------------------------------ reporting

    def under_replicated_files(self) -> int:
        """Files with fewer live, fresh copies — the primary counts as a
        copy — than the configured ``1 + replicas``.  A dead primary, a
        dead or stale replica, and a promotion-shrunk set all qualify
        until repair restores the full count."""
        faults = self.faults
        target = self.placement.replicas + 1
        count = 0
        for file_id in self.files:
            primary = self.placement.volume_of_file(file_id)
            live = 0 if faults.volume_unavailable(primary) else 1
            live += sum(
                1
                for volume in self.placement.replica_set(file_id)
                if not faults.volume_unavailable(volume)
                and (file_id, volume) not in self._stale
            )
            if live < target:
                count += 1
        return count

    def snapshot(self) -> dict:
        return {
            "replicas": self.placement.replicas,
            "replicated_files": len(self.files),
            "replicated_block_writes": self.replicated_block_writes,
            "replicated_inode_writes": self.replicated_inode_writes,
            "dropped_replica_writes": self.dropped_replica_writes,
            "failover_reads": self.failover_reads,
            "stale_copies": len(self._stale),
            "under_replicated_files": self.under_replicated_files(),
        }


class ReplicationRepairer:
    """Re-replicates damaged files after the fault harness strikes.

    A polling daemon (``ClusterConfig.repair_interval``) that re-scans the
    replicated file set whenever the fault board's epoch moves.  Per file:

    1. **promote** — primary volume unavailable: flush the file (pushing
       its dirty blocks to the surviving copies), then in one atomic
       scheduler step flip the routing to the chosen survivor and repoint
       the replica set (FLIP + RSET journalled), swap the in-memory
       primary's block map to the shadow's, checkpoint the new home, and
       journal COMMIT — the exact durability discipline of a migration.
    2. **re-replicate** — for each dead or stale copy: pick a replacement
       volume in an unused failure domain, copy the file forward block by
       block from a live source, checkpoint the target, journal
       RSET + COMMIT, and clear the stale mark.
    """

    def __init__(
        self,
        scheduler: Any,
        layout: Any,
        placement: Any,
        manager: ReplicaManager,
        faults: Any,
        cache: Any,
        fs: Any = None,
        metadata: Any = None,
        interval: float = 1.0,
        workers: int = 1,
        crashpoints: Any = None,
    ):
        self.scheduler = scheduler
        self.layout = layout
        self.placement = placement
        self.manager = manager
        self.faults = faults
        self.cache = cache
        self.fs = fs
        self.metadata = metadata
        self.interval = interval
        self.workers = max(1, workers)
        self.crashpoints = crashpoints
        self._seen_epoch = 0
        # -- counters
        self.scans = 0
        self.promoted_files = 0
        self.repaired_copies = 0
        self.blocks_copied = 0
        self.bytes_copied = 0
        self.lost_files = 0
        self.repairs_by_node: Dict[int, int] = {}

    def _hit(self, point: str) -> None:
        if self.crashpoints is not None:
            self.crashpoints.hit(point)

    # ------------------------------------------------------------------ the daemon

    def run(self) -> Generator[Any, Any, None]:
        while True:
            yield from self.scheduler.sleep(self.interval)
            while self.faults.epoch != self._seen_epoch:
                self._seen_epoch = self.faults.epoch
                yield from self.repair_all()
            # Damage also accrues *between* epochs: every write dropped on
            # a dead replica volume marks a copy stale, and files keep
            # being created while hardware is down.  Keep scanning until
            # the file set is fully replicated again (or nothing more can
            # be done with the surviving failure domains).
            if self.faults.active and self.manager.under_replicated_files():
                yield from self.repair_all()

    def repair_all(self) -> Generator[Any, Any, None]:
        """One full scan over the replicated file set.

        With ``workers > 1`` the scan is sharded round-robin across that
        many repair threads, so re-replication overlaps disk queueing
        instead of serializing behind it — the difference between beating
        the next failure to the remaining copies and losing the race.
        """
        self.scans += 1
        files = sorted(self.manager.files)
        if self.workers <= 1 or len(files) <= 1:
            for file_id in files:
                yield from self.repair_file(file_id)
            return
        shards = [files[i :: self.workers] for i in range(self.workers)]
        threads = [
            self.scheduler.spawn(
                self._repair_shard(shard), name=f"repair-w{i}", daemon=True, node=0
            )
            for i, shard in enumerate(shards)
            if shard
        ]
        for thread in threads:
            yield from thread.join()

    def _repair_shard(self, shard) -> Generator[Any, Any, None]:
        for file_id in shard:
            yield from self.repair_file(file_id)

    # ------------------------------------------------------------------ per file

    def repair_file(self, file_id: int) -> Generator[Any, Any, None]:
        placement, faults = self.placement, self.faults
        primary = placement.volume_of_file(file_id)
        rset = placement.replica_set(file_id)
        if faults.volume_unavailable(primary):
            promoted = yield from self._promote(file_id, rset)
            if not promoted:
                self.lost_files += 1
                return
            primary = placement.volume_of_file(file_id)
            rset = placement.replica_set(file_id)
        damaged = [
            volume
            for volume in rset
            if faults.volume_unavailable(volume) or self.manager.is_stale(file_id, volume)
        ]
        for bad in damaged:
            if faults.volume_unavailable(bad):
                replacement = self._choose_replacement(file_id, primary, rset)
                if replacement is None:
                    # No spare failure domain left: the file stays
                    # under-replicated until a future heal frees one.
                    continue
            else:
                replacement = bad  # stale but alive: re-sync in place
            done = yield from self._clone(file_id, primary, bad, replacement, rset)
            if done:
                rset = placement.replica_set(file_id)
        # A promotion consumed one copy (the survivor became the primary):
        # grow the set back to the configured count where domains allow.
        while len(rset) < placement.replicas:
            replacement = self._choose_replacement(file_id, primary, rset)
            if replacement is None:
                break
            done = yield from self._clone(file_id, primary, None, replacement, rset)
            if not done:
                break
            rset = placement.replica_set(file_id)

    # ------------------------------------------------------------------ promotion

    def _promote(
        self, file_id: int, rset: Tuple[int, ...]
    ) -> Generator[Any, Any, bool]:
        manager, placement = self.manager, self.placement
        live = [
            volume
            for volume in rset
            if not self.faults.volume_unavailable(volume)
            and not manager.is_stale(file_id, volume)
        ]
        if not live:
            return False
        # In the simulated world a live copy may exist only in the routing
        # table so far (a materialized file adopted at fail-over time whose
        # reads were all served by another copy): synthesize its shadow on
        # demand, exactly as a fail-over read of that copy would.
        like = manager._primaries.get(file_id) if self.layout.simulated else None
        new_home, shadow = None, None
        for volume in live:
            shadow = yield from manager._shadow(file_id, volume, like=like)
            if shadow is not None:
                new_home = volume
                break
        if shadow is None or new_home is None:
            return False
        # Push the file's cached dirty blocks out first: the primary's
        # volume drops them, the surviving copies absorb them, so the
        # shadow's map is complete before it becomes the map of record.
        yield from self.cache.flush_file(file_id)
        self._hit("repair.flip.pre")
        # One atomic scheduler step: routing flip + replica-set shrink,
        # both journalled, plus the in-memory map swap — no I/O between.
        primary_obj = manager._primaries.get(file_id)
        placement.flip(file_id, new_home)
        new_rset = tuple(v for v in rset if v != new_home)
        placement.set_replica_set(file_id, new_rset)
        if self.metadata is not None:
            self.metadata.journal_flip(file_id, new_home)
            self.metadata.journal_rset(file_id, new_rset)
        new_sub = self.layout.sublayouts[new_home]
        manager._shadows.pop((file_id, new_home), None)
        if primary_obj is not None and primary_obj is not shadow:
            # The file system keeps holding its own inode object; hand it
            # the promoted copy's addresses and re-register it as the new
            # home's object of record so later writes stay coherent.
            primary_obj.block_map = dict(shadow.block_map)
            yield from new_sub.write_inode(primary_obj)
        self._hit("repair.checkpoint.pre")
        yield from new_sub.checkpoint()
        self._hit("repair.commit.pre")
        if self.metadata is not None:
            yield from self.metadata.journal_commit(file_id)
        self._hit("repair.commit.post")
        self.promoted_files += 1
        node = self.faults.node_of_volume(new_home)
        self.repairs_by_node[node] = self.repairs_by_node.get(node, 0) + 1
        return True

    # ------------------------------------------------------------------ re-replication

    def _choose_replacement(
        self, file_id: int, primary: int, rset: Tuple[int, ...]
    ) -> Optional[int]:
        """A live volume in a failure domain the file does not already use."""
        placement, faults = self.placement, self.faults
        live_set = tuple(v for v in rset if not faults.volume_unavailable(v))
        return _choose_spare_volume(placement, faults, primary, live_set)

    def _clone(
        self,
        file_id: int,
        primary: int,
        bad: Optional[int],
        replacement: int,
        rset: Tuple[int, ...],
    ) -> Generator[Any, Any, bool]:
        """Copy ``file_id`` forward onto ``replacement`` and repoint the
        replica set (``bad`` → ``replacement``; ``None`` grows the set)."""
        manager, layout = self.manager, self.layout
        source_inode = manager._primaries.get(file_id)
        if source_inode is None:
            try:
                source_inode = yield from layout.read_inode(file_id)
            except (StorageError, DataUnavailable):
                return False
        # Disk must hold the complete file before we copy from it.
        yield from self.cache.flush_file(file_id)
        self._hit("repair.clone.pre")
        target_sub = layout.sublayouts[replacement]
        if replacement == bad:
            # In-place re-sync: reuse the registered shadow so rewriting a
            # block retires its old replica address instead of leaking it.
            shadow = yield from manager._shadow(file_id, replacement, like=source_inode)
        else:
            shadow = Inode(number=file_id, kind=source_inode.kind)
        manager._mirror_attrs(source_inode, shadow)
        source_sub = layout.sublayouts[primary]
        with_data = not layout.simulated
        for block_no in sorted(source_inode.block_map):
            carrier = CacheBlock(slot=-1, size=layout.block_size, with_data=with_data)
            yield from source_sub.read_file_block(source_inode, block_no, carrier)
            carrier.valid_bytes = carrier.size
            yield from target_sub.write_file_blocks(shadow, [(block_no, carrier)])
            self.blocks_copied += 1
            self.bytes_copied += layout.block_size
        yield from target_sub.write_inode(shadow)
        self._hit("repair.checkpoint.pre")
        yield from target_sub.checkpoint()
        if bad in rset:
            new_rset = tuple(replacement if v == bad else v for v in rset)
        else:  # growing a promotion-shrunk set: append instead of substitute
            new_rset = rset + (replacement,)
        self._hit("repair.rset.pre")
        self.placement.set_replica_set(file_id, new_rset)
        if self.metadata is not None:
            self.metadata.journal_rset(file_id, new_rset)
        self._hit("repair.commit.pre")
        if self.metadata is not None:
            yield from self.metadata.journal_commit(file_id)
        self._hit("repair.commit.post")
        manager._shadows[(file_id, replacement)] = shadow
        manager._stale.discard((file_id, bad))
        manager._stale.discard((file_id, replacement))
        if bad != replacement:
            manager._shadows.pop((file_id, bad), None)
        self.repaired_copies += 1
        node = self.faults.node_of_volume(replacement)
        self.repairs_by_node[node] = self.repairs_by_node.get(node, 0) + 1
        return True

    # ------------------------------------------------------------------ reporting

    def snapshot(self) -> dict:
        return {
            "scans": self.scans,
            "promoted_files": self.promoted_files,
            "repaired_copies": self.repaired_copies,
            "blocks_copied": self.blocks_copied,
            "bytes_copied": self.bytes_copied,
            "lost_files": self.lost_files,
        }
