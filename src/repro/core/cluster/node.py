"""``ClusterNode`` and ``ClusterTopology``: the shape of a built cluster.

A node wraps one machine's slice of the stack — its NIC, its disk drivers,
its (possibly remote-wrapped) volumes, its per-volume layouts and cache
shards — exactly the sub-stack :func:`repro.assembly.builder.build_stack`
assembles for a standalone array of the same shape.  The topology groups
the nodes plus the cluster-wide pieces (placement tier, rebalancer) for
reporting; all of the actual I/O routing happens through the placement and
the routed layout, not through these wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional

from repro.core.cluster.network import Nic
from repro.core.cluster.placement import ClusterPlacement
from repro.core.storage.volume import Volume

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster.rebalance import ClusterRebalancer

__all__ = ["ClusterNode", "ClusterTopology"]


@dataclass
class ClusterNode:
    """One machine's slice of the cluster stack.

    ``volumes`` holds the volumes as the front end sees them — the local
    node's :class:`~repro.core.storage.volume.LocalVolume` objects, or
    :class:`~repro.core.cluster.remote.RemoteVolume` wrappers for every
    other node.  ``nic`` is None on a one-node cluster (no network exists).
    """

    index: int
    nic: Optional[Nic]
    #: global indices of this node's volumes.
    volume_indices: List[int]
    drivers: List[Any]
    volumes: List[Volume]
    sublayouts: List[Any]
    cache_shards: List[Any]

    @property
    def is_front_end(self) -> bool:
        return self.index == 0

    def __repr__(self) -> str:
        return (
            f"ClusterNode({self.index}, volumes={self.volume_indices}, "
            f"disks={len(self.drivers)})"
        )


@dataclass
class ClusterTopology:
    """Everything cluster-specific a built stack carries."""

    nodes: List[ClusterNode]
    nics: List[Nic]
    placement: ClusterPlacement
    rebalancer: Optional["ClusterRebalancer"] = None
    #: remote volumes, keyed by global volume index (front-end view).
    remote_volumes: dict = field(default_factory=dict)
    #: the durable metadata tier (WAL + manifest), when enabled.
    metadata: Optional[Any] = None
    #: the fault board (``repro.core.faults.FaultState``).
    faults: Optional[Any] = None
    #: replication data path + repair loop, when ``replicas`` > 0.
    replication: Optional[Any] = None
    repairer: Optional[Any] = None

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node_of_volume(self, volume: int) -> ClusterNode:
        return self.nodes[self.placement.node_of_volume(volume)]

    def __repr__(self) -> str:
        return f"ClusterTopology(nodes={len(self.nodes)})"
