"""The write-ahead log: CRC-framed records with batched group commit.

Record framing (little-endian)::

    +----------+----------+------------------------- body -----------------+
    | len: u32 | crc: u32 | lsn: u64 | type: u8 | file_id: i64 | arg: i64 |
    +----------+----------+------------------------------------------------+

``crc`` covers the body, so a torn tail — a frame whose bytes were only
partially accepted by the device before a crash — fails either the length
check or the CRC and ends the replay *there*: everything before the torn
frame is used, everything after is discarded (an append-only log is only
ever damaged at its tail).

``append`` is deliberately **synchronous and non-durable**: it frames the
record into the group-commit buffer and returns the LSN without touching
the scheduler, so journaling can happen inside atomic scheduler steps
(e.g. in the same step as a routing flip, or from non-generator call
sites like ``ClusterPlacement.forget``).  Durability happens at
:meth:`sync`, which drains the whole buffer into one device append — the
group commit.  Three triggers mark a commit as *due* between explicit
syncs: entry count, buffered bytes, and a time interval (a lazily spawned
daemon, so a WAL that never logs anything never touches the scheduler).

The batching trade-off (see ``docs/architecture.md``): bigger batches
amortise the per-commit device latency over more records but widen the
window of buffered records a crash can lose.  Losing them is *safe* here
— a FLIP without a later durable COMMIT is not applied at recovery — so
the knobs trade recovery freshness against journal-write overhead, never
correctness.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.assembly.registry import registry
from repro.core.metadata.crash import CrashPoints
from repro.core.metadata.device import MetadataDevice
from repro.core.scheduler import Scheduler, Thread

__all__ = [
    "REC_BEGIN",
    "REC_FLIP",
    "REC_COMMIT",
    "REC_END",
    "REC_FORGET",
    "REC_RSET",
    "WalRecord",
    "WriteAheadLog",
    "decode_wal",
    "pack_replica_set",
    "unpack_replica_set",
]

#: record types: one migration journals BEGIN → FLIP → COMMIT → END;
#: FORGET drops the routing entry of a deleted displaced file; RSET
#: repoints a file's replica set (repair) — like FLIP, an RSET only
#: applies at recovery under a later durable COMMIT for the same file.
REC_BEGIN = 1
REC_FLIP = 2
REC_COMMIT = 3
REC_END = 4
REC_FORGET = 5
REC_RSET = 6

_HEADER = struct.Struct("<II")
_BODY = struct.Struct("<QBqq")


@dataclass(frozen=True)
class WalRecord:
    """One decoded journal record."""

    lsn: int
    rtype: int
    file_id: int
    #: type-dependent argument: the target volume for FLIP, the source
    #: volume for BEGIN, 0 otherwise.
    arg: int

    def encode(self) -> bytes:
        body = _BODY.pack(self.lsn, self.rtype, self.file_id, self.arg)
        return _HEADER.pack(len(body), zlib.crc32(body)) + body


def pack_replica_set(volumes: Tuple[int, ...]) -> int:
    """Pack a replica volume list into an RSET record's ``arg``.

    One byte per volume, offset by one so a zero byte terminates the list
    (volume 0 packs as 1).  An i64 arg holds up to seven volumes — more
    than the six replicas the configuration allows — and volume indices
    are bounded at 254 by ``ClusterPlacement``.
    """
    arg = 0
    for volume in reversed(volumes):
        arg = (arg << 8) | (volume + 1)
    return arg


def unpack_replica_set(arg: int) -> Tuple[int, ...]:
    """Invert :func:`pack_replica_set`."""
    volumes = []
    while arg:
        volumes.append((arg & 0xFF) - 1)
        arg >>= 8
    return tuple(volumes)


def decode_wal(data: bytes) -> Tuple[List[WalRecord], int]:
    """Decode every intact frame; returns ``(records, valid_bytes)``.

    Decoding stops at the first truncated or CRC-damaged frame (the torn
    tail); ``valid_bytes`` is how far the log was readable.
    """
    records: List[WalRecord] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if length != _BODY.size or end > total:
            break
        body = data[start:end]
        if zlib.crc32(body) != crc:
            break
        lsn, rtype, file_id, arg = _BODY.unpack(body)
        records.append(WalRecord(lsn=lsn, rtype=rtype, file_id=file_id, arg=arg))
        offset = end
    return records, offset


class WriteAheadLog:
    """Group-committed journal over a :class:`MetadataDevice`.

    Registered in the assembly registry as ``("wal", "group-commit")``.
    """

    name = "group-commit"

    def __init__(
        self,
        scheduler: Scheduler,
        device: MetadataDevice,
        commit_records: int = 8,
        commit_bytes: int = 4096,
        commit_interval: float = 1.0,
        group_commit: bool = True,
        crashpoints: Optional[CrashPoints] = None,
    ):
        self.scheduler = scheduler
        self.device = device
        self.commit_records = commit_records
        self.commit_bytes = commit_bytes
        self.commit_interval = commit_interval
        self.group_commit = group_commit
        self.crashpoints = crashpoints
        self._next_lsn = 1
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        self._commit_due = False
        self._committing = False
        self._commit_done = scheduler.new_event("wal-commit-done")
        self._daemon: Optional[Thread] = None
        # -- statistics
        self.records_appended = 0
        self.commits = 0
        self.bytes_committed = 0

    # ------------------------------------------------------------------ appending

    @property
    def pending_records(self) -> int:
        return len(self._pending)

    def set_next_lsn(self, lsn: int) -> None:
        """Continue the LSN sequence after recovery or a checkpoint."""
        self._next_lsn = lsn

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def append(self, rtype: int, file_id: int, arg: int = 0) -> int:
        """Buffer one record; returns its LSN.  Synchronous and
        non-durable — call :meth:`sync` (or let a trigger fire) to commit."""
        lsn = self._next_lsn
        self._next_lsn += 1
        frame = WalRecord(lsn=lsn, rtype=rtype, file_id=file_id, arg=arg).encode()
        self._pending.append(frame)
        self._pending_bytes += len(frame)
        self.records_appended += 1
        if (
            not self.group_commit
            or len(self._pending) >= self.commit_records
            or self._pending_bytes >= self.commit_bytes
        ):
            self._commit_due = True
        if self.group_commit and self.commit_interval > 0 and self._daemon is None:
            # Lazily spawned on the first record ever logged: a WAL that
            # journals nothing leaves the scheduler untouched.
            self._daemon = self.scheduler.spawn(
                self._interval_daemon, name="wal-group-commit", daemon=True
            )
        return lsn

    # ------------------------------------------------------------------ committing

    def maybe_sync(self) -> Generator[Any, Any, None]:
        """Commit if a batching trigger has fired since the last commit."""
        if self._commit_due and self._pending:
            yield from self.sync()

    def sync(self) -> Generator[Any, Any, None]:
        """Make every buffered record durable (one group commit)."""
        while self._committing:
            # Another thread (the interval daemon, or a concurrent
            # migration) is mid-commit; wait so device appends never
            # interleave and records stay in LSN order.
            yield from self._commit_done.wait()
        if not self._pending:
            self._commit_due = False
            return
        self._committing = True
        try:
            batch, self._pending = self._pending, []
            self._pending_bytes = 0
            self._commit_due = False
            payload = b"".join(batch)
            cp = self.crashpoints
            if cp is not None:
                cp.hit("wal.commit.pre")
                if cp.visit("wal.commit.torn"):
                    # The device accepted only a prefix of the batch: the
                    # torn tail the replay must tolerate.
                    yield from self.device.append_wal(payload[: max(len(payload) // 2, 1)])
                    cp.crash("wal.commit.torn")
            yield from self.device.append_wal(payload)
            if cp is not None:
                cp.hit("wal.commit.post")
            self.commits += 1
            self.bytes_committed += len(payload)
        finally:
            self._committing = False
            self._commit_done.signal()

    def _interval_daemon(self) -> Generator[Any, Any, None]:
        while True:
            yield from self.scheduler.sleep(self.commit_interval)
            if self._pending and not self._committing:
                yield from self.sync()

    # ------------------------------------------------------------------ reporting

    def snapshot(self) -> dict:
        return {
            "records_appended": self.records_appended,
            "commits": self.commits,
            "bytes_committed": self.bytes_committed,
            "pending_records": self.pending_records,
            "device_bytes": self.device.wal_bytes,
        }


registry.register("wal", "group-commit", WriteAheadLog)
