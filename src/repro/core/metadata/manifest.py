"""The atomic-rewrite manifest: membership, routing snapshot, WAL pointer.

Where the WAL is an append-only stream of small deltas, the manifest is a
small whole-state snapshot rewritten in one shot: the cluster membership
(node and volume counts, placement name), an epoch counter, the complete
routing-table snapshot at checkpoint time, and the LSN up to which the WAL
has been folded in.  Recovery loads the manifest first and then replays
only WAL records *after* its checkpoint LSN.

The rewrite is atomic — a temp file plus ``os.replace`` on the file
device, a single reference swap on the memory device — so the manifest is
never torn: a crash mid-rewrite leaves the *previous* manifest intact and
recovery simply replays a longer WAL suffix.  That is the whole trade-off
between the two structures (see ``docs/architecture.md``): the WAL makes
each migration cheap to journal (append a few dozen bytes), the manifest
bounds replay time by periodically resetting the log; neither alone gives
both cheap updates and bounded recovery.

A manifest whose CRC fails is treated as absent: atomic rewrite means a
bad checksum can only be pre-crash garbage or torn media from outside the
model, and the WAL suffix still replays from LSN 0.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

from repro.assembly.registry import registry
from repro.core.metadata.crash import CrashPoints
from repro.core.metadata.device import MetadataDevice
from repro.core.scheduler import Scheduler

__all__ = ["Manifest", "ManifestStore"]

_MANIFEST_VERSION = 1
_HEADER = struct.Struct("<II")


@dataclass
class Manifest:
    """One decoded manifest snapshot."""

    epoch: int
    nodes: int
    volumes_per_node: int
    placement: str
    #: every WAL record with lsn <= this is already folded in here.
    checkpoint_lsn: int
    #: the routing table at checkpoint time: file id -> home volume.
    overrides: Dict[int, int] = field(default_factory=dict)
    #: the replica routing table at checkpoint time: file id -> replica
    #: volumes.  Only repaired files appear here (default-rule sets don't).
    replicas: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    version: int = _MANIFEST_VERSION

    def encode(self) -> bytes:
        payload = {
            "version": self.version,
            "epoch": self.epoch,
            "nodes": self.nodes,
            "volumes_per_node": self.volumes_per_node,
            "placement": self.placement,
            "checkpoint_lsn": self.checkpoint_lsn,
            "overrides": {str(k): v for k, v in sorted(self.overrides.items())},
        }
        if self.replicas:
            # Key omitted when empty: a replicas=0 cluster writes the exact
            # same manifest bytes as the pre-replication stack (size feeds
            # the metadata device's timing, so this is a byte-identity pin).
            payload["replicas"] = {
                str(k): list(v) for k, v in sorted(self.replicas.items())
            }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return _HEADER.pack(len(body), zlib.crc32(body)) + body

    @classmethod
    def decode(cls, data: Optional[bytes]) -> Optional["Manifest"]:
        """The manifest in ``data``, or None when absent/damaged."""
        if data is None or len(data) < _HEADER.size:
            return None
        length, crc = _HEADER.unpack_from(data, 0)
        body = data[_HEADER.size : _HEADER.size + length]
        if len(body) != length or zlib.crc32(body) != crc:
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if payload.get("version") != _MANIFEST_VERSION:
            return None
        return cls(
            epoch=int(payload["epoch"]),
            nodes=int(payload["nodes"]),
            volumes_per_node=int(payload["volumes_per_node"]),
            placement=str(payload["placement"]),
            checkpoint_lsn=int(payload["checkpoint_lsn"]),
            overrides={int(k): int(v) for k, v in payload["overrides"].items()},
            replicas={
                int(k): tuple(int(x) for x in v)
                for k, v in payload.get("replicas", {}).items()
            },
        )


class ManifestStore:
    """Reads and atomically rewrites the manifest on a metadata device.

    Registered in the assembly registry as ``("manifest", "atomic-rewrite")``.
    """

    name = "atomic-rewrite"

    def __init__(
        self,
        scheduler: Scheduler,
        device: MetadataDevice,
        crashpoints: Optional[CrashPoints] = None,
    ):
        self.scheduler = scheduler
        self.device = device
        self.crashpoints = crashpoints
        self.writes = 0
        self.corrupt_reads = 0

    def write(self, manifest: Manifest) -> Generator[Any, Any, None]:
        cp = self.crashpoints
        if cp is not None:
            # Crashing here models dying before (or during) the temp-file
            # write or the rename: the previous manifest survives intact.
            cp.hit("manifest.write.pre")
        yield from self.device.write_manifest(manifest.encode())
        if cp is not None:
            cp.hit("manifest.write.post")
        self.writes += 1

    def read(self) -> Generator[Any, Any, Optional[Manifest]]:
        data = yield from self.device.read_manifest()
        manifest = Manifest.decode(data)
        if data is not None and manifest is None:
            self.corrupt_reads += 1
        return manifest

    def snapshot(self) -> dict:
        return {"writes": self.writes, "corrupt_reads": self.corrupt_reads}


registry.register("manifest", "atomic-rewrite", ManifestStore)
