"""``MetadataTier``: durable routing for the cluster placement tier.

The tier owns the WAL and the manifest store and exposes exactly the
journaling surface the rest of the stack needs:

* the **rebalancer** journals each migration — BEGIN at the start, FLIP in
  the same atomic scheduler step as the in-memory routing flip, COMMIT
  *after* the new home's data is durable (flush + sub-layout checkpoint),
  END after the old copy is retired;
* the **placement** journals FORGET when a displaced file is deleted
  (files without a routing entry journal nothing — a one-node cluster
  with no migrations never touches the journal at all);
* the **file system** calls :meth:`on_mount` / :meth:`on_unmount`.

Recovery replays manifest + WAL with one rule that makes every crash
point safe: **a FLIP takes effect only if a later durable COMMIT exists
for the same file.**  Before the COMMIT is durable the old home still
holds the complete on-disk copy (RETIRE only runs after COMMIT), so
routing to the old home is correct; once the COMMIT is durable the new
home's copy is durable too (the rebalancer checkpoints the new sub-layout
before journalling COMMIT), so routing to the new home is correct.  A
crash can therefore only ever lose *work* (a migration to redo, some old
blocks leaked until their volume's next checkpoint), never data.

Recovery state machine::

                       durable WAL suffix contains
         ┌──────────────┬──────────────────────┬────────────────────┐
         │ nothing /    │ BEGIN, FLIP          │ ... COMMIT [END]   │
         │ BEGIN only   │ (no later COMMIT)    │                    │
         ├──────────────┼──────────────────────┼────────────────────┤
  route: │ old home     │ old home             │ new home           │
  disk:  │ old copy     │ old copy (new copy   │ new copy durable   │
         │ untouched    │ absent or partial)   │ (old copy leaks    │
         │              │                      │  until RETIRE redo)│
         └──────────────┴──────────────────────┴────────────────────┘

Replay is idempotent: the manifest snapshot *replaces* the routing table
and flips are pure dictionary stores, so replaying the same record (or
the whole journal) twice converges to the same table.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.config import ClusterConfig
from repro.core.metadata.crash import CrashPoints
from repro.core.metadata.manifest import Manifest, ManifestStore
from repro.core.metadata.wal import (
    REC_BEGIN,
    REC_COMMIT,
    REC_END,
    REC_FLIP,
    REC_FORGET,
    REC_RSET,
    WriteAheadLog,
    decode_wal,
    pack_replica_set,
    unpack_replica_set,
)
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError

__all__ = ["MetadataTier"]


class MetadataTier:
    """Durable metadata (WAL + manifest) above a ``ClusterPlacement``."""

    def __init__(
        self,
        scheduler: Scheduler,
        placement: Any,
        wal: WriteAheadLog,
        manifest_store: ManifestStore,
        config: ClusterConfig,
        crashpoints: Optional[CrashPoints] = None,
    ):
        self.scheduler = scheduler
        self.placement = placement
        self.wal = wal
        self.manifest_store = manifest_store
        self.config = config
        self.crashpoints = crashpoints
        self.epoch = 0
        self.checkpoints = 0
        #: set by the first journal append or recovered durable state; an
        #: untouched tier stays invisible (no unmount checkpoint, no
        #: scheduler interaction — the one-node byte-equality pin).
        self._dirty = False
        self._recovering = False
        # -- last recovery, for reporting and tests
        self.replayed_records = 0
        self.applied_flips = 0
        self.applied_forgets = 0
        self.applied_rsets = 0
        self.torn_bytes = 0
        placement.set_forget_hook(self._on_placement_forget)

    # ------------------------------------------------------------------ journaling

    def journal_begin(self, file_id: int, source: int, target: int) -> int:
        self._dirty = True
        return self.wal.append(REC_BEGIN, file_id, source)

    def journal_flip(self, file_id: int, target: int) -> int:
        """Journal the routing flip.  Synchronous on purpose: the caller
        runs it in the same atomic scheduler step as the in-memory flip."""
        self._dirty = True
        return self.wal.append(REC_FLIP, file_id, target)

    def journal_commit(self, file_id: int) -> Generator[Any, Any, int]:
        """Append COMMIT and force the whole journal durable — the
        migration's durability barrier.  The caller must have made the new
        home's copy durable first."""
        self._dirty = True
        lsn = self.wal.append(REC_COMMIT, file_id)
        yield from self.wal.sync()
        return lsn

    def journal_end(self, file_id: int) -> int:
        return self.wal.append(REC_END, file_id)

    def journal_rset(self, file_id: int, volumes: tuple) -> int:
        """Journal a replica-set repoint (repair).  Synchronous, like
        :meth:`journal_flip`, and under the same recovery rule: the RSET
        only applies once a later COMMIT for the file is durable."""
        self._dirty = True
        return self.wal.append(REC_RSET, file_id, pack_replica_set(volumes))

    def _on_placement_forget(self, file_id: int) -> None:
        if self._recovering:
            return
        self._dirty = True
        self.wal.append(REC_FORGET, file_id)

    def post_migration(self) -> Generator[Any, Any, None]:
        """Housekeeping after a migration: commit if a batching trigger
        fired, fold the journal into the manifest when it has grown past
        the checkpoint threshold."""
        yield from self.wal.maybe_sync()
        if self.wal.device.wal_bytes >= self.config.wal_checkpoint_bytes:
            yield from self.checkpoint()

    # ------------------------------------------------------------------ checkpoint

    def checkpoint(self) -> Generator[Any, Any, None]:
        """Fold the journal into a fresh manifest and reset the log:
        WAL sync → manifest rewrite → WAL truncate.  A crash between the
        last two steps leaves stale records (lsn <= checkpoint) in the
        log; replay filters them out."""
        yield from self.wal.sync()
        checkpoint_lsn = self.wal.next_lsn - 1
        self.epoch += 1
        manifest = Manifest(
            epoch=self.epoch,
            nodes=self.placement.nodes,
            volumes_per_node=self.placement.volumes_per_node,
            placement=self.placement.inner.name,
            checkpoint_lsn=checkpoint_lsn,
            overrides=self.placement.overrides_snapshot(),
            replicas=self.placement.replica_snapshot(),
        )
        yield from self.manifest_store.write(manifest)
        if self.crashpoints is not None:
            self.crashpoints.hit("wal.truncate.pre")
        yield from self.wal.device.truncate_wal()
        self.checkpoints += 1

    # ------------------------------------------------------------------ lifecycle

    def on_mount(self, format: bool) -> Generator[Any, Any, None]:
        if format:
            # A fresh file system must not inherit stale routing.
            self.wal.device.wipe()
            return
        yield from self.recover()

    def on_unmount(self) -> Generator[Any, Any, None]:
        if self._dirty:
            yield from self.checkpoint()

    # ------------------------------------------------------------------ recovery

    def recover(self) -> Generator[Any, Any, None]:
        """Rebuild the routing table from manifest + WAL replay.

        Idempotent: running it again (or replaying a record twice)
        converges to the same table.
        """
        placement = self.placement
        self._recovering = True
        try:
            manifest = yield from self.manifest_store.read()
            wal_data = yield from self.wal.device.read_wal()
            records, valid_bytes = decode_wal(wal_data)
            self.torn_bytes = len(wal_data) - valid_bytes
            checkpoint_lsn = 0
            overrides: dict = {}
            replicas: dict = {}
            if manifest is not None:
                if (
                    manifest.nodes != placement.nodes
                    or manifest.volumes_per_node != placement.volumes_per_node
                    or manifest.placement != placement.inner.name
                ):
                    raise ConfigurationError(
                        f"manifest describes a {manifest.nodes}x"
                        f"{manifest.volumes_per_node} {manifest.placement!r} cluster, "
                        f"but this stack is {placement.nodes}x"
                        f"{placement.volumes_per_node} {placement.inner.name!r}"
                    )
                checkpoint_lsn = manifest.checkpoint_lsn
                overrides = dict(manifest.overrides)
                replicas = dict(manifest.replicas)
                self.epoch = manifest.epoch
            placement.load_overrides(overrides)
            placement.load_replicas(replicas)
            # Records already folded into the manifest (or left behind by
            # a crash between manifest rewrite and WAL truncate) are stale.
            records = [r for r in records if r.lsn > checkpoint_lsn]
            commit_lsns: dict = {}
            for record in records:
                if record.rtype == REC_COMMIT:
                    commit_lsns.setdefault(record.file_id, []).append(record.lsn)
            flips = forgets = rsets = 0
            for record in records:
                if record.rtype == REC_FLIP:
                    # The one rule that makes every crash point safe: a
                    # flip counts only once a later COMMIT proved the new
                    # home's copy durable.
                    if any(lsn > record.lsn for lsn in commit_lsns.get(record.file_id, ())):
                        placement.flip(record.file_id, record.arg)
                        flips += 1
                elif record.rtype == REC_RSET:
                    # Same rule as FLIP: the repointed replica set only
                    # counts once a later COMMIT proved the new copies
                    # durable; before that the journalled pre-repair set
                    # still describes the durable copies.
                    if any(lsn > record.lsn for lsn in commit_lsns.get(record.file_id, ())):
                        placement.set_replica_set(
                            record.file_id, unpack_replica_set(record.arg)
                        )
                        rsets += 1
                elif record.rtype == REC_FORGET:
                    placement.forget(record.file_id)
                    forgets += 1
            max_lsn = max([checkpoint_lsn] + [r.lsn for r in records])
            self.wal.set_next_lsn(max_lsn + 1)
            # Only live replayed records leave the tier dirty.  A manifest
            # with an already-folded (or empty) journal does not: remount
            # plus clean unmount must not rewrite an identical manifest.
            if records:
                self._dirty = True
            self.replayed_records = len(records)
            self.applied_flips = flips
            self.applied_forgets = forgets
            self.applied_rsets = rsets
        finally:
            self._recovering = False

    # ------------------------------------------------------------------ reporting

    def snapshot(self) -> dict:
        return {
            "epoch": self.epoch,
            "checkpoints": self.checkpoints,
            "replayed_records": self.replayed_records,
            "applied_flips": self.applied_flips,
            "applied_forgets": self.applied_forgets,
            "applied_rsets": self.applied_rsets,
            "torn_bytes": self.torn_bytes,
            "wal": self.wal.snapshot(),
            "manifest": self.manifest_store.snapshot(),
        }
