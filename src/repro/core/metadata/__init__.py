"""Durable metadata: write-ahead log, manifest and crash injection.

The cluster tier's routing table (``ClusterPlacement._overrides``) used to
live purely in memory: a remount forgot every migration and silently fell
back to arithmetic homes.  This package makes the routing durable with the
classic two-piece design:

* a **write-ahead log** (:mod:`repro.core.metadata.wal`) of CRC-framed
  records for routing flips and migration state transitions, batched with
  group commit;
* an **atomic-rewrite manifest** (:mod:`repro.core.metadata.manifest`)
  holding the cluster membership, the routing-table snapshot and the WAL
  checkpoint pointer, rewritten via temp-file + rename.

Both are ordinary cut-and-paste components: they register through the
assembly registry (kinds ``"wal"`` and ``"manifest"``), are built by
``build_stack``, and run unchanged in both worlds — PATSY charges journal
I/O as simulated disk time through a charged metadata device, PFS persists
real bytes in real files.

:mod:`repro.core.metadata.crash` provides the fault-injection hooks the
recovery test harness (``tests/test_recovery.py``) uses to kill the stack
at every migration step and every WAL/manifest write boundary.
"""

from repro.core.metadata.crash import CrashPoints, SimulatedCrash
from repro.core.metadata.device import (
    DurableStore,
    FileMetadataDevice,
    MemoryMetadataDevice,
    MetadataDevice,
)
from repro.core.metadata.manifest import Manifest, ManifestStore
from repro.core.metadata.tier import MetadataTier
from repro.core.metadata.wal import WalRecord, WriteAheadLog, decode_wal

__all__ = [
    "CrashPoints",
    "SimulatedCrash",
    "DurableStore",
    "MetadataDevice",
    "MemoryMetadataDevice",
    "FileMetadataDevice",
    "Manifest",
    "ManifestStore",
    "MetadataTier",
    "WalRecord",
    "WriteAheadLog",
    "decode_wal",
]
