"""Crash-point fault injection for the recovery test harness.

A :class:`CrashPoints` instance is threaded through the stack (rebalancer,
WAL, manifest store) and consulted at every named boundary — each migration
step, each WAL commit, each manifest rewrite.  Visiting a point counts its
occurrence; when the instance is *armed* at ``(point, occurrence)`` the
visit raises :class:`SimulatedCrash` and aborts the scheduler, killing the
whole stack at exactly that boundary.

The harness uses the same object in two modes:

1. **Recording** — an uncrashed reference run with ``recording=True``
   collects every ``(point, occurrence)`` pair actually visited, which
   *is* the crash matrix: the set of all boundaries a real run crosses.
2. **Armed** — one fresh run per recorded pair, armed at that pair,
   expects :class:`SimulatedCrash`, then remounts and checks recovery.

``SimulatedCrash`` derives from :class:`BaseException` on purpose: a crash
must not be swallowed by any ``except Exception`` cleanup path in the
stack — like a power failure, nothing gets to handle it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scheduler import Scheduler

__all__ = ["SimulatedCrash", "CrashPoints"]


class SimulatedCrash(BaseException):
    """The stack died at an injected crash point.

    A ``BaseException`` so that no component's ``except Exception`` error
    handling can absorb it — a crash terminates everything.
    """

    def __init__(self, point: str, occurrence: int):
        super().__init__(f"simulated crash at {point!r} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


class CrashPoints:
    """Named crash boundaries with per-point occurrence counting.

    Parameters
    ----------
    arm:
        ``(point, occurrence)`` at which to crash, or None to never crash.
    recording:
        Collect every visited ``(point, occurrence)`` pair in ``seen``.
    """

    def __init__(
        self,
        arm: Optional[Tuple[str, int]] = None,
        recording: bool = False,
    ):
        self.armed = arm
        self.recording = recording
        #: occurrences visited so far, per point name.
        self.counts: Dict[str, int] = {}
        #: every (point, occurrence) visited, in order (recording mode).
        self.seen: List[Tuple[str, int]] = []
        self._scheduler: Optional["Scheduler"] = None

    def bind(self, scheduler: "Scheduler") -> None:
        """Attach the scheduler so a crash halts every thread, not just
        the one that tripped it."""
        self._scheduler = scheduler

    # ------------------------------------------------------------------ visiting

    def visit(self, point: str) -> bool:
        """Count one occurrence of ``point``; True when the armed crash
        fires *here* (the caller may then do partial work — e.g. a torn
        write — before calling :meth:`crash`)."""
        index = self.counts.get(point, 0)
        self.counts[point] = index + 1
        if self.recording:
            self.seen.append((point, index))
        return self.armed == (point, index)

    def hit(self, point: str) -> None:
        """Visit ``point`` and crash immediately if armed here."""
        if self.visit(point):
            self.crash(point)

    def crash(self, point: str) -> None:
        """Raise the crash for ``point`` and abort the scheduler."""
        occurrence = self.counts.get(point, 1) - 1
        exc = SimulatedCrash(point, occurrence)
        if self._scheduler is not None:
            self._scheduler.abort(exc)
        raise exc

    def __repr__(self) -> str:
        return f"CrashPoints(armed={self.armed}, visited={sum(self.counts.values())})"
