"""Metadata devices: where the WAL and the manifest physically live.

The same cut-and-paste split as the disk drivers: the WAL and manifest
components talk to a tiny device interface, and the binding picks the
world —

* :class:`MemoryMetadataDevice` holds everything in a
  :class:`DurableStore` (a plain byte container that the test harness
  carries across stack rebuilds, the way a disk survives a reboot) and
  *charges* scheduler time per byte when given a latency/bandwidth model
  (the PATSY world) or stays free and silent (in-memory PFS);
* :class:`FileMetadataDevice` persists real bytes — an append-only
  ``<base>.wal`` file and a ``<base>.manifest`` rewritten atomically via
  a temp file and :func:`os.replace`.

Every I/O method is a generator so call sites are world-independent; a
device with nothing to charge and nothing to read yields nothing at all,
which is what keeps an idle metadata tier byte-invisible to the
scheduler (the one-node equivalence pin in ``tests/test_cluster.py``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Generator, Optional, Union

from repro.core.scheduler import Delay, Scheduler

__all__ = [
    "DurableStore",
    "MetadataDevice",
    "MemoryMetadataDevice",
    "FileMetadataDevice",
]


class DurableStore:
    """The bytes that survive a (simulated) crash: WAL tail + manifest.

    Buffered WAL records that were never committed are *not* here — they
    lived in the WAL's group-commit buffer and die with the process,
    exactly like a page cache.
    """

    def __init__(self) -> None:
        self.wal = bytearray()
        self.manifest: Optional[bytes] = None

    def __repr__(self) -> str:
        manifest = len(self.manifest) if self.manifest is not None else None
        return f"DurableStore(wal={len(self.wal)}B, manifest={manifest})"


class MetadataDevice:
    """Shared charging model over concrete byte-holding back-ends."""

    def __init__(self, scheduler: Scheduler, latency: float = 0.0, bandwidth: float = 0.0):
        self.scheduler = scheduler
        self.latency = latency
        self.bandwidth = bandwidth

    def _charge(self, nbytes: int) -> Generator[Any, Any, None]:
        cost = self.latency
        if self.bandwidth > 0:
            cost += nbytes / self.bandwidth
        if cost > 0:
            yield Delay(cost)

    # -- the generator API the WAL and manifest components use ---------------

    def append_wal(self, payload: bytes) -> Generator[Any, Any, None]:
        yield from self._charge(len(payload))
        self._append_wal(payload)

    def read_wal(self) -> Generator[Any, Any, bytes]:
        data = self._read_wal()
        if data:
            yield from self._charge(len(data))
        return data

    def truncate_wal(self) -> Generator[Any, Any, None]:
        if self.wal_bytes:
            yield from self._charge(0)
            self._truncate_wal()

    def write_manifest(self, payload: bytes) -> Generator[Any, Any, None]:
        yield from self._charge(len(payload))
        self._write_manifest(payload)

    def read_manifest(self) -> Generator[Any, Any, Optional[bytes]]:
        data = self._read_manifest()
        if data is not None:
            yield from self._charge(len(data))
        return data

    def wipe(self) -> None:
        """Drop all durable state (format-time reset).  Synchronous and
        uncharged: formatting already charges the layout writes."""
        self._truncate_wal()
        self._wipe_manifest()

    # -- to be provided by concrete back-ends --------------------------------

    @property
    def wal_bytes(self) -> int:
        raise NotImplementedError

    def _append_wal(self, payload: bytes) -> None:
        raise NotImplementedError

    def _read_wal(self) -> bytes:
        raise NotImplementedError

    def _truncate_wal(self) -> None:
        raise NotImplementedError

    def _write_manifest(self, payload: bytes) -> None:
        raise NotImplementedError

    def _read_manifest(self) -> Optional[bytes]:
        raise NotImplementedError

    def _wipe_manifest(self) -> None:
        raise NotImplementedError


class MemoryMetadataDevice(MetadataDevice):
    """Metadata on a :class:`DurableStore`, optionally charging time.

    With a latency/bandwidth model this is PATSY's journal "disk": the
    bytes are tiny but the time is real.  Without one it is the in-memory
    PFS back-end: real bytes, no charge.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        store: Optional[DurableStore] = None,
        latency: float = 0.0,
        bandwidth: float = 0.0,
    ):
        super().__init__(scheduler, latency=latency, bandwidth=bandwidth)
        self.store = store if store is not None else DurableStore()

    @property
    def wal_bytes(self) -> int:
        return len(self.store.wal)

    def _append_wal(self, payload: bytes) -> None:
        self.store.wal += payload

    def _read_wal(self) -> bytes:
        return bytes(self.store.wal)

    def _truncate_wal(self) -> None:
        del self.store.wal[:]

    def _write_manifest(self, payload: bytes) -> None:
        # One store, one rename: the swap is atomic by construction.
        self.store.manifest = bytes(payload)

    def _read_manifest(self) -> Optional[bytes]:
        return self.store.manifest

    def _wipe_manifest(self) -> None:
        self.store.manifest = None


class FileMetadataDevice(MetadataDevice):
    """Real metadata files: ``<base>.wal`` (append-only) and
    ``<base>.manifest`` (atomic rewrite via ``<base>.manifest.tmp`` +
    :func:`os.replace`)."""

    def __init__(
        self,
        scheduler: Scheduler,
        base: Union[str, Path],
        latency: float = 0.0,
        bandwidth: float = 0.0,
    ):
        super().__init__(scheduler, latency=latency, bandwidth=bandwidth)
        self.wal_path = Path(f"{base}.wal")
        self.manifest_path = Path(f"{base}.manifest")

    @property
    def wal_bytes(self) -> int:
        try:
            return self.wal_path.stat().st_size
        except OSError:
            return 0

    def _append_wal(self, payload: bytes) -> None:
        with open(self.wal_path, "ab") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    def _read_wal(self) -> bytes:
        try:
            return self.wal_path.read_bytes()
        except OSError:
            return b""

    def _truncate_wal(self) -> None:
        self.wal_path.write_bytes(b"")

    def _write_manifest(self, payload: bytes) -> None:
        tmp = self.manifest_path.with_suffix(self.manifest_path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)

    def _read_manifest(self) -> Optional[bytes]:
        try:
            return self.manifest_path.read_bytes()
        except OSError:
            return None

    def _wipe_manifest(self) -> None:
        try:
            self.manifest_path.unlink()
        except OSError:
            pass
