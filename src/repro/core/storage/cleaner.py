"""LFS log cleaners.

"The log-cleaner can be replaced and is plugged into the LFS component when
the system starts up."  A cleaner policy decides *which* segments to clean;
the :class:`CleanerDaemon` is the thread that watches the free-segment level
and invokes the policy, copying live blocks forward through the normal log
append path (so cleaning generates ordinary disk traffic that shows up in
the statistics, exactly as in a real LFS).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator, Optional, Sequence

from repro.assembly.registry import registry
from repro.core.scheduler import Scheduler, Thread
from repro.core.storage.lfs import LogStructuredLayout, SegmentInfo
from repro.errors import ConfigurationError

__all__ = [
    "SegmentCleaner",
    "GreedyCleaner",
    "CostBenefitCleaner",
    "CleanerDaemon",
    "CleanerSet",
    "make_cleaner",
]


class SegmentCleaner(ABC):
    """Policy choosing which segment to clean next."""

    name = "abstract"

    @abstractmethod
    def choose(self, candidates: Sequence[SegmentInfo], now: float) -> Optional[SegmentInfo]:
        """Pick the best segment to clean (None when nothing is worth it)."""


class GreedyCleaner(SegmentCleaner):
    """Clean the segment with the fewest live blocks."""

    name = "greedy"

    def choose(self, candidates: Sequence[SegmentInfo], now: float) -> Optional[SegmentInfo]:
        if not candidates:
            return None
        return min(candidates, key=lambda info: info.live_blocks)


class CostBenefitCleaner(SegmentCleaner):
    """Rosenblum & Ousterhout's cost-benefit policy (the Sprite LFS model).

    Cleaning a segment costs reading it whole and writing back its live
    fraction (``cost = 1 + u``); it yields ``1 - u`` of a segment of free
    space whose *stability* is predicted by the age of the segment's data
    (cold data stays live, so space reclaimed from an old segment survives
    longer).  The policy maximises::

        benefit / cost = (1 - u) * (1 + age / age_scale) / (1 + u)

    ``age_scale`` is the utilisation-vs-age exchange rate: a segment
    ``age_scale`` seconds old is worth double a fresh one, so cold segments
    get cleaned at *higher* utilisation than hot ones — the behaviour that
    separates cost-benefit from greedy on hot/cold workloads, where greedy
    keeps re-cleaning hot segments whose blocks were about to die anyway
    (see ``benchmarks/test_ablation_cleaner.py``).  The ``1 +`` keeps
    age-zero ties ranked by utilisation, i.e. greedy behaviour until ages
    differentiate.
    """

    name = "cost-benefit"

    def __init__(self, age_scale: float = 30.0):
        if age_scale <= 0:
            raise ConfigurationError("age_scale must be positive")
        self.age_scale = age_scale

    def choose(self, candidates: Sequence[SegmentInfo], now: float) -> Optional[SegmentInfo]:
        if not candidates:
            return None

        def benefit(info: SegmentInfo) -> float:
            utilisation = info.utilisation
            if utilisation >= 1.0:
                return -1.0  # nothing to reclaim at any age
            age = max(now - info.modified_at, 0.0)
            return (1.0 - utilisation) * (1.0 + age / self.age_scale) / (1.0 + utilisation)

        return max(candidates, key=benefit)


class CleanerDaemon:
    """Background thread that keeps the LFS supplied with free segments."""

    def __init__(
        self,
        scheduler: Scheduler,
        layout: LogStructuredLayout,
        policy: SegmentCleaner,
        low_water: float = 0.2,
        high_water: float = 0.4,
        check_interval: float = 5.0,
        node: int = 0,
    ):
        if not (0.0 <= low_water < high_water <= 1.0):
            raise ConfigurationError("cleaner water marks must satisfy 0 <= low < high <= 1")
        self.scheduler = scheduler
        self.layout = layout
        self.policy = policy
        self.low_water = low_water
        self.high_water = high_water
        self.check_interval = check_interval
        self.node = node
        self.segments_cleaned = 0
        self.blocks_copied = 0
        self.thread: Optional[Thread] = None

    def start(self) -> Thread:
        self.thread = self.scheduler.spawn(
            self._run, name="lfs-cleaner", daemon=True, node=self.node
        )
        return self.thread

    def _run(self) -> Generator[Any, Any, None]:
        while True:
            yield from self.scheduler.sleep(self.check_interval)
            if self.layout.free_segment_fraction >= self.low_water:
                continue
            yield from self.clean_until(self.high_water)

    def clean_until(self, target_fraction: float) -> Generator[Any, Any, int]:
        """Clean segments until the free fraction reaches ``target_fraction``.

        Returns the number of segments cleaned.  Also usable synchronously
        (outside the daemon) by tests and by the layout when it runs short.
        """
        cleaned = 0
        while self.layout.free_segment_fraction < target_fraction:
            candidates = self.layout.cleaner_candidates(self.scheduler.now)
            victim = self.policy.choose(candidates, self.scheduler.now)
            if victim is None:
                break
            copied, _examined = yield from self.layout.clean_segment(victim.index)
            cleaned += 1
            self.segments_cleaned += 1
            self.blocks_copied += copied
        return cleaned


class CleanerSet:
    """Per-volume cleaner daemons behind one handle.

    Each volume of a storage array runs its own LFS and therefore its own
    cleaner; the set only fans :meth:`start` out and aggregates counters so
    the file system and reports can keep treating "the cleaner" as one
    component.
    """

    def __init__(self, daemons: Sequence[CleanerDaemon]):
        self.daemons = list(daemons)

    def start(self) -> list[Thread]:
        return [daemon.start() for daemon in self.daemons]

    @property
    def segments_cleaned(self) -> int:
        return sum(daemon.segments_cleaned for daemon in self.daemons)

    @property
    def blocks_copied(self) -> int:
        return sum(daemon.blocks_copied for daemon in self.daemons)

    def __len__(self) -> int:
        return len(self.daemons)

    def __iter__(self):
        return iter(self.daemons)


# "cleaner" factories take (age_scale=...) and return a SegmentCleaner;
# policies that do not use an age model simply ignore the keyword.
registry.register("cleaner", "greedy", lambda age_scale=30.0: GreedyCleaner())
registry.register("cleaner", "cost-benefit", CostBenefitCleaner)


def make_cleaner(name: str, age_scale: float = 30.0) -> SegmentCleaner:
    """Factory keyed by ``LayoutConfig.cleaner_policy``.

    Thin wrapper over ``registry.create("cleaner", ...)``; third-party
    cleaners registered under the same kind work here unchanged.
    """
    return registry.create("cleaner", name, age_scale=age_scale)
