"""LFS log cleaners.

"The log-cleaner can be replaced and is plugged into the LFS component when
the system starts up."  A cleaner policy decides *which* segments to clean;
the :class:`CleanerDaemon` is the thread that watches the free-segment level
and invokes the policy, copying live blocks forward through the normal log
append path (so cleaning generates ordinary disk traffic that shows up in
the statistics, exactly as in a real LFS).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator, Optional, Sequence

from repro.core.scheduler import Scheduler, Thread
from repro.core.storage.lfs import LogStructuredLayout, SegmentInfo
from repro.errors import ConfigurationError

__all__ = ["SegmentCleaner", "GreedyCleaner", "CostBenefitCleaner", "CleanerDaemon", "make_cleaner"]


class SegmentCleaner(ABC):
    """Policy choosing which segment to clean next."""

    name = "abstract"

    @abstractmethod
    def choose(self, candidates: Sequence[SegmentInfo], now: float) -> Optional[SegmentInfo]:
        """Pick the best segment to clean (None when nothing is worth it)."""


class GreedyCleaner(SegmentCleaner):
    """Clean the segment with the fewest live blocks."""

    name = "greedy"

    def choose(self, candidates: Sequence[SegmentInfo], now: float) -> Optional[SegmentInfo]:
        if not candidates:
            return None
        return min(candidates, key=lambda info: info.live_blocks)


class CostBenefitCleaner(SegmentCleaner):
    """Rosenblum & Ousterhout's cost-benefit policy.

    Chooses the segment maximising ``(1 - u) * age / (1 + u)`` where ``u`` is
    the segment utilisation and ``age`` the time since it was last written.
    Old, mostly-empty segments are preferred; full, recently written segments
    are left alone.
    """

    name = "cost-benefit"

    def choose(self, candidates: Sequence[SegmentInfo], now: float) -> Optional[SegmentInfo]:
        if not candidates:
            return None

        def benefit(info: SegmentInfo) -> float:
            utilisation = info.utilisation
            age = max(now - info.modified_at, 0.0)
            return (1.0 - utilisation) * (age + 1.0) / (1.0 + utilisation)

        return max(candidates, key=benefit)


class CleanerDaemon:
    """Background thread that keeps the LFS supplied with free segments."""

    def __init__(
        self,
        scheduler: Scheduler,
        layout: LogStructuredLayout,
        policy: SegmentCleaner,
        low_water: float = 0.2,
        high_water: float = 0.4,
        check_interval: float = 5.0,
    ):
        if not (0.0 <= low_water < high_water <= 1.0):
            raise ConfigurationError("cleaner water marks must satisfy 0 <= low < high <= 1")
        self.scheduler = scheduler
        self.layout = layout
        self.policy = policy
        self.low_water = low_water
        self.high_water = high_water
        self.check_interval = check_interval
        self.segments_cleaned = 0
        self.blocks_copied = 0
        self.thread: Optional[Thread] = None

    def start(self) -> Thread:
        self.thread = self.scheduler.spawn(self._run, name="lfs-cleaner", daemon=True)
        return self.thread

    def _run(self) -> Generator[Any, Any, None]:
        while True:
            yield from self.scheduler.sleep(self.check_interval)
            if self.layout.free_segment_fraction >= self.low_water:
                continue
            yield from self.clean_until(self.high_water)

    def clean_until(self, target_fraction: float) -> Generator[Any, Any, int]:
        """Clean segments until the free fraction reaches ``target_fraction``.

        Returns the number of segments cleaned.  Also usable synchronously
        (outside the daemon) by tests and by the layout when it runs short.
        """
        cleaned = 0
        while self.layout.free_segment_fraction < target_fraction:
            victim = self.policy.choose(self.layout.segment_infos(), self.scheduler.now)
            if victim is None:
                break
            copied, _examined = yield from self.layout.clean_segment(victim.index)
            cleaned += 1
            self.segments_cleaned += 1
            self.blocks_copied += copied
        return cleaned


def make_cleaner(name: str) -> SegmentCleaner:
    """Factory keyed by ``LayoutConfig.cleaner_policy``."""
    if name == "greedy":
        return GreedyCleaner()
    if name == "cost-benefit":
        return CostBenefitCleaner()
    raise ConfigurationError(f"unknown cleaner policy {name!r}")
