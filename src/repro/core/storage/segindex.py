"""Per-segment summaries for the LSM-style LFS read/cleaner path.

An LFS segment is structurally an SSTable: immutable once sealed,
sequentially written, compacted (cleaned) later.  This module provides the
standard LSM read-path companions for each segment:

* a :class:`BloomFilter` over the segment's ``(owner, logical_block)``
  entries (plus owner-only keys), so consumers can skip segments that
  cannot hold a block without decoding the full summary;
* a sparse ``(owner, logical_block) -> in-segment offset`` index sampled
  every ``sparse_every`` entries;
* live/dead block counters maintained incrementally as the log appends and
  overwrites kill old copies.

A :class:`SegmentIndex` is built incrementally while its segment is the
active head of the log, persisted alongside the segment-summary block when
the segment seals, and discarded when the cleaner frees the segment.

:class:`UtilisationBuckets` is the cleaner-side companion: segments are
tracked in utilisation buckets updated in O(1) on every append/kill, so a
cleaner wakeup selects its victim from a bounded candidate set drawn from
the emptiest buckets instead of rebuilding an O(num_segments) info list.

Everything here is deterministic: hashing is explicit multiplicative
mixing (no interpreter hash randomisation), and bucket iteration follows
dict insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "SegmentIndexConfig",
    "BloomFilter",
    "SegmentIndex",
    "UtilisationBuckets",
]

_MASK64 = (1 << 64) - 1
#: multiplicative mixing constants (splitmix64 / Murmur finalisers).
_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 0xBF58476D1CE4E5B9
_MIX3 = 0x94D049BB133111EB


def _mix(value: int) -> int:
    """Deterministic 64-bit finaliser (splitmix64)."""
    value = (value + _MIX1) & _MASK64
    value ^= value >> 30
    value = (value * _MIX2) & _MASK64
    value ^= value >> 27
    value = (value * _MIX3) & _MASK64
    return value ^ (value >> 31)


def entry_key(owner: int, logical_block: int, is_inode: bool) -> int:
    """Stable 64-bit key of one segment-summary entry."""
    return _mix((owner << 33) ^ (logical_block << 1) ^ (1 if is_inode else 0))


def owner_key(owner: int) -> int:
    """Stable 64-bit key of an owner (inode number) alone."""
    return _mix((owner << 1) | 1)


@dataclass(frozen=True)
class SegmentIndexConfig:
    """Knobs of the per-segment index machinery (see ``LayoutConfig``)."""

    #: sample every Nth summary entry into the sparse offset index.
    sparse_every: int = 4
    #: bloom filter size, in bits per indexed key.
    bloom_bits: int = 8
    #: cleaner candidate-set bound drawn from the utilisation buckets
    #: (0 = unbounded, i.e. fall back to the full segment scan).
    cleaner_candidates: int = 64
    #: maximum blocks coalesced into one cold-read run (<=1 disables).
    read_coalesce_blocks: int = 8

    def __post_init__(self) -> None:
        if self.sparse_every < 1:
            raise ConfigurationError("index_sparse_every must be >= 1")
        if self.bloom_bits < 1:
            raise ConfigurationError("index_bloom_bits must be >= 1")
        if self.cleaner_candidates < 0:
            raise ConfigurationError("cleaner_candidates must be >= 0")
        if self.read_coalesce_blocks < 0:
            raise ConfigurationError("read_coalesce_blocks must be >= 0")


class BloomFilter:
    """A tiny deterministic bloom filter over 64-bit keys.

    ``k`` probe positions are derived from one key by double hashing
    (h1 + i*h2), the textbook construction.  No deletions: entries of a
    sealed segment only ever die, they are never removed from the filter,
    so a stale positive costs a wasted probe while a negative is always
    authoritative.
    """

    __slots__ = ("num_bits", "num_hashes", "bits")

    def __init__(self, num_bits: int, num_hashes: int = 4, bits: int = 0):
        self.num_bits = max(8, num_bits)
        self.num_hashes = max(1, num_hashes)
        self.bits = bits

    def add(self, key: int) -> None:
        h1 = key & _MASK64
        h2 = _mix(key) | 1
        bits = self.bits
        for i in range(self.num_hashes):
            bits |= 1 << ((h1 + i * h2) % self.num_bits)
        self.bits = bits

    def may_contain(self, key: int) -> bool:
        h1 = key & _MASK64
        h2 = _mix(key) | 1
        bits = self.bits
        for i in range(self.num_hashes):
            if not (bits >> ((h1 + i * h2) % self.num_bits)) & 1:
                return False
        return True

    def to_bytes(self) -> bytes:
        return self.bits.to_bytes((self.num_bits + 7) // 8, "little")

    @classmethod
    def from_bytes(cls, data: bytes, num_bits: int, num_hashes: int) -> "BloomFilter":
        return cls(num_bits, num_hashes, bits=int.from_bytes(data, "little"))

    @property
    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8


class SegmentIndex:
    """The LSM-style summary of one segment.

    Built incrementally via :meth:`add` while the segment is the active log
    head (one call per appended block, in offset order); sealed segments
    keep it in memory for the cleaner and the read path, and persist it
    next to the segment-summary block.  ``offset`` is the in-segment block
    offset (1-based: offset 0 is the summary block itself).
    """

    __slots__ = ("config", "capacity", "bloom", "sparse", "entries", "live", "dead")

    def __init__(
        self,
        config: SegmentIndexConfig,
        capacity: int,
        bloom: Optional[BloomFilter] = None,
        sparse: Optional[Dict[Tuple[int, int, bool], int]] = None,
        entries: int = 0,
        live: int = 0,
        dead: int = 0,
    ):
        self.config = config
        self.capacity = capacity
        if bloom is None:
            # Two keys per entry (exact + owner-only).
            bloom = BloomFilter(2 * capacity * config.bloom_bits)
        self.bloom = bloom
        self.sparse: Dict[Tuple[int, int, bool], int] = sparse if sparse is not None else {}
        self.entries = entries
        self.live = live
        self.dead = dead

    # ------------------------------------------------------------------ building

    def add(self, owner: int, logical_block: int, is_inode: bool, offset: int) -> None:
        self.bloom.add(entry_key(owner, logical_block, is_inode))
        self.bloom.add(owner_key(owner))
        if self.entries % self.config.sparse_every == 0:
            self.sparse[(owner, logical_block, is_inode)] = offset
        self.entries += 1
        self.live += 1

    def kill(self) -> None:
        """One block of this segment died (overwritten or released)."""
        if self.live > 0:
            self.live -= 1
            self.dead += 1

    # ------------------------------------------------------------------ probing

    def may_contain(self, owner: int, logical_block: int, is_inode: bool = False) -> bool:
        """False means the segment definitely never stored this entry."""
        return self.bloom.may_contain(entry_key(owner, logical_block, is_inode))

    def may_contain_owner(self, owner: int) -> bool:
        """False means no block of this segment ever belonged to ``owner``."""
        return self.bloom.may_contain(owner_key(owner))

    def find(self, owner: int, logical_block: int, is_inode: bool = False) -> Optional[int]:
        """Exact in-segment offset when the entry was sampled, else None
        (None does not imply absence — consult :meth:`may_contain`)."""
        return self.sparse.get((owner, logical_block, is_inode))

    # ------------------------------------------------------------------ accounting

    @property
    def utilisation(self) -> float:
        if self.capacity == 0:
            return 1.0
        return self.live / self.capacity

    @property
    def memory_bytes(self) -> int:
        """Approximate in-core footprint (bloom + sparse dict entries)."""
        return self.bloom.memory_bytes + 40 * len(self.sparse) + 64

    @classmethod
    def rebuild(
        cls,
        config: SegmentIndexConfig,
        capacity: int,
        entries: Iterable[Tuple[int, int, bool]],
        live: int,
    ) -> "SegmentIndex":
        """Reconstruct an index from decoded summary entries (legacy blocks
        persisted without an index section, or a torn index)."""
        index = cls(config, capacity)
        for offset, (owner, logical, is_inode) in enumerate(entries, start=1):
            index.add(owner, logical, is_inode, offset)
        index.live = min(max(live, 0), index.entries)
        index.dead = index.entries - index.live
        return index

    def __repr__(self) -> str:
        return (
            f"SegmentIndex(entries={self.entries} live={self.live} "
            f"dead={self.dead} sparse={len(self.sparse)})"
        )


class UtilisationBuckets:
    """Sealed segments bucketed by live-block utilisation, updated in O(1).

    Bucket ``i`` holds segments whose utilisation falls in
    ``[i/n, (i+1)/n)``; the cleaner draws its bounded candidate set from
    the lowest buckets upward, so the segments greedy would pick are always
    inside the candidate set.  Cost-benefit's age term can in principle
    prefer a fuller-but-older segment outside the bound — the standard
    LSM-compaction approximation, traded for wakeups that no longer scan
    every segment.

    Buckets are plain dicts (insertion-ordered), so candidate iteration is
    deterministic for a deterministic update sequence.
    """

    __slots__ = ("num_buckets", "buckets", "_where")

    def __init__(self, num_buckets: int = 16):
        if num_buckets < 1:
            raise ConfigurationError("need at least one utilisation bucket")
        self.num_buckets = num_buckets
        self.buckets: List[Dict[int, None]] = [dict() for _ in range(num_buckets)]
        self._where: Dict[int, int] = {}

    def bucket_of(self, live: int, capacity: int) -> int:
        if capacity <= 0:
            return self.num_buckets - 1
        return min(self.num_buckets - 1, (live * self.num_buckets) // capacity)

    def insert(self, segment: int, live: int, capacity: int) -> None:
        self.remove(segment)
        bucket = self.bucket_of(live, capacity)
        self.buckets[bucket][segment] = None
        self._where[segment] = bucket

    def remove(self, segment: int) -> None:
        bucket = self._where.pop(segment, None)
        if bucket is not None:
            self.buckets[bucket].pop(segment, None)

    def update(self, segment: int, live: int, capacity: int) -> None:
        """Move ``segment`` to its new bucket; no-op when untracked or the
        bucket is unchanged (the common case — one dict lookup)."""
        current = self._where.get(segment)
        if current is None:
            return
        target = self.bucket_of(live, capacity)
        if target == current:
            return
        self.buckets[current].pop(segment, None)
        self.buckets[target][segment] = None
        self._where[segment] = target

    def __contains__(self, segment: int) -> bool:
        return segment in self._where

    def __len__(self) -> int:
        return len(self._where)

    def candidates(self, limit: int) -> Iterator[int]:
        """Segments from the emptiest buckets upward, at most ``limit``
        (``limit <= 0`` yields every tracked segment)."""
        yielded = 0
        for bucket in self.buckets:
            for segment in bucket:
                yield segment
                yielded += 1
                if limit > 0 and yielded >= limit:
                    return

    def clear(self) -> None:
        for bucket in self.buckets:
            bucket.clear()
        self._where.clear()
