"""The multi-volume storage array: placement, cache shards and routing.

The traced Sprite server was not "one big disk": it was a Sun 4/280 with
ten HP 97560 disks on three SCSI buses, carved into fourteen file systems
(Section 5.1).  This module grows the framework's storage stack from "one
cache, one volume, one driver list" into that shape:

* :class:`PlacementPolicy` decides which volume a file (or, for striping,
  an individual file block) lives on — pluggable, like every other policy
  in the cut-and-paste framework.
* :class:`VolumeSet` groups N independent :class:`~repro.core.storage.volume.Volume`
  objects, each over its own disk complement.
* :class:`ShardedCache` presents the :class:`~repro.core.cache.BlockCache`
  API over one cache shard per volume, so the file system, the flush
  daemons and the replacement subsystem run unchanged against either a
  single cache or N shards.
* :class:`RoutedLayout` presents the :class:`~repro.core.storage.layout.StorageLayout`
  API over one sub-layout per volume, routing inodes to their home volume
  and data blocks wherever the placement policy puts them.

Volume membership is *encoded in the inode number*: volume ``v`` hands out
numbers congruent to ``ROOT_INODE_NUMBER + v`` modulo the volume count, so
any component can recover a file's home volume from its identifier alone —
no routing table, no lookups, O(1) like the replacement subsystem.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Generator, Iterable, Iterator, List, Optional, Sequence

from repro.assembly.registry import registry
from repro.core.blocks import CacheBlock
from repro.core.cache import BlockCache, CacheStatistics
from repro.core.inode import FileKind, Inode, ROOT_INODE_NUMBER
from repro.core.scheduler import Scheduler
from repro.core.storage.layout import StorageLayout
from repro.core.storage.volume import Volume
from repro.errors import ConfigurationError, DataUnavailable, StorageError

__all__ = [
    "PlacementPolicy",
    "HashPlacement",
    "StripedPlacement",
    "DirectoryAffinityPlacement",
    "NodeAffinityPlacement",
    "make_placement_policy",
    "VolumeSet",
    "ShardedCache",
    "RoutedLayout",
]


# --------------------------------------------------------------------------- placement


class PlacementPolicy(ABC):
    """Decides which volume a file — and each of its blocks — lives on.

    The *home* volume holds the file's inode and is encoded in the inode
    number at allocation time (``number ≡ ROOT + home (mod volumes)``), so
    :meth:`volume_of_file` is pure arithmetic.  Block placement defaults to
    the home volume; striping policies override :meth:`volume_for_block`.
    """

    name = "abstract"

    def __init__(self, num_volumes: int):
        if num_volumes < 1:
            raise ConfigurationError("placement needs at least one volume")
        self.num_volumes = num_volumes

    @abstractmethod
    def home_for_new_file(
        self,
        parent_id: Optional[int],
        name: Optional[str],
        counter: int,
        kind: Optional[FileKind] = None,
    ) -> int:
        """Home volume for a file about to be created.  ``counter`` is the
        array-wide allocation sequence number (a deterministic tiebreak for
        files with no parent/name hint); ``kind`` lets policies treat
        directories differently from regular files."""

    def volume_of_file(self, file_id: int) -> int:
        """Home volume of an existing file, recovered from its inode number."""
        return (file_id - ROOT_INODE_NUMBER) % self.num_volumes

    def volume_for_block(self, file_id: int, block_no: int) -> int:
        """Volume holding one logical block of ``file_id``."""
        return self.volume_of_file(file_id)


def _crc(text: str) -> int:
    return zlib.crc32(text.encode("utf-8", "replace"))


class HashPlacement(PlacementPolicy):
    """Whole-file placement by name hash: all blocks of a file live on the
    volume selected by hashing its (parent, leaf-name) identity, so load
    spreads statistically while every file stays one-volume-local."""

    name = "hash"

    def home_for_new_file(
        self,
        parent_id: Optional[int],
        name: Optional[str],
        counter: int,
        kind: Optional[FileKind] = None,
    ) -> int:
        if name is None:
            return _crc(str(counter)) % self.num_volumes
        return _crc(f"{parent_id if parent_id is not None else 0}/{name}") % self.num_volumes


class StripedPlacement(PlacementPolicy):
    """Round-robin striping: consecutive runs of ``stripe_unit`` blocks of a
    file rotate over the volumes (RAID-0 at file-block granularity), so one
    large file drives every disk in the array at once."""

    name = "stripe"

    def __init__(self, num_volumes: int, stripe_unit: int = 16):
        super().__init__(num_volumes)
        if stripe_unit < 1:
            raise ConfigurationError("stripe unit must be at least one block")
        self.stripe_unit = stripe_unit

    def home_for_new_file(
        self,
        parent_id: Optional[int],
        name: Optional[str],
        counter: int,
        kind: Optional[FileKind] = None,
    ) -> int:
        return counter % self.num_volumes

    def volume_for_block(self, file_id: int, block_no: int) -> int:
        home = self.volume_of_file(file_id)
        return (home + block_no // self.stripe_unit) % self.num_volumes


class DirectoryAffinityPlacement(PlacementPolicy):
    """Directory affinity: the FFS cylinder-group idea lifted to array
    scale.  New *directories* are spread over the volumes (by name hash) so
    the namespace fans out; regular files then land on their parent
    directory's volume, keeping name lookups, dirent updates and the files
    of one working directory on a single set of disk arms."""

    name = "directory"

    def home_for_new_file(
        self,
        parent_id: Optional[int],
        name: Optional[str],
        counter: int,
        kind: Optional[FileKind] = None,
    ) -> int:
        if kind is FileKind.DIRECTORY:
            if name is None:
                return counter % self.num_volumes
            return _crc(f"{parent_id if parent_id is not None else 0}/{name}") % self.num_volumes
        if parent_id is None:
            return counter % self.num_volumes
        return self.volume_of_file(parent_id)


class NodeAffinityPlacement(PlacementPolicy):
    """Creator-node homing: the cluster analogue of directory affinity.

    A *top-level* directory (a child of the root) homes on the cluster node
    of the thread that creates it — spread over that node's volumes by name
    hash — and everything beneath inherits its parent's volume.  A client
    working in its own top-level tree therefore never touches another
    node's disks, which is the layout the parallel replay executor requires
    (each node's worker replays a closed partition of the namespace).

    Outside a cluster the policy degrades to directory affinity over one
    node that owns every volume.  The builder wires the cluster shape in
    through :meth:`bind_cluster`; the policy stays pure arithmetic after
    creation — the creator's node is read from the scheduler's current
    thread at allocation time, which is deterministic under the node-merge
    schedule.
    """

    name = "node"

    def __init__(self, num_volumes: int):
        super().__init__(num_volumes)
        #: volumes owned by one node; all of them until bind_cluster().
        self.volumes_per_node = num_volumes
        #: returns the allocating thread's cluster node (None = node 0).
        self.node_resolver: Optional[Callable[[], int]] = None

    def bind_cluster(
        self, volumes_per_node: int, node_resolver: Callable[[], int]
    ) -> None:
        if volumes_per_node < 1 or self.num_volumes % volumes_per_node:
            raise ConfigurationError(
                f"{self.num_volumes} volumes do not split into nodes of "
                f"{volumes_per_node}"
            )
        self.volumes_per_node = volumes_per_node
        self.node_resolver = node_resolver

    def home_for_new_file(
        self,
        parent_id: Optional[int],
        name: Optional[str],
        counter: int,
        kind: Optional[FileKind] = None,
    ) -> int:
        if parent_id is not None and parent_id != ROOT_INODE_NUMBER:
            return self.volume_of_file(parent_id)
        node = self.node_resolver() if self.node_resolver is not None else 0
        base = node * self.volumes_per_node
        if name is None:
            return base + counter % self.volumes_per_node
        return base + _crc(f"{parent_id if parent_id is not None else 0}/{name}") % (
            self.volumes_per_node
        )


# "placement" factories take (num_volumes, stripe_unit=...) and return a
# PlacementPolicy; whole-file policies ignore the stripe keyword.
registry.register(
    "placement", "hash", lambda num_volumes, stripe_unit=16: HashPlacement(num_volumes)
)
registry.register("placement", "stripe", StripedPlacement)
registry.register(
    "placement",
    "directory",
    lambda num_volumes, stripe_unit=16: DirectoryAffinityPlacement(num_volumes),
)
registry.register(
    "placement", "node", lambda num_volumes, stripe_unit=16: NodeAffinityPlacement(num_volumes)
)


def make_placement_policy(
    name: str, num_volumes: int, stripe_unit: int = 16
) -> PlacementPolicy:
    """Factory keyed by ``ArrayConfig.placement``.

    Thin wrapper over ``registry.create("placement", ...)``; third-party
    placement policies registered under the same kind work here unchanged.
    """
    return registry.create("placement", name, num_volumes, stripe_unit=stripe_unit)


# --------------------------------------------------------------------------- volume set


class VolumeSet(Volume):
    """N independent volumes behind one handle.

    Implements the :class:`~repro.core.storage.volume.Volume` protocol for
    the operations the file-system layer performs on "the volume" as a
    whole (``block_size``, ``total_blocks``, ``flush``); everything
    block-address specific goes through the per-volume sub-layouts instead,
    so raw block I/O on the set itself is a usage error.
    """

    def __init__(self, volumes: Sequence[Volume]):
        if not volumes:
            raise StorageError("a volume set needs at least one volume")
        block_size = volumes[0].block_size
        if any(volume.block_size != block_size for volume in volumes):
            raise StorageError("all volumes in a set must share one block size")
        self.volumes = list(volumes)
        self.block_size = block_size

    @property
    def total_blocks(self) -> int:
        return sum(volume.total_blocks for volume in self.volumes)

    @property
    def num_disks(self) -> int:
        return sum(volume.num_disks for volume in self.volumes)

    def flush(self) -> Generator[Any, Any, None]:
        """Wait for every disk queue of every volume to drain."""
        for volume in self.volumes:
            yield from volume.flush()

    def read_run(self, block_addr: int, nblocks: int = 1) -> Generator[Any, Any, None]:
        raise StorageError(
            "a VolumeSet has no flat address space; block I/O goes through "
            "the per-volume sub-layouts"
        )
        yield  # pragma: no cover - generator shape

    def write_run(self, block_addr: int, nblocks: int, data) -> Generator[Any, Any, None]:
        raise StorageError(
            "a VolumeSet has no flat address space; block I/O goes through "
            "the per-volume sub-layouts"
        )
        yield  # pragma: no cover - generator shape

    def __len__(self) -> int:
        return len(self.volumes)

    def __iter__(self) -> Iterator[Volume]:
        return iter(self.volumes)

    def __getitem__(self, index: int) -> Volume:
        return self.volumes[index]

    def __repr__(self) -> str:
        return f"VolumeSet(volumes={len(self.volumes)}, blocks={self.total_blocks})"


# --------------------------------------------------------------------------- sharded cache


class ShardedCacheStatistics:
    """Read-only aggregate view over per-shard :class:`CacheStatistics`.

    Counter attributes sum across the shards on every access, so the view
    is always current.  ``peak_dirty_bytes`` is the sum of per-shard peaks —
    an upper bound on the true simultaneous aggregate peak.
    """

    _FIELDS = tuple(CacheStatistics().snapshot().keys())

    def __init__(self, shards: Sequence[BlockCache]):
        self._shards = list(shards)

    def __getattr__(self, name: str):
        if name in self._FIELDS and name != "hit_rate":
            return sum(getattr(shard.stats, name) for shard in self._shards)
        raise AttributeError(name)

    @property
    def hit_rate(self) -> float:
        lookups = sum(shard.stats.lookups for shard in self._shards)
        if lookups == 0:
            return 0.0
        return sum(shard.stats.hits for shard in self._shards) / lookups

    def snapshot(self) -> dict:
        snapshot: Dict[str, Any] = {}
        for shard in self._shards:
            for key, value in shard.stats.snapshot().items():
                snapshot[key] = snapshot.get(key, 0) + value
        snapshot["hit_rate"] = self.hit_rate
        return snapshot


class _ShardedPolicyView:
    """Aggregate view of the per-shard replacement policies (name plus a
    summed counter snapshot) for reports that expect ``cache.policy``."""

    def __init__(self, shards: Sequence[BlockCache]):
        self._shards = list(shards)

    @property
    def name(self) -> str:
        return self._shards[0].policy.name

    def snapshot(self) -> dict:
        merged: Dict[str, Any] = {}
        for shard in self._shards:
            for key, value in shard.policy.snapshot().items():
                if isinstance(value, (int, float)) and isinstance(
                    merged.get(key, 0), (int, float)
                ):
                    merged[key] = merged.get(key, 0) + value
                else:
                    merged.setdefault(key, value)
        return merged


class ShardedCache:
    """Per-volume :class:`BlockCache` shards behind the ``BlockCache`` API.

    Block-identified operations route to the owning shard via the placement
    router (the same function that places the block on disk, so a block's
    cache shard always fronts the volume that stores it); whole-cache and
    whole-file operations fan out over the shards.  With a single shard
    every call is a bare pass-through, which is what keeps a one-volume
    array byte-identical to the legacy single-cache assembly.
    """

    def __init__(self, shards: Sequence[BlockCache], router: Callable[[int, int], int]):
        if not shards:
            raise ConfigurationError("a sharded cache needs at least one shard")
        self.shards = list(shards)
        self._router = router
        first = self.shards[0]
        self.scheduler = first.scheduler
        self.config = first.config
        self.block_size = first.block_size
        self.with_data = first.with_data
        self._aggregate = (
            first.stats if len(self.shards) == 1 else ShardedCacheStatistics(self.shards)
        )
        self._policy_view = (
            first.policy if len(self.shards) == 1 else _ShardedPolicyView(self.shards)
        )

    # ------------------------------------------------------------------ routing

    def shard_index(self, file_id: int, block_no: int) -> int:
        if len(self.shards) == 1:
            return 0
        return self._router(file_id, block_no) % len(self.shards)

    def shard_for(self, file_id: int, block_no: int) -> BlockCache:
        return self.shards[self.shard_index(file_id, block_no)]

    def _shard_of_block(self, block: CacheBlock) -> BlockCache:
        block_id = block.block_id
        if block_id is None:
            raise ConfigurationError("cannot route a cache block with no identity")
        routed = self.shard_for(block_id.file_id, block_id.block_no)
        if routed.peek(block_id.file_id, block_id.block_no) is block:
            return routed
        # A repair promotion can flip the file's home volume while a thread
        # holds one of its blocks pinned: new lookups route to the new home,
        # but this block still lives in the shard it was allocated in.
        # Route by residence so the in-flight operation completes against
        # its own slot (the old node's flush path then drops the I/O).
        for shard in self.shards:
            if shard.peek(block_id.file_id, block_id.block_no) is block:
                return shard
        return routed

    # ------------------------------------------------------------------ aggregate views

    @property
    def stats(self):
        return self._aggregate

    @property
    def policy(self):
        return self._policy_view

    @property
    def num_blocks(self) -> int:
        return sum(shard.num_blocks for shard in self.shards)

    @property
    def free_count(self) -> int:
        return sum(shard.free_count for shard in self.shards)

    @property
    def clean_count(self) -> int:
        return sum(shard.clean_count for shard in self.shards)

    @property
    def dirty_count(self) -> int:
        return sum(shard.dirty_count for shard in self.shards)

    @property
    def dirty_bytes(self) -> int:
        return sum(shard.dirty_bytes for shard in self.shards)

    @property
    def cached_count(self) -> int:
        return sum(shard.cached_count for shard in self.shards)

    # -- shared cache knobs, fanned out to every shard -------------------------

    @property
    def writeback(self):
        return self.shards[0].writeback

    @writeback.setter
    def writeback(self, fn) -> None:
        for shard in self.shards:
            shard.writeback = fn

    @property
    def dirty_limit_bytes(self) -> Optional[int]:
        return self.shards[0].dirty_limit_bytes

    @dirty_limit_bytes.setter
    def dirty_limit_bytes(self, limit: Optional[int]) -> None:
        for shard in self.shards:
            shard.dirty_limit_bytes = limit

    @property
    def drain_whole_file(self) -> bool:
        return self.shards[0].drain_whole_file

    @drain_whole_file.setter
    def drain_whole_file(self, value: bool) -> None:
        for shard in self.shards:
            shard.drain_whole_file = value

    @property
    def flush_whole_file_on_replacement(self) -> bool:
        return self.shards[0].flush_whole_file_on_replacement

    @flush_whole_file_on_replacement.setter
    def flush_whole_file_on_replacement(self, value: bool) -> None:
        for shard in self.shards:
            shard.flush_whole_file_on_replacement = value

    @property
    def space_requester(self):
        return self.shards[0].space_requester

    @space_requester.setter
    def space_requester(self, fn) -> None:
        for shard in self.shards:
            shard.space_requester = fn

    # ------------------------------------------------------------------ block-routed operations

    def contains(self, file_id: int, block_no: int) -> bool:
        return self.shard_for(file_id, block_no).contains(file_id, block_no)

    def peek(self, file_id: int, block_no: int) -> Optional[CacheBlock]:
        return self.shard_for(file_id, block_no).peek(file_id, block_no)

    def lookup(self, file_id: int, block_no: int) -> Optional[CacheBlock]:
        return self.shard_for(file_id, block_no).lookup(file_id, block_no)

    def allocate(self, file_id: int, block_no: int) -> Generator[Any, Any, CacheBlock]:
        while True:
            shard = self.shard_for(file_id, block_no)
            block = yield from shard.allocate(file_id, block_no)
            if self.shard_for(file_id, block_no) is shard:
                return block
            # The block's routing changed while the allocation waited for
            # space (an online migration flipped the file's home volume).
            # The slot landed in a shard nothing will ever route to again:
            # release it and allocate in the right shard instead.
            shard.invalidate(block)

    def touch(self, block: CacheBlock) -> None:
        self._shard_of_block(block).touch(block)

    def mark_dirty(self, block: CacheBlock) -> Generator[Any, Any, None]:
        yield from self._shard_of_block(block).mark_dirty(block)

    def mark_clean(self, block: CacheBlock) -> None:
        self._shard_of_block(block).mark_clean(block)

    def invalidate(self, block: CacheBlock) -> None:
        self._shard_of_block(block).invalidate(block)

    def flush_block(self, block: CacheBlock) -> Generator[Any, Any, int]:
        return (yield from self._shard_of_block(block).flush_block(block))

    def wait_block_ready(
        self, file_id: Optional[int] = None, block_no: Optional[int] = None
    ) -> Generator[Any, Any, None]:
        if file_id is not None and block_no is not None:
            yield from self.shards[self.shard_index(file_id, block_no)].wait_block_ready()
        else:
            yield from self.shards[0].wait_block_ready()

    def notify_block_ready(
        self, file_id: Optional[int] = None, block_no: Optional[int] = None
    ) -> None:
        if file_id is not None and block_no is not None:
            self.shards[self.shard_index(file_id, block_no)].notify_block_ready()
        else:
            for shard in self.shards:
                shard.notify_block_ready()

    # ------------------------------------------------------------------ fan-out queries

    def dirty_blocks_of(self, file_id: int) -> List[CacheBlock]:
        blocks: List[CacheBlock] = []
        for shard in self.shards:
            blocks.extend(shard.dirty_blocks_of(file_id))
        return blocks

    def cached_blocks_of(self, file_id: int) -> List[CacheBlock]:
        blocks: List[CacheBlock] = []
        for shard in self.shards:
            blocks.extend(shard.cached_blocks_of(file_id))
        return blocks

    def oldest_dirty(self, skip_busy: bool = True) -> Optional[CacheBlock]:
        oldest: Optional[CacheBlock] = None
        for shard in self.shards:
            candidate = shard.oldest_dirty(skip_busy=skip_busy)
            if candidate is None:
                continue
            if oldest is None or (candidate.dirty_since or 0.0) < (oldest.dirty_since or 0.0):
                oldest = candidate
        return oldest

    def dirty_files(self) -> List[int]:
        entries: List[tuple[float, int]] = []
        for shard in self.shards:
            for block in shard._dirty.values():
                entries.append((block.dirty_since or 0.0, block.block_id.file_id))
        entries.sort(key=lambda item: item[0])
        seen: List[int] = []
        for _when, file_id in entries:
            if file_id not in seen:
                seen.append(file_id)
        return seen

    def blocks(self) -> Iterable[CacheBlock]:
        for shard in self.shards:
            yield from shard.blocks()

    def oldest_dirty_age(self) -> float:
        return max((shard.oldest_dirty_age() for shard in self.shards), default=0.0)

    def has_allocatable_slot(self) -> bool:
        return any(shard.has_allocatable_slot() for shard in self.shards)

    def notify_space_available(self) -> None:
        for shard in self.shards:
            shard.notify_space_available()

    # ------------------------------------------------------------------ fan-out mutations

    def invalidate_file(self, file_id: int, from_block: int = 0) -> tuple[int, int]:
        clean_dropped = 0
        dirty_dropped = 0
        for shard in self.shards:
            clean, dirty = shard.invalidate_file(file_id, from_block)
            clean_dropped += clean
            dirty_dropped += dirty
        return clean_dropped, dirty_dropped

    def flush_file(self, file_id: int) -> Generator[Any, Any, int]:
        written = 0
        for shard in self.shards:
            written += yield from shard.flush_file(file_id)
        return written

    def flush_oldest(self, whole_file: bool) -> Generator[Any, Any, int]:
        victim = self.oldest_dirty()
        if victim is None:
            return 0
        if whole_file:
            return (yield from self.flush_file(victim.block_id.file_id))
        return (yield from self._shard_of_block(victim).flush_block(victim))

    def flush_all(self) -> Generator[Any, Any, int]:
        written = 0
        for shard in self.shards:
            written += yield from shard.flush_all()
        return written

    def __repr__(self) -> str:
        return (
            f"ShardedCache(shards={len(self.shards)}, blocks={self.num_blocks}, "
            f"free={self.free_count}, clean={self.clean_count}, dirty={self.dirty_count})"
        )


# --------------------------------------------------------------------------- routed layout


class RoutedLayout(StorageLayout):
    """A storage layout routing files and blocks over per-volume sub-layouts.

    Each volume runs its own complete layout instance (LFS or FFS) over its
    own disks; this class owns only the *routing*: inode numbers are handed
    out in per-volume arithmetic progressions (``number ≡ ROOT + v`` modulo
    the volume count) so a file's home volume is recoverable from its
    identifier, and data blocks follow the placement policy — the home
    volume for whole-file policies, rotating volumes for striping.
    """

    name = "array"

    def __init__(
        self,
        scheduler: Scheduler,
        volume_set: VolumeSet,
        sublayouts: Sequence[StorageLayout],
        placement: PlacementPolicy,
        block_size: int,
        seed: int = 0,
    ):
        if len(sublayouts) != len(volume_set):
            raise ConfigurationError("need exactly one sub-layout per volume")
        if placement.num_volumes != len(sublayouts):
            raise ConfigurationError("placement volume count must match the sub-layouts")
        super().__init__(
            scheduler,
            volume_set,
            block_size,
            simulated=sublayouts[0].simulated,
            seed=seed,
        )
        self.sublayouts = list(sublayouts)
        self.placement = placement
        volumes = len(self.sublayouts)
        for v, sub in enumerate(self.sublayouts):
            # Slot-mapped layouts (FFS) must be built for exactly this
            # member's arithmetic progression of inode numbers.
            stride = getattr(sub, "inode_stride", None)
            if stride is not None and (stride, getattr(sub, "inode_base", None)) != (volumes, v):
                raise ConfigurationError(
                    f"sub-layout {v} expects inode progression base="
                    f"{getattr(sub, 'inode_base', None)} stride={stride}, "
                    f"but this array hands it base={v} stride={volumes}"
                )
        self._next_number = [ROOT_INODE_NUMBER + v for v in range(volumes)]
        self._file_counter = 0
        #: fault board (``repro.core.faults.FaultState``) — attached by the
        #: cluster builder; None (or ``active`` False) costs one attribute
        #: check per I/O and changes nothing.
        self.faults: Optional[Any] = None
        #: replica manager (``repro.core.cluster.replication``) — attached
        #: by the builder when ``ClusterConfig.replicas`` > 0.
        self.replication: Optional[Any] = None

    # ------------------------------------------------------------------ routing helpers

    @property
    def num_volumes(self) -> int:
        return len(self.sublayouts)

    def home_of(self, file_id: int) -> int:
        return self.placement.volume_of_file(file_id)

    def sub_for_file(self, file_id: int) -> StorageLayout:
        return self.sublayouts[self.home_of(file_id)]

    def sub_for_block(self, file_id: int, block_no: int) -> StorageLayout:
        return self.sublayouts[self.placement.volume_for_block(file_id, block_no)]

    # ------------------------------------------------------------------ lifecycle

    def format(self) -> Generator[Any, Any, None]:
        self._next_number = [ROOT_INODE_NUMBER + v for v in range(self.num_volumes)]
        self._file_counter = 0
        for sub in self.sublayouts:
            yield from sub.format()

    def mount(self) -> Generator[Any, Any, None]:
        for sub in self.sublayouts:
            yield from sub.mount()

    def checkpoint(self) -> Generator[Any, Any, None]:
        for sub in self.sublayouts:
            yield from sub.checkpoint()

    def unmount(self) -> Generator[Any, Any, None]:
        for sub in self.sublayouts:
            yield from sub.unmount()

    # ------------------------------------------------------------------ inodes

    def allocate_inode(
        self,
        kind: FileKind,
        parent_id: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Inode:
        if self._file_counter == 0:
            # The very first allocation is the root directory; like the
            # superblock it lives on volume 0.
            home = 0
        else:
            home = self.placement.home_for_new_file(
                parent_id, name, self._file_counter, kind=kind
            )
        number = self._next_number[home]
        self._next_number[home] += self.num_volumes
        sub = self.sublayouts[home]
        # Force the home volume's progression onto the sub-layout's counter;
        # the sub-layout allocates exactly this number and we never reuse it.
        sub.next_inode_number = number  # type: ignore[attr-defined]
        inode = sub.allocate_inode(kind)
        self._file_counter += 1
        return inode

    def known_inode_numbers(self) -> List[int]:
        known: set[int] = set()
        for sub in self.sublayouts:
            known.update(sub.known_inode_numbers())
        return sorted(known)

    def read_inode(self, inode_number: int) -> Generator[Any, Any, Inode]:
        volume = self.home_of(inode_number)
        faults = self.faults
        if faults is not None and faults.active and faults.volume_unavailable(volume):
            faults.note_failed_read(volume)
            if self.replication is not None:
                return (
                    yield from self.replication.read_inode_failover(inode_number, volume)
                )
            raise DataUnavailable(
                f"inode {inode_number} lives on unavailable volume {volume} "
                "and the cluster keeps no replicas"
            )
        return (yield from self.sublayouts[volume].read_inode(inode_number))

    def write_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        volume = self.home_of(inode.number)
        faults = self.faults
        if faults is not None and faults.active and faults.volume_unavailable(volume):
            # The home volume eats the write — the data loss replication
            # absorbs (and a bare cluster simply suffers).
            faults.note_dropped_write(volume)
        else:
            yield from self.sublayouts[volume].write_inode(inode)
        if self.replication is not None:
            yield from self.replication.replicate_inode(inode)

    def free_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        if self.replication is not None:
            yield from self.replication.free_replicas(inode)
        # Data blocks may be spread over several volumes (striping); release
        # them through the router first, then retire the inode on its home.
        yield from self.release_blocks(inode, 0)
        yield from self.sub_for_file(inode.number).free_inode(inode)
        # A dead file no longer needs a migration routing entry (the
        # cluster placement tier keeps one per displaced file).
        forget = getattr(self.placement, "forget", None)
        if forget is not None:
            forget(inode.number)

    # ------------------------------------------------------------------ data blocks

    def read_file_block(
        self, inode: Inode, block_no: int, block: CacheBlock
    ) -> Generator[Any, Any, bool]:
        volume = self.placement.volume_for_block(inode.number, block_no)
        faults = self.faults
        if faults is not None and faults.active:
            if faults.volume_unavailable(volume):
                faults.note_failed_read(volume)
                if self.replication is not None:
                    return (
                        yield from self.replication.read_failover(
                            inode, block_no, block, volume
                        )
                    )
                raise DataUnavailable(
                    f"block {block_no} of file {inode.number} lives on "
                    f"unavailable volume {volume} and the cluster keeps no replicas"
                )
            extra = faults.extra_delay(volume)
            if extra:
                yield from self.scheduler.sleep(extra)
        return (yield from self.sublayouts[volume].read_file_block(inode, block_no, block))

    def write_file_blocks(
        self, inode: Inode, blocks: List[tuple[int, CacheBlock]]
    ) -> Generator[Any, Any, None]:
        if not blocks:
            return
        groups: Dict[int, List[tuple[int, CacheBlock]]] = {}
        for block_no, cache_block in blocks:
            volume = self.placement.volume_for_block(inode.number, block_no)
            groups.setdefault(volume, []).append((block_no, cache_block))
        faults = self.faults
        for volume in sorted(groups):
            if faults is not None and faults.active:
                if faults.volume_unavailable(volume):
                    # A dead disk eats the write; the flusher completes and
                    # the data survives only where replication put a copy.
                    faults.note_dropped_write(volume, len(groups[volume]))
                    continue
                extra = faults.extra_delay(volume)
                if extra:
                    yield from self.scheduler.sleep(extra)
            yield from self.sublayouts[volume].write_file_blocks(inode, groups[volume])
        if self.replication is not None:
            yield from self.replication.replicate_writes(inode, blocks)

    def release_blocks(self, inode: Inode, from_block: int) -> Generator[Any, Any, None]:
        groups: Dict[int, Dict[int, int]] = {}
        for block_no, address in inode.block_map.items():
            if block_no < from_block:
                continue
            volume = self.placement.volume_for_block(inode.number, block_no)
            groups.setdefault(volume, {})[block_no] = address
        for volume in sorted(groups):
            # Each sub-layout must only see (and free) the addresses it owns,
            # so hand it a shim inode carrying just that volume's mappings.
            shim = Inode(number=inode.number, kind=inode.kind)
            shim.block_map = groups[volume]
            yield from self.sublayouts[volume].release_blocks(shim, from_block)
        inode.drop_blocks_from(from_block)

    # ------------------------------------------------------------------ space accounting

    @property
    def free_blocks(self) -> int:
        return sum(sub.free_blocks for sub in self.sublayouts)

    @property
    def free_segment_fraction(self) -> float:
        """Mean free-segment fraction over LFS sub-layouts (1.0 otherwise)."""
        fractions = [
            sub.free_segment_fraction
            for sub in self.sublayouts
            if hasattr(sub, "free_segment_fraction")
        ]
        if not fractions:
            return 1.0
        return sum(fractions) / len(fractions)

    # ------------------------------------------------------------------ reporting

    def combined_stats(self) -> dict:
        """Summed :class:`~repro.core.storage.layout.LayoutStatistics` over
        the sub-layouts (the per-volume breakdown lives in the report)."""
        totals: Dict[str, int] = {}
        for sub in self.sublayouts:
            for key, value in vars(sub.stats).items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        return totals

    def __repr__(self) -> str:
        return (
            f"RoutedLayout(volumes={self.num_volumes}, "
            f"placement={self.placement.name!r}, kind={self.sublayouts[0].name!r})"
        )
