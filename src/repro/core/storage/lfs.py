"""A segmented log-structured file system layout (Sprite-LFS style).

"Currently, we have implemented a segmented LFS.  This system stores
file-system updates to the end of the log, and is able to find files through
an IFILE.  The log-cleaner can be replaced and is plugged into the LFS
component when the system starts up." (Section 2)

On-disk layout (real instantiation):

```
block 0      superblock (points at the most recent checkpoint)
block 1...   segments, each ``segment_blocks`` blocks long:
             block 0 of a segment = segment summary
             blocks 1..N-1        = log blocks (file data, inodes, checkpoints)
```

The inode map (the IFILE contents) maps inode numbers to the log address of
the most recent copy of each inode; it is kept in memory and persisted in
checkpoints, which are themselves appended to the log.

A *simulated* LFS issues exactly the same disk traffic but serialises no
data, and synthesises stable random addresses for file blocks it has never
seen (trace replay touches files that existed before the trace started).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import defaultdict
from typing import Any, Generator, Optional

from repro.assembly.registry import registry
from repro.core import codec
from repro.core.blocks import CacheBlock
from repro.core.inode import FileKind, Inode, ROOT_INODE_NUMBER
from repro.core.scheduler import Scheduler
from repro.core.storage.layout import StorageLayout
from repro.core.storage.segindex import (
    BloomFilter,
    SegmentIndex,
    SegmentIndexConfig,
    UtilisationBuckets,
    owner_key,
)
from repro.core.storage.volume import Volume
from repro.core.sync import Mutex
from repro.errors import NoSpaceLeft, StorageError
from repro.units import DEFAULT_BLOCK_SIZE

__all__ = ["LogStructuredLayout", "SegmentInfo"]


def _contiguous_runs(offsets: list[int]) -> list[tuple[int, int]]:
    """Group a sorted offset list into ``(start, length)`` runs."""
    runs: list[tuple[int, int]] = []
    for offset in offsets:
        if runs and runs[-1][0] + runs[-1][1] == offset:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((offset, 1))
    return runs


class SegmentInfo:
    """Cleaner-visible view of one segment."""

    __slots__ = ("index", "live_blocks", "capacity", "modified_at")

    def __init__(self, index: int, live_blocks: int, capacity: int, modified_at: float):
        self.index = index
        self.live_blocks = live_blocks
        self.capacity = capacity
        self.modified_at = modified_at

    @property
    def utilisation(self) -> float:
        if self.capacity == 0:
            return 1.0
        return self.live_blocks / self.capacity

    def __repr__(self) -> str:
        return f"SegmentInfo(#{self.index} live={self.live_blocks}/{self.capacity})"


class LogStructuredLayout(StorageLayout):
    """Segmented log-structured layout."""

    name = "lfs"

    def __init__(
        self,
        scheduler: Scheduler,
        volume: Volume,
        block_size: int = DEFAULT_BLOCK_SIZE,
        segment_blocks: int = 64,
        simulated: bool = False,
        seed: int = 0,
        index_config: Optional[SegmentIndexConfig] = None,
    ):
        super().__init__(scheduler, volume, block_size, simulated=simulated, seed=seed)
        if segment_blocks < 4:
            raise StorageError("segments must hold at least 4 blocks")
        self.segment_blocks = segment_blocks
        # Segments are laid out per disk so a segment never straddles a disk
        # boundary (one segment write is one disk operation).  Block 0 of the
        # volume (on disk 0) is reserved for the superblock.
        self._segment_starts: list[int] = []
        for disk_index in range(volume.num_disks):
            disk_blocks = volume.blocks_on_disk(disk_index)
            start = disk_blocks.start + (1 if disk_index == 0 else 0)
            usable = disk_blocks.stop - start
            for segment in range(usable // segment_blocks):
                self._segment_starts.append(start + segment * segment_blocks)
        self.num_segments = len(self._segment_starts)
        if self.num_segments < 2:
            raise StorageError(
                f"volume too small for LFS: {self.num_segments} segments of {segment_blocks} blocks"
            )
        # Geometry is static: resolve each segment's disk once instead of a
        # volume address translation on every activation/pick.
        self._segment_disk: list[int] = [
            volume.disk_of(start) for start in self._segment_starts
        ]
        # --- IFILE / inode map: inode number -> (log address, blocks) -------
        self.inode_map: dict[int, tuple[int, int]] = {}
        # --- segment accounting ------------------------------------------------
        self.segment_usage: dict[int, int] = {s: 0 for s in range(self.num_segments)}
        self.segment_mtime: dict[int, float] = {s: 0.0 for s in range(self.num_segments)}
        self.segment_summaries: dict[int, list[tuple[int, int, bool]]] = defaultdict(list)
        self.free_segments: set[int] = set(range(self.num_segments))
        # --- in-core state -----------------------------------------------------
        self.next_inode_number = ROOT_INODE_NUMBER
        self._inode_objects: dict[int, Inode] = {}
        self._active_segment: Optional[int] = None
        self._active_offset = 1
        self._append_lock: Optional[Mutex] = None
        self._checkpoint_location: Optional[tuple[int, int]] = None
        self._mounted = False
        self._last_disk = -1
        # --- free-segment heaps (one per disk, lazy deletion) ------------------
        # ``free_segments`` stays the source of truth; the heaps only order it
        # so _pick_free_segment is O(disks·log n) instead of an O(F) scan.
        self._free_heaps: list[list[int]] = []
        self._rebuild_free_heaps()
        # Incremental total of live blocks across all segments (= what the old
        # free_blocks property recomputed with an O(num_segments) sum).
        self._live_total = 0
        # --- LSM-style per-segment indexes (None/off = pre-index behaviour) ---
        self.index_config = index_config
        self._index_on = index_config is not None
        #: recovery crash points; attached by the assembly builder when a
        #: CrashPoints instance is threaded through the stack.
        self.crashpoints = None
        #: True once a checkpoint is reachable from the superblock (the
        #: recovery floor; crash points only arm past it).
        self._durable_checkpoint = False
        self._indexes: dict[int, SegmentIndex] = {}
        self._buckets = UtilisationBuckets()
        #: non-free segments whose summary/index has not been read since
        #: mount (lazy mount: loaded on first cleaner touch).
        self._unloaded: set[int] = set()
        #: blocks prefetched by cold-read run coalescing, keyed by disk
        #: address (payload bytes, or None in simulated mode).
        self._staged_reads: dict[int, Optional[bytes]] = {}
        #: layout-wide owner bloom: which inode numbers ever hit this log.
        self._owner_bloom = BloomFilter(1 << 14) if self._index_on else None

    # ------------------------------------------------------------------ geometry helpers

    def segment_start(self, segment: int) -> int:
        return self._segment_starts[segment]

    def segment_of(self, block_addr: int) -> int:
        """Segment index containing ``block_addr``, or -1 if it lies outside
        any segment (reserved blocks, end-of-disk slack)."""
        index = bisect_right(self._segment_starts, block_addr) - 1
        if index < 0:
            return -1
        if block_addr < self._segment_starts[index] + self.segment_blocks:
            return index
        return -1

    @property
    def free_segment_count(self) -> int:
        return len(self.free_segments)

    @property
    def free_segment_fraction(self) -> float:
        return self.free_segment_count / self.num_segments

    @property
    def free_blocks(self) -> int:
        per_segment = self.segment_blocks - 1  # minus the summary block
        return self.free_segment_count * per_segment + max(
            0,
            (self.num_segments - self.free_segment_count) * per_segment
            - self._live_total,
        )

    # ------------------------------------------------------------------ lifecycle

    def format(self) -> Generator[Any, Any, None]:
        """Write an empty file system: a superblock with no checkpoint."""
        self.inode_map.clear()
        self._inode_objects.clear()
        self.segment_usage = {s: 0 for s in range(self.num_segments)}
        self.segment_summaries.clear()
        self.free_segments = set(range(self.num_segments))
        self.next_inode_number = ROOT_INODE_NUMBER
        self._checkpoint_location = None
        self._durable_checkpoint = False
        self._rebuild_free_heaps()
        self._live_total = 0
        self._indexes.clear()
        self._buckets.clear()
        self._unloaded.clear()
        self._staged_reads.clear()
        if self._index_on:
            self._owner_bloom = BloomFilter(1 << 14)
        if not self.simulated:
            superblock = codec.pack_superblock(
                self.block_size, self.segment_blocks, self.volume.total_blocks, 0, 0
            )
            yield from self.volume.write_block(0, self._pad(superblock))
            self.stats.disk_writes += 1

    def mount(self) -> Generator[Any, Any, None]:
        self._append_lock = Mutex(self.scheduler, "lfs-append")
        if self.simulated:
            self._mounted = True
            self._activate_segment(self._pick_free_segment())
            return
        data = yield from self.volume.read_block(0)
        self.stats.disk_reads += 1
        if data is None:
            raise StorageError("cannot mount a real LFS on a data-less volume")
        superblock = codec.unpack_superblock(data)
        if superblock["block_size"] != self.block_size:
            raise StorageError(
                f"volume was formatted with block size {superblock['block_size']}, "
                f"mounted with {self.block_size}"
            )
        if superblock["checkpoint_addr"]:
            yield from self._load_checkpoint(
                superblock["checkpoint_addr"], superblock["checkpoint_blocks"]
            )
        self._mounted = True
        self._activate_segment(self._pick_free_segment())

    def _load_checkpoint(self, address: int, nblocks: int) -> Generator[Any, Any, None]:
        raw = yield from self.volume.read_run(address, nblocks)
        self.stats.disk_reads += 1
        if raw is None:
            raise StorageError("checkpoint read returned no data")
        checkpoint = codec.unpack_checkpoint(raw)
        self.inode_map = dict(checkpoint["inode_map"])
        self.next_inode_number = checkpoint["next_inode_number"]
        usage = checkpoint["segment_usage"]
        self.segment_usage = {s: usage.get(s, 0) for s in range(self.num_segments)}
        self.free_segments = {
            s for s in range(self.num_segments) if self.segment_usage[s] == 0
        }
        self._checkpoint_location = (address, nblocks)
        self._durable_checkpoint = True
        self._rebuild_free_heaps()
        self._live_total = sum(self.segment_usage.values())
        self._staged_reads.clear()
        if self._index_on:
            # Lazy mount: defer the one-read-per-segment summary sweep.  The
            # checkpoint's usage counters are enough to seed the cleaner's
            # utilisation buckets; a segment's summary (and persisted index)
            # is read the first time the cleaner touches it.
            self._indexes.clear()
            self._buckets.clear()
            self._unloaded.clear()
            self.segment_summaries.clear()
            self._owner_bloom = BloomFilter(1 << 14)
            for segment in range(self.num_segments):
                if segment in self.free_segments:
                    continue
                self._unloaded.add(segment)
                self._buckets.insert(
                    segment, self.segment_usage[segment], self.segment_blocks - 1
                )
        else:
            yield from self._reload_summaries()

    def _reload_summaries(self) -> Generator[Any, Any, None]:
        self.segment_summaries.clear()
        for segment in range(self.num_segments):
            if segment in self.free_segments:
                continue
            raw = yield from self.volume.read_block(self.segment_start(segment))
            self.stats.disk_reads += 1
            if raw is None:
                continue
            try:
                entries = codec.unpack_segment_summary(raw)
            except StorageError:
                entries = []
            self.segment_summaries[segment] = entries

    def _load_segment_summary(self, segment: int) -> Generator[Any, Any, None]:
        """Lazily read one sealed segment's summary block (index-on mount).

        Decodes the summary entries and, when the block carries a persisted
        index section, the bloom/sparse index; legacy blocks written before
        index persistence get their index rebuilt from the entries."""
        self._unloaded.discard(segment)
        try:
            raw = yield from self.volume.read_block(self.segment_start(segment))
            self.stats.disk_reads += 1
        except StorageError:
            raw = None
        self.stats.lazy_summary_loads += 1
        entries: list[tuple[int, int, bool]] = []
        packed = None
        if raw is not None:
            try:
                entries = codec.unpack_segment_summary(raw)
                packed = codec.unpack_segment_index(
                    raw, codec.segment_summary_size(len(entries))
                )
            except StorageError:
                entries = []
        self.segment_summaries[segment] = entries
        assert self.index_config is not None
        live = self.segment_usage[segment]
        if packed is not None and packed["sparse_every"] == self.index_config.sparse_every:
            self.stats.index_reads += 1
            index = SegmentIndex(
                self.index_config,
                self.segment_blocks - 1,
                bloom=BloomFilter.from_bytes(
                    packed["bloom_bytes"], packed["bloom_bits"], packed["bloom_hashes"]
                ),
                sparse=dict(packed["sparse"]),
                entries=packed["entries"],
                live=min(max(live, 0), packed["entries"]),
            )
            index.dead = index.entries - index.live
        else:
            index = SegmentIndex.rebuild(
                self.index_config, self.segment_blocks - 1, entries, live
            )
        self._indexes[segment] = index
        if self._owner_bloom is not None:
            for owner, _logical, _is_inode in entries:
                self._owner_bloom.add(owner_key(owner))

    def checkpoint(self) -> Generator[Any, Any, None]:
        """Append a checkpoint to the log and point the superblock at it."""
        if not self._mounted:
            return
        if self.simulated:
            return
        # Retire the previous checkpoint's blocks.
        if self._checkpoint_location is not None:
            old_addr, old_blocks = self._checkpoint_location
            self._kill_blocks(old_addr, old_blocks)
        payload = codec.pack_checkpoint(
            timestamp=self.scheduler.now,
            next_inode_number=self.next_inode_number,
            next_segment=self._active_segment or 0,
            inode_map=self.inode_map,
            segment_usage={
                s: self.segment_usage[s]
                for s in range(self.num_segments)
                if self.segment_usage[s] > 0 or s == self._active_segment
            },
        )
        nblocks = max(1, -(-len(payload) // self.block_size))
        chunks = self._chunk(payload, nblocks)
        entries = [(0, i, False, chunk) for i, chunk in enumerate(chunks)]
        addresses = yield from self._append(entries, contiguous=True)
        self._checkpoint_location = (addresses[0], nblocks)
        yield from self._write_active_summary()
        superblock = codec.pack_superblock(
            self.block_size,
            self.segment_blocks,
            self.volume.total_blocks,
            addresses[0],
            nblocks,
        )
        yield from self.volume.write_block(0, self._pad(superblock))
        self.stats.disk_writes += 1
        self._durable_checkpoint = True

    # ------------------------------------------------------------------ inodes

    def allocate_inode(
        self,
        kind: FileKind,
        parent_id: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Inode:
        number = self.next_inode_number
        self.next_inode_number += 1
        now = self.scheduler.now
        inode = Inode(number=number, kind=kind, atime=now, mtime=now, ctime=now)
        self._inode_objects[number] = inode
        return inode

    def known_inode_numbers(self) -> list[int]:
        known = set(self.inode_map) | set(self._inode_objects)
        return sorted(known)

    def read_inode(self, inode_number: int) -> Generator[Any, Any, Inode]:
        location = self.inode_map.get(inode_number)
        if location is None:
            inode = self._inode_objects.get(inode_number)
            if inode is None:
                raise StorageError(f"unknown inode {inode_number}")
            return inode
        address, nblocks = location
        raw = yield from self.volume.read_run(address, nblocks)
        self.stats.disk_reads += 1
        self.stats.inodes_read += 1
        if raw is None:
            # Simulated system: the read charged time; return the in-core object.
            inode = self._inode_objects.get(inode_number)
            if inode is None:
                raise StorageError(f"simulated LFS lost track of inode {inode_number}")
            return inode
        inode = codec.unpack_inode(raw)
        self._inode_objects[inode_number] = inode
        return inode

    def write_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        self._inode_objects[inode.number] = inode
        payload = codec.pack_inode(inode)
        nblocks = max(1, -(-len(payload) // self.block_size))
        old = self.inode_map.get(inode.number)
        if old is not None:
            self._kill_blocks(old[0], old[1])
        chunks = self._chunk(payload, nblocks)
        entries = [
            (inode.number, index, True, chunk if not self.simulated else None)
            for index, chunk in enumerate(chunks)
        ]
        addresses = yield from self._append(entries, contiguous=True)
        self.inode_map[inode.number] = (addresses[0], nblocks)
        self.stats.inodes_written += 1

    def free_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        yield from self.release_blocks(inode, 0)
        old = self.inode_map.pop(inode.number, None)
        if old is not None:
            self._kill_blocks(old[0], old[1])
        self._inode_objects.pop(inode.number, None)

    # ------------------------------------------------------------------ file data

    def read_file_block(
        self, inode: Inode, block_no: int, block: CacheBlock
    ) -> Generator[Any, Any, bool]:
        address = inode.get_block_address(block_no)
        if address is None:
            if not self.simulated:
                return False  # a hole: caller sees zeros
            address = self.synthesize_address(inode.number, block_no)
        if self._index_on and address in self._staged_reads:
            # A previous coalesced run already fetched this block.
            raw = self._staged_reads.pop(address)
            self.stats.coalesced_read_hits += 1
            self.stats.blocks_read += 1
            if raw is not None and block.data is not None:
                block.data[: len(raw)] = raw
                block.valid_bytes = block.size
            return True
        run = self._read_run_length(inode, block_no, address)
        raw = yield from self.volume.read_run(address, run)
        self.stats.disk_reads += 1
        self.stats.blocks_read += 1
        if run > 1:
            self.stats.cold_read_runs += 1
            self.stats.cold_read_blocks_coalesced += run - 1
            size = self.block_size
            for extra in range(1, run):
                self._staged_reads[address + extra] = (
                    None if raw is None else raw[extra * size : (extra + 1) * size]
                )
            if len(self._staged_reads) > 256:
                # Random workloads rarely consume prefetches; drop the lot
                # rather than let stale staging grow without bound.
                self._staged_reads.clear()
            raw = None if raw is None else raw[:size]
        if raw is not None and block.data is not None:
            block.data[: len(raw)] = raw
            block.valid_bytes = block.size
        return True

    def _read_run_length(self, inode: Inode, block_no: int, address: int) -> int:
        """How many logically-sequential blocks of ``inode`` sit physically
        contiguous after ``address`` (LFS writes sequential data that way).
        Bounded by the coalesce knob and the segment end — segments never
        straddle disks, so the run is always a single-disk operation."""
        if not self._index_on:
            return 1
        limit = self.index_config.read_coalesce_blocks
        if limit <= 1:
            return 1
        segment = self.segment_of(address)
        if segment < 0:
            return 1
        end = self.segment_start(segment) + self.segment_blocks
        run = 1
        while (
            run < limit
            and address + run < end
            and address + run not in self._staged_reads
            and inode.get_block_address(block_no + run) == address + run
        ):
            run += 1
        return run

    def write_file_blocks(
        self, inode: Inode, blocks: list[tuple[int, CacheBlock]]
    ) -> Generator[Any, Any, None]:
        if not blocks:
            return
        entries = []
        for block_no, cache_block in sorted(blocks, key=lambda item: item[0]):
            old_address = inode.get_block_address(block_no)
            if old_address is not None and not self._is_synthetic(inode.number, block_no, old_address):
                self._kill_blocks(old_address, 1)
            entries.append((inode.number, block_no, False, self.block_payload(cache_block)))
        addresses = yield from self._append(entries)
        for (block_no, _cache_block), address in zip(
            sorted(blocks, key=lambda item: item[0]), addresses
        ):
            inode.set_block_address(block_no, address)
        self.stats.blocks_written += len(blocks)

    def release_blocks(self, inode: Inode, from_block: int) -> Generator[Any, Any, None]:
        for block_no in sorted(bn for bn in inode.block_map if bn >= from_block):
            address = inode.block_map[block_no]
            if not self._is_synthetic(inode.number, block_no, address):
                self._kill_blocks(address, 1)
        inode.drop_blocks_from(from_block)
        return
        yield  # pragma: no cover - keeps this a generator

    # ------------------------------------------------------------------ cleaner support

    def segment_infos(self) -> list[SegmentInfo]:
        """Candidate segments for cleaning (excludes free and active ones)."""
        infos = []
        for segment in range(self.num_segments):
            if segment in self.free_segments or segment == self._active_segment:
                continue
            infos.append(
                SegmentInfo(
                    index=segment,
                    live_blocks=self.segment_usage[segment],
                    capacity=self.segment_blocks - 1,
                    modified_at=self.segment_mtime[segment],
                )
            )
        return infos

    def cleaner_candidates(self, now: float = 0.0) -> list[SegmentInfo]:
        """Bounded cleaner candidate set.

        With the segment index on, candidates come from the incrementally
        maintained utilisation buckets — the emptiest segments first, at most
        ``cleaner_candidates`` of them — so a cleaner wakeup costs O(bound)
        instead of rebuilding an O(num_segments) info list.  Greedy's global
        minimum always lies in the lowest occupied bucket; cost-benefit's age
        term may in rare cases prefer a segment outside the bound (the usual
        LSM-compaction approximation).  Index off falls back to the full scan.
        """
        if not self._index_on or self.index_config.cleaner_candidates <= 0:
            infos = self.segment_infos()
            self.stats.cleaner_candidate_scans += 1
            self.stats.cleaner_candidates_considered += len(infos)
            return infos
        capacity = self.segment_blocks - 1
        infos = []
        for segment in self._buckets.candidates(self.index_config.cleaner_candidates):
            if segment in self.free_segments or segment == self._active_segment:
                continue
            infos.append(
                SegmentInfo(
                    index=segment,
                    live_blocks=self.segment_usage[segment],
                    capacity=capacity,
                    modified_at=self.segment_mtime[segment],
                )
            )
        self.stats.cleaner_candidate_scans += 1
        self.stats.cleaner_candidates_considered += len(infos)
        return infos

    def clean_segment(self, segment: int) -> Generator[Any, Any, tuple[int, int]]:
        """Copy the live blocks out of ``segment`` and mark it free.

        Returns ``(blocks_copied, blocks_examined)``.
        """
        if segment in self.free_segments or segment == self._active_segment:
            return (0, 0)
        if self._index_on and segment in self._unloaded:
            yield from self._load_segment_summary(segment)
        entries = list(self.segment_summaries.get(segment, []))
        start = self.segment_start(segment)
        copied = 0
        staged: Optional[dict[int, Optional[bytes]]] = None
        if self._index_on:
            # Coalesce the live blocks into contiguous multi-block reads
            # instead of one disk operation per live block.  Liveness is
            # re-checked per entry below: copying an inode forward can kill a
            # later entry of this same segment mid-clean.
            live_offsets = [
                offset
                for offset, (owner, logical, is_inode) in enumerate(entries, start=1)
                if self._is_live(start + offset, owner, logical, is_inode)
            ]
            staged = {}
            size = self.block_size
            for run_start, run_len in _contiguous_runs(live_offsets):
                raw = yield from self.volume.read_run(start + run_start, run_len)
                self.stats.disk_reads += 1
                self.stats.cleaner_read_runs += 1
                for j in range(run_len):
                    staged[run_start + j] = (
                        None if raw is None else raw[j * size : (j + 1) * size]
                    )
        for offset, (inode_number, logical_block, is_inode) in enumerate(entries, start=1):
            address = start + offset
            if not self._is_live(address, inode_number, logical_block, is_inode):
                continue
            if staged is not None and offset in staged:
                raw = staged[offset]
            else:
                raw = yield from self.volume.read_run(address, 1)
                self.stats.disk_reads += 1
                self.stats.cleaner_read_runs += 1
            inode = self._inode_objects.get(inode_number)
            if is_inode:
                if inode is None:
                    inode = yield from self.read_inode(inode_number)
                # Rewriting the inode moves it to the head of the log.
                yield from self.write_inode(inode)
            else:
                if inode is None:
                    try:
                        inode = yield from self.read_inode(inode_number)
                    except StorageError:
                        continue
                payload = raw if raw is not None else None
                new_address = yield from self._append(
                    [(inode_number, logical_block, False, payload)]
                )
                self._kill_blocks(address, 1)
                inode.set_block_address(logical_block, new_address[0])
            copied += 1
        self._live_total -= self.segment_usage[segment]
        self.segment_usage[segment] = 0
        self.segment_mtime[segment] = self.scheduler.now
        self.segment_summaries.pop(segment, None)
        self.free_segments.add(segment)
        self._free_push(segment)
        self._indexes.pop(segment, None)
        self._buckets.remove(segment)
        self._unloaded.discard(segment)
        self.stats.cleaner_segments_cleaned += 1
        self.stats.cleaner_blocks_copied += copied
        return (copied, len(entries))

    def _is_live(self, address: int, inode_number: int, logical_block: int, is_inode: bool) -> bool:
        if inode_number == 0:
            # Checkpoint blocks: live only if this is the current checkpoint.
            if self._checkpoint_location is None:
                return False
            start, count = self._checkpoint_location
            return start <= address < start + count
        if is_inode:
            location = self.inode_map.get(inode_number)
            if location is None:
                return False
            start, count = location
            return start <= address < start + count
        inode = self._inode_objects.get(inode_number)
        if inode is None:
            return inode_number in self.inode_map
        return inode.get_block_address(logical_block) == address

    # ------------------------------------------------------------------ the log

    def _append(
        self,
        entries: list[tuple[int, int, bool, Optional[bytes]]],
        contiguous: bool = False,
    ) -> Generator[Any, Any, list[int]]:
        """Append blocks to the log; returns the addresses used, in order.

        Log-space reservation and metadata updates happen under the append
        lock; the disk writes themselves are issued after the lock is
        released, so concurrent flush threads can have several log writes
        outstanding at the disks at once (as a real system would).
        """
        if not self._mounted:
            raise StorageError("LFS is not mounted")
        assert self._append_lock is not None
        addresses: list[int] = []
        writes: list[tuple[int, int, Optional[bytes]]] = []
        yield from self._append_lock.acquire()
        try:
            remaining = list(entries)
            if contiguous and len(remaining) > self.segment_blocks - 1:
                raise StorageError("contiguous append larger than a segment")
            while remaining:
                space = self.segment_blocks - self._active_offset
                if space <= 0 or (contiguous and space < len(remaining)):
                    yield from self._finish_active_segment()
                    continue
                batch = remaining[:space]
                remaining = remaining[space:]
                first_address, payload = self._reserve_batch(batch)
                addresses.extend(range(first_address, first_address + len(batch)))
                writes.append((first_address, len(batch), payload))
        finally:
            self._append_lock.release()
        for first_address, count, payload in writes:
            yield from self.volume.write_run(first_address, count, payload)
            self.stats.disk_writes += 1
        return addresses

    def _reserve_batch(
        self, batch: list[tuple[int, int, bool, Optional[bytes]]]
    ) -> tuple[int, Optional[bytes]]:
        """Reserve log space for ``batch`` and update the in-memory metadata;
        returns the first address and the serialised payload to write."""
        assert self._active_segment is not None
        segment = self._active_segment
        first_address = self.segment_start(segment) + self._active_offset
        payload: Optional[bytes]
        if self.simulated:
            payload = None
        else:
            parts = []
            for _owner, _logical, _is_inode, data in batch:
                parts.append(self._pad(data if data is not None else b""))
            payload = b"".join(parts)
        summary = self.segment_summaries[segment]
        index = self._indexes.get(segment) if self._index_on else None
        offset = self._active_offset
        for owner, logical, is_inode, _data in batch:
            summary.append((owner, logical, is_inode))
            if index is not None:
                index.add(owner, logical, is_inode, offset)
                self._owner_bloom.add(owner_key(owner))
            offset += 1
        self.segment_usage[segment] += len(batch)
        self._live_total += len(batch)
        self.segment_mtime[segment] = self.scheduler.now
        self._active_offset += len(batch)
        return first_address, payload

    def _finish_active_segment(self) -> Generator[Any, Any, None]:
        sealed = self._active_segment
        yield from self._write_active_summary()
        if self._index_on and sealed is not None:
            self._buckets.insert(
                sealed, self.segment_usage[sealed], self.segment_blocks - 1
            )
        self._activate_segment(self._pick_free_segment())

    def _write_active_summary(self) -> Generator[Any, Any, None]:
        if self._active_segment is None:
            return
        segment = self._active_segment
        # Crash points arm only once a superblock-committed checkpoint
        # exists: before that floor a crash legitimately loses data (classic
        # LFS), which is outside the recovery harness's contract.
        crashpoints = (
            self.crashpoints
            if self._index_on and self._durable_checkpoint
            else None
        )
        if self.simulated:
            if not self._index_on:
                return
            # The persisted index must hit the platter, so the simulated
            # world charges the summary+index block write the real world
            # performs at every segment seal.
            if crashpoints is not None:
                crashpoints.hit("lfs.index.write.pre")
            yield from self.volume.write_block(self.segment_start(segment), None)
            self.stats.disk_writes += 1
            self.stats.index_writes += 1
            if crashpoints is not None:
                crashpoints.hit("lfs.index.write.post")
            return
        payload = codec.pack_segment_summary(self.segment_summaries.get(segment, []))
        if self._index_on:
            index = self._indexes.get(segment)
            if index is not None:
                section = codec.pack_segment_index(
                    index.entries,
                    index.live,
                    index.dead,
                    index.bloom.num_bits,
                    index.bloom.num_hashes,
                    index.bloom.to_bytes(),
                    index.config.sparse_every,
                    index.sparse,
                )
                # Ride in the summary block's slack; absurdly large segment
                # geometries simply skip persistence (rebuilt from entries).
                if len(payload) + len(section) <= self.block_size:
                    payload += section
                    self.stats.index_writes += 1
        if crashpoints is not None:
            crashpoints.hit("lfs.index.write.pre")
        yield from self.volume.write_block(self.segment_start(segment), self._pad(payload))
        self.stats.disk_writes += 1
        if crashpoints is not None:
            crashpoints.hit("lfs.index.write.post")

    def _activate_segment(self, segment: int) -> None:
        self.free_segments.discard(segment)
        self._active_segment = segment
        self._active_offset = 1
        self.segment_summaries[segment] = []
        self._last_disk = self._segment_disk[segment]
        if self._index_on:
            self._buckets.remove(segment)
            self._unloaded.discard(segment)
            self._indexes[segment] = SegmentIndex(
                self.index_config, self.segment_blocks - 1
            )
            if self._staged_reads:
                # The segment's old contents are about to be overwritten;
                # drop any prefetched blocks staged from its address range.
                start = self.segment_start(segment)
                end = start + self.segment_blocks
                for address in [
                    a for a in self._staged_reads if start <= a < end
                ]:
                    del self._staged_reads[address]

    def _rebuild_free_heaps(self) -> None:
        self._free_heaps = [[] for _ in range(self.volume.num_disks)]
        for segment in self.free_segments:
            self._free_heaps[self._segment_disk[segment]].append(segment)
        for heap in self._free_heaps:
            heapq.heapify(heap)

    def _free_push(self, segment: int) -> None:
        heapq.heappush(self._free_heaps[self._segment_disk[segment]], segment)

    def _pick_free_segment(self) -> int:
        if not self.free_segments:
            raise NoSpaceLeft("no free LFS segments left (cleaner cannot keep up)")
        # Prefer a segment on a different disk from the last one so that
        # consecutive segment writes can proceed in parallel.  Per-disk min
        # heaps with lazy deletion give the same selection — the lowest free
        # segment on another disk, else the lowest overall — in
        # O(disks·log n) instead of an O(F) scan per activation.
        free = self.free_segments
        best: Optional[int] = None
        other: Optional[int] = None
        for disk, heap in enumerate(self._free_heaps):
            while heap and heap[0] not in free:
                heapq.heappop(heap)  # stale entry: segment was activated
            if not heap:
                continue
            head = heap[0]
            if best is None or head < best:
                best = head
            if disk != self._last_disk and (other is None or head < other):
                other = head
        return other if other is not None else best  # type: ignore[return-value]

    # ------------------------------------------------------------------ helpers

    def _kill_blocks(self, address: int, count: int) -> None:
        for offset in range(count):
            segment = self.segment_of(address + offset)
            if 0 <= segment < self.num_segments and self.segment_usage[segment] > 0:
                usage = self.segment_usage[segment] - 1
                self.segment_usage[segment] = usage
                self._live_total -= 1
                if self._index_on:
                    index = self._indexes.get(segment)
                    if index is not None:
                        index.kill()
                    # O(1): no-op unless the segment crosses a bucket edge.
                    self._buckets.update(segment, usage, self.segment_blocks - 1)

    # ------------------------------------------------------------------ index probes

    def may_contain_inode(self, inode_number: int) -> bool:
        """O(1) probe: can this log possibly hold ``inode_number``?

        ``False`` is authoritative (the inode never hit this log); ``True``
        is advisory.  Replication's shadow-inode synthesis uses this to skip
        doomed ``read_inode`` attempts on fail-over.  Always ``True`` while
        any segment summary is still unloaded or the index is off — a bloom
        must never produce a false negative."""
        if inode_number in self.inode_map or inode_number in self._inode_objects:
            return True
        if not self._index_on or self._unloaded:
            return True
        if self._owner_bloom.may_contain(owner_key(inode_number)):
            return True
        self.stats.bloom_skips += 1
        return False

    def index_memory_bytes(self) -> int:
        """Approximate in-core footprint of the segment-index machinery."""
        if not self._index_on:
            return 0
        total = self._owner_bloom.memory_bytes
        for index in self._indexes.values():
            total += index.memory_bytes
        total += 48 * len(self._buckets)  # bucket dict + _where entries
        return total

    def _is_synthetic(self, inode_number: int, block_no: int, address: int) -> bool:
        return self._synthetic_addresses.get((inode_number, block_no)) == address

    def _chunk(self, payload: bytes, nblocks: int) -> list[bytes]:
        return [
            payload[i * self.block_size : (i + 1) * self.block_size] for i in range(nblocks)
        ]

    def _pad(self, data: bytes) -> bytes:
        if len(data) > self.block_size:
            raise StorageError(f"payload of {len(data)} bytes exceeds the block size")
        return data + bytes(self.block_size - len(data))


# --------------------------------------------------------------------------- registry
#
# "layout" factories share one signature so the assembly builder can
# instantiate any registered layout from a LayoutConfig:
#   factory(scheduler, volume, block_size=..., simulated=..., seed=...,
#           layout_config=LayoutConfig, inode_base=0, inode_stride=1)
# LFS maps arbitrary inode numbers, so it ignores the array progression.


def _build_lfs_layout(
    scheduler,
    volume,
    *,
    block_size,
    simulated,
    seed,
    layout_config,
    inode_base=0,
    inode_stride=1,
):
    return LogStructuredLayout(
        scheduler,
        volume,
        block_size=block_size,
        segment_blocks=max(layout_config.segment_size // block_size, 4),
        simulated=simulated,
        seed=seed,
        index_config=layout_config.index_config(),
    )


registry.register("layout", "lfs", _build_lfs_layout)
