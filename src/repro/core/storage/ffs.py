"""An FFS-like write-in-place storage layout.

The paper notes that "to implement other storage-layouts (such as a Unix
FFS, EFS, or journalling file-systems), a new derived storage-layout class
needs to be written that defines a new storage-layout on disk".  This module
is that demonstration: a simple update-in-place layout with a fixed inode
region and a block allocator with locality hints.  It plugs into exactly the
same slot as the segmented LFS and is exercised by tests and by the layout
ablation benchmark.

On-disk format (real instantiation):

```
block 0                      superblock
blocks 1 .. max_inodes       inode region (one block per inode slot)
blocks max_inodes+1 .. end   data region (bitmap-allocated)
```

The allocation bitmap is not persisted; :meth:`mount` rebuilds it by scanning
the inode region (an fsck-style sweep), which doubles as a consistency check.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.assembly.registry import registry
from repro.core import codec
from repro.core.blocks import CacheBlock
from repro.core.inode import FileKind, Inode, ROOT_INODE_NUMBER
from repro.core.scheduler import Scheduler
from repro.core.storage.allocator import BlockAllocator
from repro.core.storage.layout import StorageLayout
from repro.core.storage.volume import Volume
from repro.errors import StorageError
from repro.units import DEFAULT_BLOCK_SIZE

__all__ = ["FfsLikeLayout"]


class FfsLikeLayout(StorageLayout):
    """Write-in-place layout with a fixed inode table."""

    name = "ffs"

    def __init__(
        self,
        scheduler: Scheduler,
        volume: Volume,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_inodes: Optional[int] = None,
        simulated: bool = False,
        seed: int = 0,
        inode_base: int = 0,
        inode_stride: int = 1,
    ):
        """``inode_base``/``inode_stride`` describe the arithmetic
        progression of inode numbers this layout serves: a standalone file
        system owns every number (base 0, stride 1), while volume ``v`` of a
        ``V``-volume array owns ``ROOT + v, ROOT + v + V, ...`` (base ``v``,
        stride ``V``).  Slots are allocated densely within the progression,
        so a member of an array keeps its full inode-table capacity."""
        super().__init__(scheduler, volume, block_size, simulated=simulated, seed=seed)
        if inode_stride < 1 or not (0 <= inode_base < inode_stride):
            raise StorageError("need 0 <= inode_base < inode_stride")
        self.inode_base = inode_base
        self.inode_stride = inode_stride
        if max_inodes is None:
            # One block per inode slot: auto-size the table to an eighth of
            # the volume so small volumes keep a usable data region.
            max_inodes = min(max(volume.total_blocks // 8, 8), 4096)
        if max_inodes < 8:
            raise StorageError("FFS layout needs at least 8 inode slots")
        data_start = 1 + max_inodes
        if data_start + 8 > volume.total_blocks:
            raise StorageError("volume too small for the requested inode region")
        self.max_inodes = max_inodes
        self.inode_region_start = 1
        self.data_region_start = data_start
        self.allocator = BlockAllocator(data_start, volume.total_blocks - data_start)
        self.next_inode_number = ROOT_INODE_NUMBER + inode_base
        self._inode_objects: dict[int, Inode] = {}
        self._known_inodes: set[int] = set()
        self._mounted = False

    # ------------------------------------------------------------------ lifecycle

    def format(self) -> Generator[Any, Any, None]:
        self._inode_objects.clear()
        self._known_inodes.clear()
        self.next_inode_number = ROOT_INODE_NUMBER + self.inode_base
        self.allocator = BlockAllocator(
            self.data_region_start, self.volume.total_blocks - self.data_region_start
        )
        if self.simulated:
            return
        superblock = codec.pack_superblock(
            self.block_size, 0, self.volume.total_blocks, 0, 0
        )
        yield from self.volume.write_block(0, self._pad(superblock))
        self.stats.disk_writes += 1
        # Clear the inode region so mount's scan sees empty slots.
        for slot in range(self.max_inodes):
            yield from self.volume.write_block(
                self.inode_region_start + slot, bytes(self.block_size)
            )
            self.stats.disk_writes += 1

    def mount(self) -> Generator[Any, Any, None]:
        if self.simulated:
            self._mounted = True
            return
        data = yield from self.volume.read_block(0)
        self.stats.disk_reads += 1
        if data is None:
            raise StorageError("cannot mount a real FFS layout on a data-less volume")
        codec.unpack_superblock(data)
        highest = ROOT_INODE_NUMBER + self.inode_base - self.inode_stride
        for slot in range(self.max_inodes):
            raw = yield from self.volume.read_block(self.inode_region_start + slot)
            self.stats.disk_reads += 1
            if raw is None or not raw.rstrip(b"\0"):
                continue
            try:
                inode = codec.unpack_inode(raw)
            except StorageError:
                continue
            self._known_inodes.add(inode.number)
            highest = max(highest, inode.number)
            for address in inode.block_map.values():
                self.allocator.allocate_at(address)
        self.next_inode_number = highest + self.inode_stride
        self._mounted = True

    def checkpoint(self) -> Generator[Any, Any, None]:
        """All metadata is written in place; nothing extra to do."""
        return
        yield  # pragma: no cover - keeps this a generator

    # ------------------------------------------------------------------ inodes

    def _slot_of(self, inode_number: int) -> int:
        """Dense slot index of a number within this layout's progression."""
        offset = inode_number - ROOT_INODE_NUMBER - self.inode_base
        if offset < 0 or offset % self.inode_stride != 0:
            raise StorageError(
                f"inode number {inode_number} not in this layout's progression "
                f"(base {self.inode_base}, stride {self.inode_stride})"
            )
        return offset // self.inode_stride

    def _slot_address(self, inode_number: int) -> int:
        slot = self._slot_of(inode_number)
        if slot >= self.max_inodes:
            raise StorageError(f"inode number {inode_number} outside the inode region")
        return self.inode_region_start + slot

    def allocate_inode(
        self,
        kind: FileKind,
        parent_id: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Inode:
        if self._slot_of(self.next_inode_number) >= self.max_inodes:
            raise StorageError("out of inode slots")
        number = self.next_inode_number
        self.next_inode_number += self.inode_stride
        now = self.scheduler.now
        inode = Inode(number=number, kind=kind, atime=now, mtime=now, ctime=now)
        self._inode_objects[number] = inode
        self._known_inodes.add(number)
        return inode

    def known_inode_numbers(self) -> list[int]:
        return sorted(self._known_inodes)

    def read_inode(self, inode_number: int) -> Generator[Any, Any, Inode]:
        if inode_number not in self._known_inodes and self.simulated:
            raise StorageError(f"unknown inode {inode_number}")
        raw = yield from self.volume.read_block(self._slot_address(inode_number))
        self.stats.disk_reads += 1
        self.stats.inodes_read += 1
        if raw is None:
            inode = self._inode_objects.get(inode_number)
            if inode is None:
                raise StorageError(f"simulated FFS lost track of inode {inode_number}")
            return inode
        if not raw.rstrip(b"\0"):
            raise StorageError(f"unknown inode {inode_number}")
        inode = codec.unpack_inode(raw)
        self._inode_objects[inode_number] = inode
        return inode

    def write_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        self._inode_objects[inode.number] = inode
        self._known_inodes.add(inode.number)
        payload: Optional[bytes] = None
        if not self.simulated:
            packed = codec.pack_inode(inode)
            if len(packed) > self.block_size:
                raise StorageError(
                    f"inode {inode.number} too large for one block "
                    f"({len(packed)} bytes); the FFS-like layout caps file size"
                )
            payload = self._pad(packed)
        yield from self.volume.write_block(self._slot_address(inode.number), payload)
        self.stats.disk_writes += 1
        self.stats.inodes_written += 1

    def free_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        yield from self.release_blocks(inode, 0)
        payload = None if self.simulated else bytes(self.block_size)
        yield from self.volume.write_block(self._slot_address(inode.number), payload)
        self.stats.disk_writes += 1
        self._inode_objects.pop(inode.number, None)
        self._known_inodes.discard(inode.number)

    # ------------------------------------------------------------------ file data

    def read_file_block(
        self, inode: Inode, block_no: int, block: CacheBlock
    ) -> Generator[Any, Any, bool]:
        address = inode.get_block_address(block_no)
        if address is None:
            if not self.simulated:
                return False
            address = self.synthesize_address(inode.number, block_no)
        raw = yield from self.volume.read_block(address)
        self.stats.disk_reads += 1
        self.stats.blocks_read += 1
        if raw is not None and block.data is not None:
            block.data[: len(raw)] = raw
            block.valid_bytes = block.size
        return True

    def write_file_blocks(
        self, inode: Inode, blocks: list[tuple[int, CacheBlock]]
    ) -> Generator[Any, Any, None]:
        previous: Optional[int] = None
        for block_no, cache_block in sorted(blocks, key=lambda item: item[0]):
            address = inode.get_block_address(block_no)
            if address is None or self._is_synthetic(inode.number, block_no, address):
                address = self.allocator.allocate(near=previous)
                inode.set_block_address(block_no, address)
            previous = address
            yield from self.volume.write_block(address, self.block_payload(cache_block))
            self.stats.disk_writes += 1
            self.stats.blocks_written += 1

    def release_blocks(self, inode: Inode, from_block: int) -> Generator[Any, Any, None]:
        for block_no in sorted(bn for bn in inode.block_map if bn >= from_block):
            address = inode.block_map[block_no]
            if not self._is_synthetic(inode.number, block_no, address):
                self.allocator.free(address)
        inode.drop_blocks_from(from_block)
        return
        yield  # pragma: no cover - keeps this a generator

    # ------------------------------------------------------------------ space

    @property
    def free_blocks(self) -> int:
        return self.allocator.free_count

    # ------------------------------------------------------------------ helpers

    def _is_synthetic(self, inode_number: int, block_no: int, address: int) -> bool:
        return self._synthetic_addresses.get((inode_number, block_no)) == address

    def _pad(self, data: bytes) -> bytes:
        if len(data) > self.block_size:
            raise StorageError(f"payload of {len(data)} bytes exceeds the block size")
        return data + bytes(self.block_size - len(data))


# --------------------------------------------------------------------------- registry
#
# "layout" factories share one signature (see repro.core.storage.lfs); FFS
# maps inode numbers to dense table slots, so an array member needs its
# arithmetic progression (inode_base/inode_stride) at construction time.


def _build_ffs_layout(
    scheduler,
    volume,
    *,
    block_size,
    simulated,
    seed,
    layout_config,
    inode_base=0,
    inode_stride=1,
):
    return FfsLikeLayout(
        scheduler,
        volume,
        block_size=block_size,
        simulated=simulated,
        seed=seed,
        inode_base=inode_base,
        inode_stride=inode_stride,
    )


registry.register("layout", "ffs", _build_ffs_layout)
