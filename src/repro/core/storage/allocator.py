"""A simple block allocator (bitmap with locality hints).

Used by the FFS-like write-in-place layout.  The allocator hands out block
addresses near a caller-provided hint so that logically adjacent file blocks
tend to be physically adjacent — the property FFS relies on for sequential
throughput.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NoSpaceLeft, StorageError

__all__ = ["BlockAllocator"]


class BlockAllocator:
    """Tracks free/allocated blocks in a contiguous address range."""

    def __init__(self, first_block: int, num_blocks: int):
        if num_blocks <= 0:
            raise StorageError("allocator needs a positive number of blocks")
        self.first_block = first_block
        self.num_blocks = num_blocks
        self._allocated = bytearray(num_blocks)  # 0 = free, 1 = allocated
        self._free_count = num_blocks
        self._rotor = 0

    @property
    def free_count(self) -> int:
        return self._free_count

    @property
    def used_count(self) -> int:
        return self.num_blocks - self._free_count

    def is_allocated(self, address: int) -> bool:
        return bool(self._allocated[self._index(address)])

    def allocate(self, near: Optional[int] = None) -> int:
        """Allocate one block, preferably close to ``near``."""
        if self._free_count == 0:
            raise NoSpaceLeft("block allocator exhausted")
        start = self._index(near) if near is not None else self._rotor
        start = min(max(start, 0), self.num_blocks - 1)
        for offset in range(self.num_blocks):
            index = (start + offset) % self.num_blocks
            if not self._allocated[index]:
                self._allocated[index] = 1
                self._free_count -= 1
                self._rotor = (index + 1) % self.num_blocks
                return self.first_block + index
        raise NoSpaceLeft("block allocator exhausted")  # pragma: no cover - guarded above

    def allocate_at(self, address: int) -> None:
        """Mark a specific block allocated (used when loading from disk)."""
        index = self._index(address)
        if not self._allocated[index]:
            self._allocated[index] = 1
            self._free_count -= 1

    def free(self, address: int) -> None:
        index = self._index(address)
        if not self._allocated[index]:
            raise StorageError(f"double free of block {address}")
        self._allocated[index] = 0
        self._free_count += 1

    def _index(self, address: int) -> int:
        index = address - self.first_block
        if index < 0 or index >= self.num_blocks:
            raise StorageError(
                f"block {address} outside allocator range "
                f"[{self.first_block}, {self.first_block + self.num_blocks})"
            )
        return index

    def __repr__(self) -> str:
        return f"BlockAllocator(free={self._free_count}/{self.num_blocks})"
