"""The volume protocol and the local disk-concatenation volume.

A *volume* is one logical block address space.  The storage layouts issue
their block I/O against this interface and nothing else, which is what lets
the same layout run over very different storage:

* :class:`LocalVolume` — the classic shape: one or more disk drivers
  concatenated into a single address space (the traced Sprite server had
  fourteen file systems over ten disks).
* :class:`~repro.core.storage.array.VolumeSet` — N independent volumes
  behind one handle for the multi-volume array (block-address specific
  operations go through the per-volume sub-layouts instead).
* :class:`~repro.core.cluster.remote.RemoteVolume` — a volume on another
  machine: the same block I/O, but every operation crosses a simulated
  network link first.

The storage layout decides *where* blocks go; the volume translates block
addresses to storage and keeps runs of blocks on a single device so that
one logical write is one device operation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Any, Generator, Optional, Sequence

from repro.core.driver import DiskDriver, IORequest
from repro.errors import DiskAddressError, StorageError
from repro.units import DEFAULT_BLOCK_SIZE, SECTOR_SIZE

__all__ = ["Volume", "LocalVolume"]


class Volume(ABC):
    """The volume protocol: block-granularity access to one address space.

    Everything above the drivers — layouts, the :class:`~repro.core.storage.array.RoutedLayout`
    router, the file system's sync path — consumes this interface only.
    Concrete volumes say where the blocks actually live: local disks
    (:class:`LocalVolume`), another volume across a simulated network
    (:class:`~repro.core.cluster.remote.RemoteVolume`), or a set of
    volumes (:class:`~repro.core.storage.array.VolumeSet`).
    """

    #: file-system block size in bytes (set by the concrete volume).
    block_size: int

    # -- shape -----------------------------------------------------------------

    @property
    @abstractmethod
    def total_blocks(self) -> int:
        """Number of blocks in this address space."""

    @property
    @abstractmethod
    def num_disks(self) -> int:
        """Number of physical disks ultimately backing this volume."""

    # -- I/O -------------------------------------------------------------------

    @abstractmethod
    def read_run(self, block_addr: int, nblocks: int = 1) -> Generator[Any, Any, Optional[bytes]]:
        """Read ``nblocks`` contiguous blocks.

        Returns the bytes read, or ``None`` when the underlying driver moves
        no real data (simulated disks).
        """

    @abstractmethod
    def write_run(
        self, block_addr: int, nblocks: int, data: Optional[bytes]
    ) -> Generator[Any, Any, None]:
        """Write ``nblocks`` contiguous blocks."""

    @abstractmethod
    def flush(self) -> Generator[Any, Any, None]:
        """Wait for every outstanding device operation to complete."""

    # -- single-block conveniences ---------------------------------------------

    def read_block(self, block_addr: int) -> Generator[Any, Any, Optional[bytes]]:
        return (yield from self.read_run(block_addr, 1))

    def write_block(self, block_addr: int, data: Optional[bytes]) -> Generator[Any, Any, None]:
        yield from self.write_run(block_addr, 1, data)


class LocalVolume(Volume):
    """A volume concatenating local disk drivers into one address space.

    Each disk has its own driver and queue; the volume translates block
    addresses to (driver, sector) and keeps runs of blocks on a single disk
    so that one logical write is one disk operation.
    """

    def __init__(self, drivers: Sequence[DiskDriver], block_size: int = DEFAULT_BLOCK_SIZE):
        if not drivers:
            raise StorageError("a volume needs at least one disk driver")
        if block_size % SECTOR_SIZE != 0:
            raise StorageError("block size must be a multiple of the sector size")
        self.drivers = list(drivers)
        self.block_size = block_size
        self.sectors_per_block = block_size // SECTOR_SIZE
        self._disk_blocks = [
            driver.num_sectors // self.sectors_per_block for driver in self.drivers
        ]
        self._disk_starts: list[int] = []
        start = 0
        for nblocks in self._disk_blocks:
            self._disk_starts.append(start)
            start += nblocks
        self._total_blocks = start

    # -- address translation -------------------------------------------------

    @property
    def total_blocks(self) -> int:
        return self._total_blocks

    def disk_of(self, block_addr: int) -> int:
        """Index of the disk holding ``block_addr``."""
        self._check(block_addr, 1)
        return bisect_right(self._disk_starts, block_addr) - 1

    def locate(self, block_addr: int) -> tuple[DiskDriver, int]:
        """(driver, first sector) for a block address."""
        index = self.disk_of(block_addr)
        local_block = block_addr - self._disk_starts[index]
        return self.drivers[index], local_block * self.sectors_per_block

    def blocks_on_disk(self, disk_index: int) -> range:
        """Block address range living on one disk."""
        start = self._disk_starts[disk_index]
        return range(start, start + self._disk_blocks[disk_index])

    @property
    def num_disks(self) -> int:
        return len(self.drivers)

    # -- I/O -------------------------------------------------------------------

    def read_run(self, block_addr: int, nblocks: int = 1) -> Generator[Any, Any, Optional[bytes]]:
        """Read ``nblocks`` contiguous blocks (must lie on one disk)."""
        self._check(block_addr, nblocks)
        self._check_single_disk(block_addr, nblocks)
        driver, sector = self.locate(block_addr)
        request: IORequest = yield from driver.read(sector, nblocks * self.sectors_per_block)
        if request.data is None:
            return None
        return bytes(request.data)

    def write_run(
        self, block_addr: int, nblocks: int, data: Optional[bytes]
    ) -> Generator[Any, Any, None]:
        """Write ``nblocks`` contiguous blocks (must lie on one disk)."""
        self._check(block_addr, nblocks)
        self._check_single_disk(block_addr, nblocks)
        if data is not None and len(data) != nblocks * self.block_size:
            raise StorageError(
                f"write_run data length {len(data)} != {nblocks} blocks of {self.block_size}"
            )
        driver, sector = self.locate(block_addr)
        yield from driver.write(sector, nblocks * self.sectors_per_block, data)

    def flush(self) -> Generator[Any, Any, None]:
        """Wait for every disk queue to drain."""
        for driver in self.drivers:
            yield from driver.flush()

    # -- helpers -----------------------------------------------------------------

    def _check(self, block_addr: int, nblocks: int) -> None:
        if block_addr < 0 or nblocks < 1 or block_addr + nblocks > self.total_blocks:
            raise DiskAddressError(
                f"block run [{block_addr}, {block_addr + nblocks}) outside volume "
                f"of {self.total_blocks} blocks"
            )

    def _check_single_disk(self, block_addr: int, nblocks: int) -> None:
        # Callers bounds-check first; one bisect pair, no redundant checks.
        starts = self._disk_starts
        if bisect_right(starts, block_addr) != bisect_right(starts, block_addr + nblocks - 1):
            raise StorageError(
                f"block run [{block_addr}, {block_addr + nblocks}) crosses a disk boundary"
            )

    def __repr__(self) -> str:
        return f"LocalVolume(disks={len(self.drivers)}, blocks={self.total_blocks})"
