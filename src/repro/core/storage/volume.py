"""A volume: one logical block address space over one or more disk drivers.

The traced Sprite server had fourteen file systems over ten disks; the
framework models a machine as a set of disks (each with its own driver and
queue) behind a volume that concatenates them into a single block address
space.  The storage layout decides *where* blocks go; the volume translates
block addresses to (driver, sector) and keeps runs of blocks on a single
disk so that one logical write is one disk operation.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.core.driver import DiskDriver, IORequest
from repro.errors import DiskAddressError, StorageError
from repro.units import DEFAULT_BLOCK_SIZE, SECTOR_SIZE

__all__ = ["Volume"]


class Volume:
    """Block-granularity access to a set of disks."""

    def __init__(self, drivers: Sequence[DiskDriver], block_size: int = DEFAULT_BLOCK_SIZE):
        if not drivers:
            raise StorageError("a volume needs at least one disk driver")
        if block_size % SECTOR_SIZE != 0:
            raise StorageError("block size must be a multiple of the sector size")
        self.drivers = list(drivers)
        self.block_size = block_size
        self.sectors_per_block = block_size // SECTOR_SIZE
        self._disk_blocks = [
            driver.num_sectors // self.sectors_per_block for driver in self.drivers
        ]
        self._disk_starts: list[int] = []
        start = 0
        for nblocks in self._disk_blocks:
            self._disk_starts.append(start)
            start += nblocks
        self.total_blocks = start

    # -- address translation -------------------------------------------------

    def disk_of(self, block_addr: int) -> int:
        """Index of the disk holding ``block_addr``."""
        self._check(block_addr, 1)
        for index in range(len(self.drivers) - 1, -1, -1):
            if block_addr >= self._disk_starts[index]:
                return index
        raise DiskAddressError(f"block address {block_addr} not on any disk")

    def locate(self, block_addr: int) -> tuple[DiskDriver, int]:
        """(driver, first sector) for a block address."""
        index = self.disk_of(block_addr)
        local_block = block_addr - self._disk_starts[index]
        return self.drivers[index], local_block * self.sectors_per_block

    def blocks_on_disk(self, disk_index: int) -> range:
        """Block address range living on one disk."""
        start = self._disk_starts[disk_index]
        return range(start, start + self._disk_blocks[disk_index])

    @property
    def num_disks(self) -> int:
        return len(self.drivers)

    # -- I/O -------------------------------------------------------------------

    def read_run(self, block_addr: int, nblocks: int = 1) -> Generator[Any, Any, Optional[bytes]]:
        """Read ``nblocks`` contiguous blocks (must lie on one disk).

        Returns the bytes read, or ``None`` when the underlying driver moves
        no real data (simulated disks).
        """
        self._check(block_addr, nblocks)
        self._check_single_disk(block_addr, nblocks)
        driver, sector = self.locate(block_addr)
        request: IORequest = yield from driver.read(sector, nblocks * self.sectors_per_block)
        if request.data is None:
            return None
        return bytes(request.data)

    def write_run(
        self, block_addr: int, nblocks: int, data: Optional[bytes]
    ) -> Generator[Any, Any, None]:
        """Write ``nblocks`` contiguous blocks (must lie on one disk)."""
        self._check(block_addr, nblocks)
        self._check_single_disk(block_addr, nblocks)
        if data is not None and len(data) != nblocks * self.block_size:
            raise StorageError(
                f"write_run data length {len(data)} != {nblocks} blocks of {self.block_size}"
            )
        driver, sector = self.locate(block_addr)
        yield from driver.write(sector, nblocks * self.sectors_per_block, data)

    def read_block(self, block_addr: int) -> Generator[Any, Any, Optional[bytes]]:
        return (yield from self.read_run(block_addr, 1))

    def write_block(self, block_addr: int, data: Optional[bytes]) -> Generator[Any, Any, None]:
        yield from self.write_run(block_addr, 1, data)

    def flush(self) -> Generator[Any, Any, None]:
        """Wait for every disk queue to drain."""
        for driver in self.drivers:
            yield from driver.flush()

    # -- helpers -----------------------------------------------------------------

    def _check(self, block_addr: int, nblocks: int) -> None:
        if block_addr < 0 or nblocks < 1 or block_addr + nblocks > self.total_blocks:
            raise DiskAddressError(
                f"block run [{block_addr}, {block_addr + nblocks}) outside volume "
                f"of {self.total_blocks} blocks"
            )

    def _check_single_disk(self, block_addr: int, nblocks: int) -> None:
        if self.disk_of(block_addr) != self.disk_of(block_addr + nblocks - 1):
            raise StorageError(
                f"block run [{block_addr}, {block_addr + nblocks}) crosses a disk boundary"
            )

    def __repr__(self) -> str:
        return f"Volume(disks={len(self.drivers)}, blocks={self.total_blocks})"
