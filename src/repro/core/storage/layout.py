"""The abstract storage-layout component.

"The base storage-layout class is only an interface: it does not implement
an algorithm.  Specific layouts are implemented through derived classes.
The interface to a storage-layout class is defined such that for all layout
and policy decisions, there exists a virtual method in the base-class."

A layout owns the placement of metadata and data on a :class:`Volume` and
is consulted "whenever something needs to be done with a raw disk".  When a
layout is instantiated for a *simulator*, information that would have been
read from disk is synthesised instead ("educated guesses"): unknown file
blocks are given a random — but thereafter stable — location on disk.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.blocks import CacheBlock
from repro.core.inode import FileKind, Inode
from repro.core.scheduler import Scheduler
from repro.core.storage.volume import Volume
from repro.errors import StorageError

__all__ = ["StorageLayout", "LayoutStatistics"]


@dataclass
class LayoutStatistics:
    """Counters shared by every layout implementation."""

    blocks_written: int = 0
    blocks_read: int = 0
    inodes_written: int = 0
    inodes_read: int = 0
    disk_writes: int = 0
    disk_reads: int = 0
    synthesized_addresses: int = 0
    cleaner_segments_cleaned: int = 0
    cleaner_blocks_copied: int = 0
    #: disk read operations the cleaner issued while copying live blocks
    #: forward (coalesced runs count once; without coalescing this equals
    #: the number of live blocks read).
    cleaner_read_runs: int = 0
    #: cleaner candidate selections served and candidates handed out.
    cleaner_candidate_scans: int = 0
    cleaner_candidates_considered: int = 0
    #: segment-index persistence and lazy-summary traffic.
    index_writes: int = 0
    index_reads: int = 0
    lazy_summary_loads: int = 0
    #: cold-read run coalescing: runs issued, extra blocks prefetched,
    #: and prefetched blocks later consumed without a disk read.
    cold_read_runs: int = 0
    cold_read_blocks_coalesced: int = 0
    coalesced_read_hits: int = 0
    #: reads skipped because a bloom probe proved the data absent.
    bloom_skips: int = 0
    extra: dict = field(default_factory=dict)


class StorageLayout(ABC):
    """Base class of all storage layouts.

    Parameters
    ----------
    scheduler, volume:
        Execution context and the disks to lay the file system out on.
    block_size:
        File-system block size in bytes.
    simulated:
        True when instantiated inside Patsy: no real metadata is serialised
        and unknown addresses are synthesised rather than read from disk.
    """

    name = "abstract"

    def __init__(
        self,
        scheduler: Scheduler,
        volume: Volume,
        block_size: int,
        simulated: bool = False,
        seed: int = 0,
    ):
        if block_size != volume.block_size:
            raise StorageError("layout block size must match the volume block size")
        self.scheduler = scheduler
        self.volume = volume
        self.block_size = block_size
        self.simulated = simulated
        self.rng = random.Random(seed)
        self.stats = LayoutStatistics()
        self._synthetic_addresses: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------ lifecycle

    @abstractmethod
    def format(self) -> Generator[Any, Any, None]:
        """Create an empty file system on the volume."""

    @abstractmethod
    def mount(self) -> Generator[Any, Any, None]:
        """Load enough metadata to start serving requests."""

    @abstractmethod
    def checkpoint(self) -> Generator[Any, Any, None]:
        """Write enough metadata so that :meth:`mount` succeeds after a crash."""

    def unmount(self) -> Generator[Any, Any, None]:
        """Default unmount simply checkpoints."""
        yield from self.checkpoint()

    # ------------------------------------------------------------------ inodes

    @abstractmethod
    def allocate_inode(
        self,
        kind: FileKind,
        parent_id: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Inode:
        """Create a new in-core inode (persisted by :meth:`write_inode`).

        ``parent_id`` and ``name`` are placement hints: the inode number of
        the directory the file is created in and the file's leaf name.
        Single-volume layouts ignore them; the multi-volume
        :class:`~repro.core.storage.array.RoutedLayout` feeds them to its
        placement policy to pick the file's home volume.
        """

    @abstractmethod
    def read_inode(self, inode_number: int) -> Generator[Any, Any, Inode]:
        """Fetch an inode, possibly from disk."""

    @abstractmethod
    def write_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        """Persist an inode."""

    @abstractmethod
    def free_inode(self, inode: Inode) -> Generator[Any, Any, None]:
        """Release an inode and all of its blocks."""

    @abstractmethod
    def known_inode_numbers(self) -> list[int]:
        """Inode numbers this layout currently knows about."""

    # ------------------------------------------------------------------ data blocks

    @abstractmethod
    def read_file_block(
        self, inode: Inode, block_no: int, block: CacheBlock
    ) -> Generator[Any, Any, bool]:
        """Read one logical block of ``inode`` into the cache block.

        Returns ``True`` when a disk read happened, ``False`` for holes
        (the block is zero-filled / left untouched).
        """

    @abstractmethod
    def write_file_blocks(
        self, inode: Inode, blocks: list[tuple[int, CacheBlock]]
    ) -> Generator[Any, Any, None]:
        """Write the given (logical block number, cache block) pairs of
        ``inode`` to disk and update the inode's block map."""

    @abstractmethod
    def release_blocks(self, inode: Inode, from_block: int) -> Generator[Any, Any, None]:
        """Free the on-disk blocks of ``inode`` from ``from_block`` onward
        (truncate/delete support)."""

    # ------------------------------------------------------------------ space accounting

    @property
    @abstractmethod
    def free_blocks(self) -> int:
        """Number of free data blocks."""

    # ------------------------------------------------------------------ shared helpers

    def synthesize_address(self, inode_number: int, block_no: int) -> int:
        """Pick a random, stable disk address for a block the simulator has
        never seen ("once an initial location has been chosen for a file,
        the simulator sticks to those addresses")."""
        key = (inode_number, block_no)
        address = self._synthetic_addresses.get(key)
        if address is None:
            address = self.rng.randrange(1, self.volume.total_blocks)
            self._synthetic_addresses[key] = address
            self.stats.synthesized_addresses += 1
        return address

    def block_payload(self, block: CacheBlock) -> Optional[bytes]:
        """The bytes to write for a cache block (``None`` in simulated mode)."""
        if self.simulated or block.data is None:
            return None
        return bytes(block.data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(simulated={self.simulated})"
