"""Storage layouts: how file systems are arranged on raw disks.

"The storage-layout component is responsible for defining a file-system
layout on a raw disk.  This component knows the actual location(s) of
file-system meta-data, and is able to store and retrieve information from
one or more disks."  The base class is only an interface; the segmented LFS
(:mod:`repro.core.storage.lfs`) is the layout used throughout the paper's
experiments, and an FFS-like write-in-place layout
(:mod:`repro.core.storage.ffs`) demonstrates that other layouts drop into
the same slot.
"""

from repro.core.storage.layout import StorageLayout
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.ffs import FfsLikeLayout
from repro.core.storage.volume import LocalVolume, Volume
from repro.core.storage.cleaner import CostBenefitCleaner, GreedyCleaner, SegmentCleaner

__all__ = [
    "StorageLayout",
    "LogStructuredLayout",
    "FfsLikeLayout",
    "Volume",
    "LocalVolume",
    "SegmentCleaner",
    "GreedyCleaner",
    "CostBenefitCleaner",
]
