"""On-disk encodings for file-system metadata.

The real (PFS) instantiation stores genuine bytes on its backing store, so
superblocks, checkpoints, inodes, directory contents and segment summaries
need a well-defined binary format.  The simulator never serialises anything
(its helper components "compensate for the lack of real data"), but shares
these routines in the few places where sizes matter.

All structures are little-endian and carry magic numbers and explicit counts
so that corruption is detected loudly rather than silently.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Mapping, Optional

from repro.core.inode import FileKind, Inode
from repro.errors import StorageError

__all__ = [
    "SUPERBLOCK_MAGIC",
    "CHECKPOINT_MAGIC",
    "INODE_MAGIC",
    "SUMMARY_MAGIC",
    "pack_superblock",
    "unpack_superblock",
    "pack_inode",
    "unpack_inode",
    "inode_packed_size",
    "pack_directory",
    "unpack_directory",
    "pack_checkpoint",
    "unpack_checkpoint",
    "pack_segment_summary",
    "unpack_segment_summary",
    "segment_summary_size",
    "pack_segment_index",
    "unpack_segment_index",
]

SUPERBLOCK_MAGIC = 0x50465331  # "PFS1"
CHECKPOINT_MAGIC = 0x43484B31  # "CHK1"
INODE_MAGIC = 0x494E4F31  # "INO1"
SUMMARY_MAGIC = 0x53554D31  # "SUM1"
SEGINDEX_MAGIC = 0x53494458  # "SIDX"

_SUPERBLOCK = struct.Struct("<IIIIQQ")
_CHECKPOINT_HEADER = struct.Struct("<IQQdII")
_INODE_HEADER = struct.Struct("<IIBIQIHHHdddI")
_BLOCK_ENTRY = struct.Struct("<IQ")
_DIRENT_HEADER = struct.Struct("<IH")
_SUMMARY_HEADER = struct.Struct("<II")
_SUMMARY_ENTRY = struct.Struct("<IIB")
_IMAP_ENTRY = struct.Struct("<IQH")
_SEG_USAGE_ENTRY = struct.Struct("<II")


# --------------------------------------------------------------------------- superblock


def pack_superblock(
    block_size: int,
    segment_size_blocks: int,
    total_blocks: int,
    checkpoint_addr: int,
    checkpoint_blocks: int,
) -> bytes:
    """Superblock: geometry plus the location of the current checkpoint."""
    return _SUPERBLOCK.pack(
        SUPERBLOCK_MAGIC,
        block_size,
        segment_size_blocks,
        checkpoint_blocks,
        total_blocks,
        checkpoint_addr,
    )


def unpack_superblock(data: bytes) -> dict:
    try:
        magic, block_size, segment_size, checkpoint_blocks, total_blocks, checkpoint_addr = (
            _SUPERBLOCK.unpack_from(data)
        )
    except struct.error as exc:
        raise StorageError("superblock too small or corrupt") from exc
    if magic != SUPERBLOCK_MAGIC:
        raise StorageError(f"bad superblock magic 0x{magic:08x}")
    return {
        "block_size": block_size,
        "segment_size_blocks": segment_size,
        "total_blocks": total_blocks,
        "checkpoint_addr": checkpoint_addr,
        "checkpoint_blocks": checkpoint_blocks,
    }


# --------------------------------------------------------------------------- inodes


def pack_inode(inode: Inode) -> bytes:
    """Serialise an inode (header + block-map entries + symlink target)."""
    target = inode.symlink_target.encode("utf-8")
    header = _INODE_HEADER.pack(
        INODE_MAGIC,
        inode.number,
        inode.kind.value,
        inode.generation,
        inode.size,
        inode.nlink,
        inode.uid,
        inode.gid,
        inode.mode,
        inode.atime,
        inode.mtime,
        inode.ctime,
        len(inode.block_map),
    )
    parts = [header, struct.pack("<H", len(target)), target]
    for block_no, address in sorted(inode.block_map.items()):
        parts.append(_BLOCK_ENTRY.pack(block_no, address))
    return b"".join(parts)


def inode_packed_size(inode: Inode) -> int:
    return (
        _INODE_HEADER.size
        + 2
        + len(inode.symlink_target.encode("utf-8"))
        + _BLOCK_ENTRY.size * len(inode.block_map)
    )


def unpack_inode(data: bytes) -> Inode:
    try:
        fields = _INODE_HEADER.unpack_from(data)
    except struct.error as exc:
        raise StorageError("inode record too small") from exc
    (
        magic,
        number,
        kind_value,
        generation,
        size,
        nlink,
        uid,
        gid,
        mode,
        atime,
        mtime,
        ctime,
        nblocks,
    ) = fields
    if magic != INODE_MAGIC:
        raise StorageError(f"bad inode magic 0x{magic:08x}")
    offset = _INODE_HEADER.size
    (target_len,) = struct.unpack_from("<H", data, offset)
    offset += 2
    target = data[offset : offset + target_len].decode("utf-8")
    offset += target_len
    block_map: Dict[int, int] = {}
    for _ in range(nblocks):
        block_no, address = _BLOCK_ENTRY.unpack_from(data, offset)
        offset += _BLOCK_ENTRY.size
        block_map[block_no] = address
    return Inode(
        number=number,
        kind=FileKind(kind_value),
        size=size,
        nlink=nlink,
        uid=uid,
        gid=gid,
        mode=mode,
        atime=atime,
        mtime=mtime,
        ctime=ctime,
        generation=generation,
        block_map=block_map,
        symlink_target=target,
    )


# --------------------------------------------------------------------------- directories


def pack_directory(entries: Mapping[str, int]) -> bytes:
    """Directory contents: (inode number, name length, name) records."""
    parts = [struct.pack("<I", len(entries))]
    for name in sorted(entries):
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise StorageError(f"directory entry name too long: {name[:32]}...")
        parts.append(_DIRENT_HEADER.pack(entries[name], len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def unpack_directory(data: bytes) -> Dict[str, int]:
    if len(data) < 4:
        return {}
    (count,) = struct.unpack_from("<I", data, 0)
    offset = 4
    entries: Dict[str, int] = {}
    for _ in range(count):
        try:
            inode_number, name_len = _DIRENT_HEADER.unpack_from(data, offset)
        except struct.error as exc:
            raise StorageError("truncated directory data") from exc
        offset += _DIRENT_HEADER.size
        name = data[offset : offset + name_len].decode("utf-8")
        offset += name_len
        entries[name] = inode_number
    return entries


# --------------------------------------------------------------------------- LFS checkpoint


def pack_checkpoint(
    timestamp: float,
    next_inode_number: int,
    next_segment: int,
    inode_map: Mapping[int, tuple[int, int]],
    segment_usage: Mapping[int, int],
) -> bytes:
    """LFS checkpoint: the inode map (IFILE contents) and segment usage table.

    ``inode_map`` maps inode number -> (disk block address, length in blocks)
    of the most recent copy of that inode; ``segment_usage`` maps segment
    index -> live block count.
    """
    header = _CHECKPOINT_HEADER.pack(
        CHECKPOINT_MAGIC,
        next_inode_number,
        next_segment,
        timestamp,
        len(inode_map),
        len(segment_usage),
    )
    parts = [header]
    for inode_number in sorted(inode_map):
        address, length = inode_map[inode_number]
        parts.append(_IMAP_ENTRY.pack(inode_number, address, length))
    for segment in sorted(segment_usage):
        parts.append(_SEG_USAGE_ENTRY.pack(segment, segment_usage[segment]))
    return b"".join(parts)


def unpack_checkpoint(data: bytes) -> dict:
    try:
        magic, next_inode, next_segment, timestamp, n_imap, n_usage = (
            _CHECKPOINT_HEADER.unpack_from(data)
        )
    except struct.error as exc:
        raise StorageError("checkpoint too small") from exc
    if magic != CHECKPOINT_MAGIC:
        raise StorageError(f"bad checkpoint magic 0x{magic:08x}")
    offset = _CHECKPOINT_HEADER.size
    inode_map: Dict[int, tuple[int, int]] = {}
    for _ in range(n_imap):
        inode_number, address, length = _IMAP_ENTRY.unpack_from(data, offset)
        offset += _IMAP_ENTRY.size
        inode_map[inode_number] = (address, length)
    segment_usage: Dict[int, int] = {}
    for _ in range(n_usage):
        segment, live = _SEG_USAGE_ENTRY.unpack_from(data, offset)
        offset += _SEG_USAGE_ENTRY.size
        segment_usage[segment] = live
    return {
        "timestamp": timestamp,
        "next_inode_number": next_inode,
        "next_segment": next_segment,
        "inode_map": inode_map,
        "segment_usage": segment_usage,
    }


# --------------------------------------------------------------------------- segment summaries


def pack_segment_summary(entries: Iterable[tuple[int, int, bool]]) -> bytes:
    """Segment summary: one (inode number, logical block, is_inode) entry per
    block written in the segment, in block order."""
    entries = list(entries)
    parts = [_SUMMARY_HEADER.pack(SUMMARY_MAGIC, len(entries))]
    for inode_number, logical_block, is_inode in entries:
        parts.append(_SUMMARY_ENTRY.pack(inode_number, logical_block, 1 if is_inode else 0))
    return b"".join(parts)


def unpack_segment_summary(data: bytes) -> list[tuple[int, int, bool]]:
    try:
        magic, count = _SUMMARY_HEADER.unpack_from(data)
    except struct.error as exc:
        raise StorageError("segment summary too small") from exc
    if magic != SUMMARY_MAGIC:
        raise StorageError(f"bad segment summary magic 0x{magic:08x}")
    offset = _SUMMARY_HEADER.size
    entries = []
    for _ in range(count):
        inode_number, logical_block, is_inode = _SUMMARY_ENTRY.unpack_from(data, offset)
        offset += _SUMMARY_ENTRY.size
        entries.append((inode_number, logical_block, bool(is_inode)))
    return entries


def segment_summary_size(entry_count: int) -> int:
    """Serialised size of a summary with ``entry_count`` entries (the
    offset at which a trailing segment-index section begins)."""
    return _SUMMARY_HEADER.size + entry_count * _SUMMARY_ENTRY.size


# --------------------------------------------------------------------------- segment indexes
#
# The per-segment LSM-style summary (sparse offset index + bloom filter +
# live/dead counters) rides in the same block as the segment summary, as a
# self-describing trailing section.  Blocks written before the index
# existed simply lack the section; readers rebuild the index from the
# summary entries in that case.

_SEGINDEX_HEADER = struct.Struct("<IIIIHHHH")  # magic, entries, live, dead,
#                                               bloom_bits, bloom_hashes,
#                                               sparse_every, sparse_count
_SEGINDEX_SPARSE_ENTRY = struct.Struct("<IIBH")  # owner, logical, is_inode, offset


def pack_segment_index(
    entries: int,
    live: int,
    dead: int,
    bloom_bits: int,
    bloom_hashes: int,
    bloom_bytes: bytes,
    sparse_every: int,
    sparse: Mapping[tuple[int, int, bool], int],
) -> bytes:
    """Segment-index section: counters + bloom bits + sampled offsets."""
    parts = [
        _SEGINDEX_HEADER.pack(
            SEGINDEX_MAGIC,
            entries,
            live,
            dead,
            bloom_bits,
            bloom_hashes,
            sparse_every,
            len(sparse),
        ),
        struct.pack("<H", len(bloom_bytes)),
        bloom_bytes,
    ]
    for (owner, logical, is_inode), offset in sorted(sparse.items()):
        parts.append(
            _SEGINDEX_SPARSE_ENTRY.pack(owner, logical, 1 if is_inode else 0, offset)
        )
    return b"".join(parts)


def unpack_segment_index(data: bytes, offset: int = 0) -> Optional[dict]:
    """Decode a segment-index section starting at ``offset``.

    Returns None when no index section is present (legacy summary block or
    damaged bytes) — callers then rebuild the index from the summary
    entries instead of failing the whole block.
    """
    try:
        fields = _SEGINDEX_HEADER.unpack_from(data, offset)
    except struct.error:
        return None
    (magic, entries, live, dead, bloom_bits, bloom_hashes, sparse_every, n_sparse) = fields
    if magic != SEGINDEX_MAGIC:
        return None
    cursor = offset + _SEGINDEX_HEADER.size
    try:
        (bloom_len,) = struct.unpack_from("<H", data, cursor)
        cursor += 2
        bloom_bytes = bytes(data[cursor : cursor + bloom_len])
        if len(bloom_bytes) != bloom_len:
            return None
        cursor += bloom_len
        sparse: Dict[tuple[int, int, bool], int] = {}
        for _ in range(n_sparse):
            owner, logical, is_inode, entry_offset = _SEGINDEX_SPARSE_ENTRY.unpack_from(
                data, cursor
            )
            cursor += _SEGINDEX_SPARSE_ENTRY.size
            sparse[(owner, logical, bool(is_inode))] = entry_offset
    except struct.error:
        return None
    return {
        "entries": entries,
        "live": live,
        "dead": dead,
        "bloom_bits": bloom_bits,
        "bloom_hashes": bloom_hashes,
        "bloom_bytes": bloom_bytes,
        "sparse_every": sparse_every,
        "sparse": sparse,
    }
