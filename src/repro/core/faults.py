"""Scheduler-pluggable fault injection: scripted failures for the cluster.

:mod:`repro.core.metadata.crash` kills the *whole* stack at one boundary —
the power-failure model the recovery matrix needs.  This module models the
partial failures a replicated cluster must survive while it keeps running:

* ``disk_fail``  — one volume dies (its bytes are gone for good);
* ``node_crash`` — a whole node dies: every volume it owns plus the
  contents of its cache shards (the node's memory);
* ``nic_partition`` — a node becomes unreachable for a while and then
  heals (its disks keep their bytes; writes issued meanwhile miss it);
* ``slow_disk``  — a volume serves I/O with extra latency for a while
  (a dying disk retrying sectors).

The harness has two halves.  :class:`FaultState` is the passive marker
board the data path consults — a handful of sets and dicts, mutated only
when an event fires, so a run with an empty schedule never behaves (or
costs) differently from one without the harness at all (``active`` stays
False and every check short-circuits on one attribute read).
:class:`FaultInjector` is the active half: a daemon thread that sleeps on
the ordinary scheduler until each scripted event's time and applies it —
one ``Delay`` per event, so the same schedule fires at the same simulated
instants under both the sequential and the sharded event loop.

What a fault *means* is enforced at the routing layer
(:class:`~repro.core.storage.array.RoutedLayout`): reads addressed to an
unavailable volume fail over to a surviving replica (or raise
:class:`~repro.errors.DataUnavailable` without replication), writes to one
are dropped and counted — the bytes a real dead disk would have eaten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.core.scheduler import Scheduler, Thread
from repro.errors import ConfigurationError

__all__ = ["FaultEvent", "FaultState", "FaultInjector", "FAULT_KINDS"]

FAULT_KINDS = ("disk_fail", "node_crash", "nic_partition", "slow_disk")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    ``target`` is a volume index for ``disk_fail``/``slow_disk`` and a node
    index for ``node_crash``/``nic_partition``.  ``duration`` only applies
    to the two transient kinds (partition, slow disk); ``extra_latency`` is
    the per-I/O penalty of a slow disk.
    """

    time: float
    kind: str
    target: int
    duration: float = 0.0
    extra_latency: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} (want one of {FAULT_KINDS})"
            )
        if self.time < 0:
            raise ConfigurationError("fault time cannot be negative")
        if self.kind in ("nic_partition", "slow_disk") and self.duration <= 0:
            raise ConfigurationError(f"{self.kind} needs a positive duration")
        if self.extra_latency < 0:
            raise ConfigurationError("extra_latency cannot be negative")


class FaultState:
    """The marker board: which volumes are dead, unreachable or slow.

    Mutated by the injector (and the tests) only; read — via cheap set
    membership — by the routing layer and the repairer.  ``active`` flips
    True at the first applied event and never back: the data path guards
    every check behind it, so an untouched board costs one attribute read.
    """

    def __init__(self, volumes_per_node: int = 1):
        self.volumes_per_node = max(volumes_per_node, 1)
        self.active = False
        #: bumps on every applied (or healed) event; the repairer re-scans
        #: whenever it observes a new value.
        self.epoch = 0
        #: volumes whose bytes are gone (disk failure, node crash).
        self.dead_volumes: Set[int] = set()
        #: volumes temporarily unreachable (NIC partition); heal restores.
        self.unreachable_volumes: Set[int] = set()
        #: per-volume extra seconds charged on every routed I/O (slow disk).
        self.slow_volumes: Dict[int, float] = {}
        self.dead_nodes: Set[int] = set()
        self.partitioned_nodes: Set[int] = set()
        #: every applied event, in order: (time, kind, target).
        self.log: List[Tuple[float, str, int]] = []
        # -- counters the observability layer reports
        self.faults_by_node: Dict[int, int] = {}
        self.dropped_writes_by_node: Dict[int, int] = {}
        self.failed_reads_by_node: Dict[int, int] = {}

    # ------------------------------------------------------------------ queries

    def node_of_volume(self, volume: int) -> int:
        return volume // self.volumes_per_node

    def volumes_of_node(self, node: int) -> range:
        start = node * self.volumes_per_node
        return range(start, start + self.volumes_per_node)

    def volume_dead(self, volume: int) -> bool:
        return volume in self.dead_volumes

    def volume_unavailable(self, volume: int) -> bool:
        """Dead or currently unreachable: nothing may be read from or
        written to this volume right now."""
        return volume in self.dead_volumes or volume in self.unreachable_volumes

    def extra_delay(self, volume: int) -> float:
        return self.slow_volumes.get(volume, 0.0)

    # ------------------------------------------------------------------ mutations

    def _touch(self, node: int) -> None:
        self.active = True
        self.epoch += 1
        self.faults_by_node[node] = self.faults_by_node.get(node, 0) + 1

    def kill_volume(self, volume: int, when: float = 0.0) -> None:
        self.dead_volumes.add(volume)
        self.log.append((when, "disk_fail", volume))
        self._touch(self.node_of_volume(volume))

    def kill_node(self, node: int, when: float = 0.0) -> None:
        self.dead_nodes.add(node)
        self.dead_volumes.update(self.volumes_of_node(node))
        self.log.append((when, "node_crash", node))
        self._touch(node)

    def partition_node(self, node: int, when: float = 0.0) -> None:
        self.partitioned_nodes.add(node)
        self.unreachable_volumes.update(self.volumes_of_node(node))
        self.log.append((when, "nic_partition", node))
        self._touch(node)

    def heal_node(self, node: int, when: float = 0.0) -> None:
        self.partitioned_nodes.discard(node)
        self.unreachable_volumes.difference_update(self.volumes_of_node(node))
        self.log.append((when, "nic_heal", node))
        self.epoch += 1

    def slow_volume(self, volume: int, extra_latency: float, when: float = 0.0) -> None:
        self.slow_volumes[volume] = extra_latency
        self.log.append((when, "slow_disk", volume))
        self._touch(self.node_of_volume(volume))

    def heal_volume_speed(self, volume: int, when: float = 0.0) -> None:
        self.slow_volumes.pop(volume, None)
        self.log.append((when, "disk_heal", volume))
        self.epoch += 1

    # ------------------------------------------------------------------ accounting

    def note_dropped_write(self, volume: int, blocks: int = 1) -> None:
        node = self.node_of_volume(volume)
        self.dropped_writes_by_node[node] = (
            self.dropped_writes_by_node.get(node, 0) + blocks
        )

    def note_failed_read(self, volume: int) -> None:
        node = self.node_of_volume(volume)
        self.failed_reads_by_node[node] = self.failed_reads_by_node.get(node, 0) + 1

    def snapshot(self) -> dict:
        return {
            "events_applied": len(self.log),
            "dead_volumes": sorted(self.dead_volumes),
            "dead_nodes": sorted(self.dead_nodes),
            "unreachable_volumes": sorted(self.unreachable_volumes),
            "slow_volumes": dict(sorted(self.slow_volumes.items())),
            "log": list(self.log),
        }


class FaultInjector:
    """Replays a fault schedule into a running cluster.

    One daemon thread sleeps until each event's time (events and their
    heals expanded into one sorted timeline) and applies it to the
    :class:`FaultState`.  ``node_crash`` additionally drops the node's
    cache shards — the crashed machine's memory — losing whatever dirty
    blocks had not been flushed (exactly what replication must absorb).

    ``scrub`` is for byte-faithful tests: on a kill, memory-backed disk
    images of the dead volumes are overwritten with zeros, proving that
    post-fault reads really are served by the surviving replicas and never
    by the "dead" hardware the simulation still holds in memory.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        state: FaultState,
        schedule: List[FaultEvent],
        topology: Optional[Any] = None,
        scrub: bool = False,
    ):
        self.scheduler = scheduler
        self.state = state
        self.schedule = sorted(schedule, key=lambda e: (e.time, e.kind, e.target))
        self.topology = topology
        self.scrub = scrub
        self.thread: Optional[Thread] = None
        self.applied = 0

    def start(self) -> None:
        """Spawn the injector daemon (idempotent; node 0, so the timeline
        is identical under the sequential and the sharded loop)."""
        if self.thread is None and self.schedule:
            self.thread = self.scheduler.spawn(
                self._daemon, name="fault-injector", daemon=True, node=0
            )

    # ------------------------------------------------------------------ the daemon

    def _timeline(self) -> List[Tuple[float, int, str, FaultEvent]]:
        """Events plus their heals, as one sorted ``(time, seq, action,
        event)`` list — ``seq`` breaks ties deterministically."""
        timeline: List[Tuple[float, int, str, FaultEvent]] = []
        for seq, event in enumerate(self.schedule):
            timeline.append((event.time, seq, "apply", event))
            if event.kind in ("nic_partition", "slow_disk"):
                timeline.append((event.time + event.duration, seq, "heal", event))
        timeline.sort(key=lambda item: (item[0], item[1], item[2]))
        return timeline

    def _daemon(self) -> Generator[Any, Any, None]:
        for when, _seq, action, event in self._timeline():
            delay = when - self.scheduler.now
            if delay > 0:
                yield from self.scheduler.sleep(delay)
            if action == "apply":
                self.apply(event)
            else:
                self.heal(event)

    # ------------------------------------------------------------------ applying

    def apply(self, event: FaultEvent) -> None:
        now = self.scheduler.now
        state = self.state
        if event.kind == "disk_fail":
            state.kill_volume(event.target, when=now)
            self._scrub_volumes([event.target])
        elif event.kind == "node_crash":
            state.kill_node(event.target, when=now)
            self._scrub_volumes(list(state.volumes_of_node(event.target)))
            self._drop_node_memory(event.target)
        elif event.kind == "nic_partition":
            state.partition_node(event.target, when=now)
        elif event.kind == "slow_disk":
            state.slow_volume(event.target, event.extra_latency, when=now)
        self.applied += 1

    def heal(self, event: FaultEvent) -> None:
        now = self.scheduler.now
        if event.kind == "nic_partition":
            self.state.heal_node(event.target, when=now)
        elif event.kind == "slow_disk":
            self.state.heal_volume_speed(event.target, when=now)

    # ------------------------------------------------------------------ helpers

    def _scrub_volumes(self, volumes: List[int]) -> None:
        if not self.scrub or self.topology is None:
            return
        for v in volumes:
            node = self.topology.nodes[self.state.node_of_volume(v)]
            local = v - node.volume_indices[0]
            volume = node.volumes[local]
            # LocalVolume owns drivers; RemoteVolume delegates to its backing.
            for driver in getattr(volume, "drivers", []):
                snapshot = getattr(driver, "snapshot", None)
                restore = getattr(driver, "restore", None)
                if snapshot is not None and restore is not None:
                    restore(bytes(len(snapshot())))

    def _drop_node_memory(self, node_index: int) -> None:
        """A crashed node loses its cache shards: every unreferenced block
        is dropped (dirty ones are the writes the crash ate).  Blocks a
        thread is actively using (pinned or busy) are left; their owners
        run to completion against the now-dead volume and the routing layer
        drops the I/O."""
        if self.topology is None:
            return
        node = self.topology.nodes[node_index]
        for shard in node.cache_shards:
            for block in list(shard.blocks()):
                if block.block_id is None or block.pinned or block.busy:
                    continue
                if block.is_dirty:
                    self.state.note_dropped_write(node.volume_indices[0])
                shard.invalidate(block)
