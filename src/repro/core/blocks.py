"""Cache blocks and block identities.

A cache block is a fixed-size slot in the file-system block cache.  In an
on-line (PFS) instantiation every slot owns a real data buffer; in a
simulated (Patsy) instantiation the buffer is absent — "the difference
between a simulated cache and a real cache is the lack of a data pointer in
the simulated case" — and data movement is charged as time instead.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional

from repro.errors import CacheError

__all__ = ["BlockId", "BlockState", "CacheBlock"]


class BlockId(NamedTuple):
    """Identity of a cached block: (file identifier, logical block number)."""

    file_id: int
    block_no: int

    def __str__(self) -> str:
        return f"{self.file_id}:{self.block_no}"


class BlockState(enum.Enum):
    """Life-cycle of a cache slot."""

    FREE = "free"
    CLEAN = "clean"
    DIRTY = "dirty"


class CacheBlock:
    """One slot of the file-system block cache."""

    __slots__ = (
        "slot",
        "size",
        "block_id",
        "state",
        "data",
        "valid_bytes",
        "dirty_since",
        "last_access",
        "access_count",
        "access_history",
        "pin_count",
        "busy",
    )

    def __init__(self, slot: int, size: int, with_data: bool):
        self.slot = slot
        self.size = size
        self.block_id: Optional[BlockId] = None
        self.state = BlockState.FREE
        self.data: Optional[bytearray] = bytearray(size) if with_data else None
        #: number of meaningful bytes in the block (for the last partial block
        #: of a file); only used when real data is present.
        self.valid_bytes = 0
        #: scheduler time at which the block first became dirty.
        self.dirty_since: Optional[float] = None
        self.last_access = 0.0
        self.access_count = 0
        #: recent access times, newest last (used by LRU-K replacement).
        self.access_history: list[float] = []
        #: pinned blocks cannot be evicted or reused (I/O in progress).
        self.pin_count = 0
        #: set while a flush of this block is in flight, so that concurrent
        #: flush decisions do not pick it a second time.
        self.busy = False

    # -- state queries --------------------------------------------------------

    @property
    def is_free(self) -> bool:
        return self.state is BlockState.FREE

    @property
    def is_dirty(self) -> bool:
        return self.state is BlockState.DIRTY

    @property
    def is_clean(self) -> bool:
        return self.state is BlockState.CLEAN

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def has_data(self) -> bool:
        return self.data is not None

    # -- pinning ----------------------------------------------------------------

    def pin(self) -> None:
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise CacheError(f"unpin of block {self.block_id} that is not pinned")
        self.pin_count -= 1

    # -- bookkeeping --------------------------------------------------------------

    def record_access(self, now: float, history_depth: int = 4) -> None:
        """Record an access for replacement-policy bookkeeping."""
        self.last_access = now
        self.access_count += 1
        self.access_history.append(now)
        if len(self.access_history) > history_depth:
            del self.access_history[0]

    def reset(self) -> None:
        """Return the slot to the FREE state (contents are discarded)."""
        if self.pinned:
            raise CacheError(f"cannot reset pinned block {self.block_id}")
        self.block_id = None
        self.state = BlockState.FREE
        self.dirty_since = None
        self.valid_bytes = 0
        self.access_count = 0
        self.access_history.clear()
        self.busy = False
        if self.data is not None:
            # Zero the buffer so stale data never leaks into a new file.
            self.data[:] = bytes(self.size)

    def __repr__(self) -> str:
        return (
            f"CacheBlock(slot={self.slot}, id={self.block_id}, state={self.state.value}, "
            f"pins={self.pin_count})"
        )
