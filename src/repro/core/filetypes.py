"""Instantiated files: the per-file objects that live in the file table.

"Abstract client requests are dispatched to so-called instantiated files.
An instantiated file is used to control a file that has been loaded into the
file-system cache.  It may contain a memory copy of the file's inode,
references to cached file data, and it contains a set of functions to
perform operations on a file, such as a read, write and flush method."

Each file *type* is a derived class (Section 2, "Files"): regular files,
directories, symbolic links, multi-media files and administrative files.
Derived classes can override caching behaviour — the multimedia file limits
its cache footprint and can run an *active* prefetching thread, exactly the
examples the paper gives for why per-file policy matters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.core import codec
from repro.core.blocks import CacheBlock
from repro.core.inode import FileKind, Inode
from repro.errors import CacheError, InvalidArgument
from repro.units import block_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.filesystem import FileSystem

__all__ = [
    "BaseFile",
    "RegularFile",
    "DirectoryFile",
    "SymlinkFile",
    "MultimediaFile",
    "AdministrativeFile",
    "FILE_CLASS_BY_KIND",
    "register_file_type",
]


class BaseFile:
    """Base class of every instantiated file."""

    kind = FileKind.REGULAR

    def __init__(self, fs: "FileSystem", inode: Inode):
        self.fs = fs
        self.inode = inode
        #: number of open handles referring to this file.
        self.open_count = 0
        #: set when the file was synthesised by the simulator because a trace
        #: referenced a file that existed before the trace started.
        self.materialized = False
        #: inode number of the directory this file was created in (when
        #: known); fsync uses it to make the new directory entry durable.
        self.parent_id: Optional[int] = None
        #: directories whose entries for this file changed (rename source
        #: and destination); fsync flushes them too and clears the set, so
        #: a rename is durable once the renamed file is fsynced.
        self.pending_sync_parents: set[int] = set()

    # -- identity ---------------------------------------------------------------

    @property
    def file_id(self) -> int:
        return self.inode.number

    @property
    def size(self) -> int:
        return self.inode.size

    @property
    def block_size(self) -> int:
        return self.fs.block_size

    # -- life-cycle hooks ----------------------------------------------------------

    def on_open(self) -> Generator[Any, Any, None]:
        """Called when a client opens the file."""
        self.open_count += 1
        return
        yield  # pragma: no cover - keeps this a generator

    def on_close(self) -> Generator[Any, Any, None]:
        """Called when a client closes the file."""
        if self.open_count > 0:
            self.open_count -= 1
        return
        yield  # pragma: no cover - keeps this a generator

    # -- data path --------------------------------------------------------------------

    def read(self, offset: int, length: int) -> Generator[Any, Any, bytes]:
        """Read up to ``length`` bytes starting at ``offset``.

        Reads never extend past end-of-file; in a simulated system the
        returned bytes are zero filler of the right length.
        """
        if offset < 0 or length < 0:
            raise InvalidArgument("read offset and length must be non-negative")
        self.inode.touch_atime(self.fs.scheduler.now)
        if self.materialized and offset + length > self.inode.size:
            # Trace replay reads from a pre-existing file the simulator has
            # never seen written; grow the synthetic size so the read
            # actually exercises the disk path.
            self.inode.size = offset + length
        length = min(length, max(self.inode.size - offset, 0))
        if length == 0:
            return b""
        parts: list[bytes] = []
        for block_no in block_span(offset, length, self.block_size):
            block_start = block_no * self.block_size
            start_in_block = max(offset, block_start) - block_start
            end_in_block = min(offset + length, block_start + self.block_size) - block_start
            extent = end_in_block - start_in_block
            block = yield from self._block_for_read(block_no)
            if block is None:
                parts.append(bytes(extent))
            else:
                chunk = yield from self.fs.datamover.copy_out(block, start_in_block, extent)
                parts.append(chunk)
        yield from self._after_read(block_span(offset, length, self.block_size))
        return b"".join(parts)

    def write(
        self, offset: int, data: Optional[bytes] = None, length: Optional[int] = None
    ) -> Generator[Any, Any, int]:
        """Write ``data`` (or ``length`` anonymous bytes, simulator) at ``offset``."""
        if offset < 0:
            raise InvalidArgument("write offset must be non-negative")
        if data is not None:
            length = len(data)
        if length is None:
            raise InvalidArgument("write needs data or an explicit length")
        if length == 0:
            return 0
        scheduler = self.fs.scheduler
        written = 0
        for block_no in block_span(offset, length, self.block_size):
            block_start = block_no * self.block_size
            start_in_block = max(offset, block_start) - block_start
            end_in_block = min(offset + length, block_start + self.block_size) - block_start
            extent = end_in_block - start_in_block
            whole_block = start_in_block == 0 and extent == self.block_size
            block = yield from self._block_for_write(block_no, whole_block)
            block.pin()
            try:
                if data is not None:
                    chunk = data[written : written + extent]
                    yield from self.fs.datamover.copy_in(block, start_in_block, chunk)
                else:
                    yield from self.fs.datamover.charge(extent)
                    if block.data is not None:
                        block.valid_bytes = max(block.valid_bytes, end_in_block)
                yield from self.fs.cache.mark_dirty(block)
            finally:
                block.unpin()
            written += extent
        self.inode.size = max(self.inode.size, offset + length)
        self.inode.touch_mtime(scheduler.now)
        self.fs.note_inode_dirty(self.inode)
        return written

    def truncate(self, new_size: int) -> Generator[Any, Any, None]:
        """Shrink (or grow) the file to ``new_size`` bytes."""
        if new_size < 0:
            raise InvalidArgument("cannot truncate to a negative size")
        first_dead_block = (new_size + self.block_size - 1) // self.block_size
        if new_size < self.inode.size:
            self.fs.cache.invalidate_file(self.file_id, from_block=first_dead_block)
            yield from self.fs.layout.release_blocks(self.inode, first_dead_block)
        self.inode.size = new_size
        self.inode.touch_mtime(self.fs.scheduler.now)
        self.fs.note_inode_dirty(self.inode)

    def flush(self) -> Generator[Any, Any, int]:
        """Write this file's dirty blocks to disk."""
        return (yield from self.fs.cache.flush_file(self.file_id))

    # -- derived-class hooks -----------------------------------------------------------

    def cache_budget(self) -> Optional[int]:
        """Maximum cached blocks this file should occupy (None = unlimited)."""
        return None

    def _after_read(self, blocks_read: range) -> Generator[Any, Any, None]:
        """Hook invoked after a read completes (prefetch, budget enforcement)."""
        return
        yield  # pragma: no cover - keeps this a generator

    # -- cache plumbing ------------------------------------------------------------------

    def _block_for_read(self, block_no: int) -> Generator[Any, Any, Optional[CacheBlock]]:
        cache = self.fs.cache
        while True:
            block = cache.lookup(self.file_id, block_no)
            if block is not None:
                if block.busy:
                    yield from cache.wait_block_ready(self.file_id, block_no)
                    continue
                return block
            try:
                block = yield from cache.allocate(self.file_id, block_no)
            except CacheError:
                # Another thread slipped in and cached the block; retry.
                continue
            break
        block.pin()
        block.busy = True
        failed = False
        try:
            yield from self.fs.layout.read_file_block(self.inode, block_no, block)
        except Exception:
            failed = True
            raise
        finally:
            block.busy = False
            block.unpin()
            if failed and not block.pinned and not block.busy:
                # A fill that died (dead volume, no live replica) must not
                # linger in the cache as valid-looking data.
                cache.invalidate(block)
            cache.notify_block_ready(self.file_id, block_no)
        return block

    def _block_for_write(
        self, block_no: int, whole_block: bool
    ) -> Generator[Any, Any, CacheBlock]:
        cache = self.fs.cache
        while True:
            block = cache.lookup(self.file_id, block_no)
            if block is not None:
                if block.busy:
                    yield from cache.wait_block_ready(self.file_id, block_no)
                    continue
                return block
            try:
                block = yield from cache.allocate(self.file_id, block_no)
            except CacheError:
                continue
            break
        needs_old_data = not whole_block and (
            self.inode.get_block_address(block_no) is not None
            or block_no * self.block_size < self.inode.size
        )
        if needs_old_data:
            block.pin()
            block.busy = True
            failed = False
            try:
                yield from self.fs.layout.read_file_block(self.inode, block_no, block)
            except Exception:
                failed = True
                raise
            finally:
                block.busy = False
                block.unpin()
                if failed and not block.pinned and not block.busy:
                    cache.invalidate(block)
                cache.notify_block_ready(self.file_id, block_no)
        return block

    def __repr__(self) -> str:
        return f"{type(self).__name__}(#{self.file_id} size={self.size})"


class RegularFile(BaseFile):
    """An ordinary data file."""

    kind = FileKind.REGULAR


class AdministrativeFile(BaseFile):
    """Internal bookkeeping files (the IFILE, quota files, ...)."""

    kind = FileKind.ADMINISTRATIVE


class SymlinkFile(BaseFile):
    """A symbolic link; the target lives in the inode."""

    kind = FileKind.SYMLINK

    @property
    def target(self) -> str:
        return self.inode.symlink_target

    def set_target(self, target: str) -> None:
        self.inode.symlink_target = target
        self.inode.size = len(target.encode("utf-8"))
        self.fs.note_inode_dirty(self.inode)


class DirectoryFile(BaseFile):
    """A directory: a mapping from names to inode numbers.

    The entry map is loaded from the directory's data blocks on first use
    (real systems) or starts empty (simulated systems, where pre-existing
    directory contents are synthesised by the trace replayer as it goes).
    Every mutation rewrites the directory data through the ordinary cached
    write path, so directory updates are delayed writes like any other.
    """

    kind = FileKind.DIRECTORY

    def __init__(self, fs: "FileSystem", inode: Inode):
        super().__init__(fs, inode)
        self._entries: Optional[Dict[str, int]] = None

    # -- entry access -------------------------------------------------------------

    def load_entries(self) -> Generator[Any, Any, Dict[str, int]]:
        if self._entries is not None:
            return self._entries
        if self.inode.size == 0:
            self._entries = {}
            return self._entries
        raw = yield from self.read(0, self.inode.size)
        try:
            self._entries = codec.unpack_directory(raw)
        except Exception:  # simulated data is zero filler; start empty
            self._entries = {}
        return self._entries

    def lookup(self, name: str) -> Generator[Any, Any, Optional[int]]:
        entries = yield from self.load_entries()
        return entries.get(name)

    def list_entries(self) -> Generator[Any, Any, Dict[str, int]]:
        entries = yield from self.load_entries()
        return dict(entries)

    @property
    def entry_count(self) -> int:
        return len(self._entries) if self._entries is not None else 0

    def is_empty(self) -> Generator[Any, Any, bool]:
        entries = yield from self.load_entries()
        return len(entries) == 0

    # -- mutation ------------------------------------------------------------------

    def add_entry(self, name: str, inode_number: int) -> Generator[Any, Any, None]:
        self._validate_name(name)
        entries = yield from self.load_entries()
        entries[name] = inode_number
        yield from self._save_entries()

    def remove_entry(self, name: str) -> Generator[Any, Any, int]:
        entries = yield from self.load_entries()
        if name not in entries:
            raise InvalidArgument(f"directory has no entry named {name!r}")
        inode_number = entries.pop(name)
        yield from self._save_entries()
        return inode_number

    def _save_entries(self) -> Generator[Any, Any, None]:
        assert self._entries is not None
        if not self.fs.cache.with_data:
            # Simulated system: directories have no real contents; write a
            # representative amount of data (entry records are ~24 bytes).
            payload = None
            length = max(16 + 24 * len(self._entries), 16)
            new_size = length
        else:
            data = codec.pack_directory(self._entries)
            payload = data
            length = len(data)
            new_size = length
        if new_size < self.inode.size:
            yield from self.truncate(new_size)
        yield from self.write(0, payload, length)
        self.inode.size = new_size

    @staticmethod
    def _validate_name(name: str) -> None:
        if not name or "/" in name or name in (".", ".."):
            raise InvalidArgument(f"invalid directory entry name {name!r}")

    def read(self, offset: int, length: int) -> Generator[Any, Any, bytes]:
        # Directories are read through readdir, not the data interface, but
        # the underlying implementation is shared with BaseFile.
        return (yield from super().read(offset, length))


class MultimediaFile(BaseFile):
    """A continuous-media file with its own cache policy.

    "If ordinary cache policies are used on a multi-media file the whole
    cache would fill up with this data.  A multi-media file prevents this
    from happening by implementing other cache policies."  This class caps
    its resident block count, evicting its own least-recent clean blocks,
    and can run an *active* thread that prefetches ahead of a sequential
    reader to meet soft real-time deadlines.
    """

    kind = FileKind.MULTIMEDIA

    #: default maximum number of cached blocks this file may occupy.
    DEFAULT_BUDGET = 32

    def __init__(self, fs: "FileSystem", inode: Inode):
        super().__init__(fs, inode)
        self.budget = self.DEFAULT_BUDGET
        self.prefetch_depth = 4
        self._streaming_thread = None
        self._stop_streaming = False

    def cache_budget(self) -> Optional[int]:
        return self.budget

    def _after_read(self, blocks_read: range) -> Generator[Any, Any, None]:
        yield from self._enforce_budget()

    def _enforce_budget(self) -> Generator[Any, Any, None]:
        cache = self.fs.cache
        resident = cache.cached_blocks_of(self.file_id)
        excess = len(resident) - self.budget
        if excess <= 0:
            return
        evictable = sorted(
            (b for b in resident if b.is_clean and not b.pinned and not b.busy),
            key=lambda b: b.last_access,
        )
        for block in evictable[:excess]:
            cache.invalidate(block)
        return
        yield  # pragma: no cover - keeps this a generator

    # -- active file support ---------------------------------------------------------

    def start_streaming(self, rate_bytes_per_s: float, start_offset: int = 0):
        """Spawn the file's own thread of control ("active file") that
        prefetches sequentially at ``rate_bytes_per_s``."""
        self._stop_streaming = False
        self._streaming_thread = self.fs.scheduler.spawn(
            self._stream, rate_bytes_per_s, start_offset,
            name=f"mm-stream-{self.file_id}", daemon=True,
        )
        return self._streaming_thread

    def stop_streaming(self) -> None:
        self._stop_streaming = True

    def _stream(self, rate: float, offset: int) -> Generator[Any, Any, None]:
        block_interval = self.block_size / max(rate, 1.0)
        block_no = offset // self.block_size
        while not self._stop_streaming and block_no * self.block_size < self.inode.size:
            yield from self._block_for_read(block_no)
            yield from self._enforce_budget()
            block_no += 1
            yield from self.fs.scheduler.sleep(block_interval)


#: registry used by the file table to instantiate the right class for an inode.
FILE_CLASS_BY_KIND: Dict[FileKind, type] = {
    FileKind.REGULAR: RegularFile,
    FileKind.DIRECTORY: DirectoryFile,
    FileKind.SYMLINK: SymlinkFile,
    FileKind.MULTIMEDIA: MultimediaFile,
    FileKind.ADMINISTRATIVE: AdministrativeFile,
}


def register_file_type(kind: FileKind, cls: type) -> None:
    """Register (or replace) the class instantiated for a file kind."""
    if not issubclass(cls, BaseFile):
        raise InvalidArgument(f"{cls!r} is not a BaseFile subclass")
    FILE_CLASS_BY_KIND[kind] = cls
