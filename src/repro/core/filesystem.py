"""The file-system assembly: wiring the cut-and-paste components together.

An instantiation of the framework — PFS or Patsy — constructs a scheduler,
a cache, a storage layout over some volume, a data mover and a flush policy,
and hands them to :class:`FileSystem`.  This object owns the "global
variables" of the paper's Figure 1: the global file table, the namespace and
the writeback path that connects the cache to the storage layout.

Everything here is instantiation-independent; the only difference between
the real system and the simulator is which helper components were plugged
in underneath (real vs. simulated disks, real vs. absent data buffers).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.core.cache import BlockCache
from repro.core.datamover import DataMover
from repro.core.filetable import FileTable
from repro.core.filetypes import DirectoryFile
from repro.core.flush import FlushPolicy
from repro.core.inode import FileKind, Inode, ROOT_INODE_NUMBER
from repro.core.namespace import Namespace
from repro.core.scheduler import Scheduler
from repro.core.storage.cleaner import CleanerDaemon, CleanerSet
from repro.core.storage.layout import StorageLayout
from repro.errors import FileSystemError, StorageError
from repro.core.storage.volume import Volume

__all__ = ["FileSystem"]


class FileSystem:
    """A complete file system built from framework components."""

    def __init__(
        self,
        scheduler: Scheduler,
        cache: BlockCache,
        layout: StorageLayout,
        datamover: DataMover,
        flush_policy: Optional[FlushPolicy] = None,
        # One CleanerDaemon, or a CleanerSet fanning out to one per volume.
        cleaner: Optional["CleanerDaemon | CleanerSet"] = None,
        # Durable routing metadata (repro.core.metadata.MetadataTier); its
        # mount/unmount hooks recover and checkpoint the routing table.
        metadata: Optional[Any] = None,
    ):
        self.scheduler = scheduler
        self.cache = cache
        self.layout = layout
        self.datamover = datamover
        self.flush_policy = flush_policy
        self.cleaner = cleaner
        self.metadata = metadata
        self.file_table = FileTable(self)
        self.namespace = Namespace(self)
        self.block_size = cache.block_size
        self._root: Optional[DirectoryFile] = None
        self._dirty_inodes: Dict[int, Inode] = {}
        self.mounted = False

        cache.writeback = self._writeback
        if flush_policy is not None:
            flush_policy.attach(cache, scheduler)

    # ------------------------------------------------------------------ properties

    @property
    def volume(self) -> Volume:
        """The storage under the layout: a single :class:`Volume`, or a
        :class:`~repro.core.storage.array.VolumeSet` for multi-volume
        arrays (both expose ``block_size``, ``total_blocks`` and
        ``flush``, which is all the file system touches here)."""
        return self.layout.volume

    def root_directory(self) -> DirectoryFile:
        if self._root is None:
            raise FileSystemError("file system is not mounted")
        return self._root

    # ------------------------------------------------------------------ lifecycle

    def mount(self, format: bool = False) -> Generator[Any, Any, None]:
        """Mount the file system, optionally formatting the volume first."""
        if format:
            yield from self.layout.format()
        yield from self.layout.mount()
        if self.metadata is not None:
            # Recover the routing table (manifest + WAL replay) before the
            # first path lookup routes anything.
            yield from self.metadata.on_mount(format)
        root = yield from self._load_or_create_root()
        self._root = root
        if self.cleaner is not None:
            self.cleaner.start()
        self.mounted = True

    def _load_or_create_root(self) -> Generator[Any, Any, DirectoryFile]:
        try:
            inode = yield from self.layout.read_inode(ROOT_INODE_NUMBER)
        except StorageError:
            inode = self.layout.allocate_inode(FileKind.DIRECTORY)
            if inode.number != ROOT_INODE_NUMBER:
                raise StorageError(
                    f"expected the root inode to be #{ROOT_INODE_NUMBER}, got #{inode.number}"
                )
            inode.nlink = 2
            yield from self.layout.write_inode(inode)
        root = self.file_table.instantiate(inode)
        if not isinstance(root, DirectoryFile):
            raise StorageError("the root inode is not a directory")
        return root

    def sync(self) -> Generator[Any, Any, int]:
        """Flush all dirty data and metadata to disk; returns blocks written."""
        written = yield from self.cache.flush_all()
        # Inodes whose metadata changed without any data being flushed.
        for inode in list(self._dirty_inodes.values()):
            yield from self.layout.write_inode(inode)
            self._dirty_inodes.pop(inode.number, None)
        yield from self.layout.checkpoint()
        return written

    def unmount(self) -> Generator[Any, Any, None]:
        """Sync, checkpoint and quiesce the disks."""
        yield from self.sync()
        if self.metadata is not None:
            yield from self.metadata.on_unmount()
        yield from self.layout.unmount()
        yield from self.volume.flush()
        self.mounted = False

    # ------------------------------------------------------------------ dirty metadata tracking

    def note_inode_dirty(self, inode: Inode) -> None:
        """Record that ``inode``'s metadata must reach disk by the next sync."""
        self._dirty_inodes[inode.number] = inode

    def sync_inode(self, inode_number: int) -> Generator[Any, Any, None]:
        """Write one dirty inode to disk now (fsync durability)."""
        inode = self._dirty_inodes.pop(inode_number, None)
        if inode is not None:
            yield from self.layout.write_inode(inode)

    @property
    def dirty_inode_count(self) -> int:
        return len(self._dirty_inodes)

    # ------------------------------------------------------------------ the writeback path

    def _writeback(self, file_id: int, block_nos: list[int]) -> Generator[Any, Any, None]:
        """Write the given cached blocks of ``file_id`` (and its inode) to disk.

        Registered with the cache at construction time; every flush —
        policy-driven, NVRAM drain or replacement pressure — funnels through
        here and therefore through the storage layout and disk drivers.
        """
        loaded = self.file_table.find(file_id)
        if loaded is not None:
            inode = loaded.inode
        else:
            inode = yield from self.layout.read_inode(file_id)
        pairs = []
        for block_no in block_nos:
            block = self.cache.peek(file_id, block_no)
            if block is not None:
                pairs.append((block_no, block))
        if not pairs:
            return
        yield from self.layout.write_file_blocks(inode, pairs)
        yield from self.layout.write_inode(inode)
        self._dirty_inodes.pop(inode.number, None)

    def __repr__(self) -> str:
        return (
            f"FileSystem(layout={self.layout.name}, cache_blocks={self.cache.num_blocks}, "
            f"mounted={self.mounted})"
        )
