"""Cache replacement policies.

The base cache maintains LRU lists; "different cache administration policies
are easily implemented by re-implementing the replacement methods of the
base-class in a new derived class — for example RR, LFU, SLRU, LRU-K or
adaptive" (Section 2).  Here each policy is a small strategy object that the
cache consults when it must pick a clean victim block.

The policy sees only the candidate clean, unpinned blocks; ordering
book-keeping (access times, access counts, access history) lives on the
blocks themselves, so policies are stateless and interchangeable at run time.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.core.blocks import CacheBlock
from repro.errors import ConfigurationError

__all__ = [
    "ReplacementPolicy",
    "LruReplacement",
    "RandomReplacement",
    "LfuReplacement",
    "SlruReplacement",
    "LruKReplacement",
    "make_replacement_policy",
]


class ReplacementPolicy(ABC):
    """Strategy for choosing which clean block to evict."""

    name = "abstract"

    @abstractmethod
    def victim(self, candidates: Sequence[CacheBlock], rng: random.Random) -> Optional[CacheBlock]:
        """Pick the block to evict from ``candidates`` (may be empty)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LruReplacement(ReplacementPolicy):
    """Evict the least recently used block (the framework default).

    The cache presents candidates in recency order (least recent first), so
    this policy is O(1); it simply takes the first candidate.
    """

    name = "lru"

    def victim(self, candidates: Sequence[CacheBlock], rng: random.Random) -> Optional[CacheBlock]:
        return candidates[0] if candidates else None


class RandomReplacement(ReplacementPolicy):
    """Evict a random clean block (the paper's "RR")."""

    name = "random"

    def victim(self, candidates: Sequence[CacheBlock], rng: random.Random) -> Optional[CacheBlock]:
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]


class LfuReplacement(ReplacementPolicy):
    """Evict the least frequently used block, breaking ties by recency."""

    name = "lfu"

    def victim(self, candidates: Sequence[CacheBlock], rng: random.Random) -> Optional[CacheBlock]:
        if not candidates:
            return None
        return min(candidates, key=lambda block: (block.access_count, block.last_access))


class SlruReplacement(ReplacementPolicy):
    """Segmented LRU: prefer evicting blocks referenced only once.

    Blocks that have been accessed a single time form the probationary
    segment; they are evicted (LRU order) before any block that has been
    re-referenced (the protected segment).
    """

    name = "slru"

    def victim(self, candidates: Sequence[CacheBlock], rng: random.Random) -> Optional[CacheBlock]:
        if not candidates:
            return None
        probationary = [block for block in candidates if block.access_count <= 1]
        pool = probationary if probationary else candidates
        return min(pool, key=lambda block: block.last_access)


class LruKReplacement(ReplacementPolicy):
    """LRU-K: evict the block whose K-th most recent access is oldest.

    Blocks with fewer than K recorded accesses are treated as having an
    infinitely old K-th access, so they are evicted first (classic LRU-K
    behaviour).
    """

    name = "lru-k"

    def __init__(self, k: int = 2):
        if k < 1:
            raise ConfigurationError("LRU-K requires k >= 1")
        self.k = k

    def victim(self, candidates: Sequence[CacheBlock], rng: random.Random) -> Optional[CacheBlock]:
        if not candidates:
            return None

        def kth_access(block: CacheBlock) -> float:
            history = block.access_history
            if len(history) < self.k:
                return float("-inf")
            return history[-self.k]

        return min(candidates, key=lambda block: (kth_access(block), block.last_access))

    def __repr__(self) -> str:
        return f"LruKReplacement(k={self.k})"


def make_replacement_policy(name: str, *, slru_fraction: float = 0.5, k: int = 2) -> ReplacementPolicy:
    """Factory used by :class:`repro.core.cache.BlockCache` from configuration."""
    if name == "lru":
        return LruReplacement()
    if name == "random":
        return RandomReplacement()
    if name == "lfu":
        return LfuReplacement()
    if name == "slru":
        return SlruReplacement()
    if name == "lru-k":
        return LruKReplacement(k)
    raise ConfigurationError(f"unknown replacement policy {name!r}")
