"""Cache replacement policies: a stateful, O(1)-per-access subsystem.

The base cache maintains LRU lists; "different cache administration policies
are easily implemented by re-implementing the replacement methods of the
base-class in a new derived class — for example RR, LFU, SLRU, LRU-K or
adaptive" (Section 2).  The seed implementation expressed each policy as a
stateless ``victim(candidates)`` scan over every clean resident block, which
is O(n) per eviction and cannot express policies that need history beyond
residency (ghost lists).

This module replaces that with an *event-driven* strategy interface: the
cache notifies the policy when a block becomes resident (:meth:`on_insert`),
when a resident block is referenced (:meth:`on_access`) and when a block
leaves the cache (:meth:`on_evict`); the policy answers :meth:`victim` in
O(1) amortised time from intrusive doubly-linked lists it maintains itself.
Ghost lists — recency lists of *evicted* block identities — let the adaptive
policies (ARC, 2Q) remember more history than fits in the cache, which is
what makes them scan-resistant.

Implemented policies:

``lru``     classic least-recently-used (one recency list),
``random``  evict a uniformly random resident block (the paper's "RR"),
``lfu``     least-frequently-used via O(1) frequency buckets,
``slru``    segmented LRU: probationary + protected segments,
``lru-k``   O(1) approximation of LRU-K: blocks with fewer than K
            references are evicted (LRU order) before mature blocks,
``clock``   second-chance clock with a sweeping hand and reference bits,
``2q``      the full 2Q of Johnson & Shasha: A1in FIFO, A1out ghost
            FIFO, Am LRU,
``arc``     Megiddo & Modha's Adaptive Replacement Cache: T1/T2 resident
            lists, B1/B2 ghost lists and a self-tuning target ``p``.

Pinned, busy and dirty blocks are never evicted; ``victim`` skips over them
from the eviction end of its lists, so the work per eviction is proportional
to the handful of temporarily ineligible blocks near the tail, not to the
cache size.  Every examined node is counted in ``stats.victim_scan_steps``
so tests and benchmarks can verify the O(1) claim directly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterator, Optional

from repro.assembly.registry import registry
from repro.core.blocks import BlockId, CacheBlock
from repro.errors import CacheError, ConfigurationError

__all__ = [
    "PolicyCounters",
    "ReplacementPolicy",
    "LruPolicy",
    "RandomPolicy",
    "LfuPolicy",
    "SlruPolicy",
    "LruKPolicy",
    "ClockPolicy",
    "TwoQPolicy",
    "ArcPolicy",
    "POLICY_NAMES",
    "make_replacement_policy",
]


class PolicyCounters:
    """Counter sink used when a policy runs standalone (outside a cache).

    :class:`repro.core.cache.CacheStatistics` exposes the same attribute
    names, so a cache-owned policy increments the shared statistics object
    directly and the counters show up in ``stats.snapshot()``.
    """

    def __init__(self) -> None:
        self.ghost_hits = 0
        self.policy_adaptations = 0
        self.victim_scan_steps = 0


class _Node:
    """Intrusive list node for one block identity (resident or ghost)."""

    __slots__ = ("key", "block", "prev", "next", "owner", "home", "ref", "freq", "index")

    def __init__(self, key: BlockId, block: Optional[CacheBlock] = None):
        self.key = key
        #: the resident block, or ``None`` for a ghost entry.
        self.block = block
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None
        #: the :class:`_DList` currently holding this node (None if unlisted).
        self.owner: Optional["_DList"] = None
        #: while the block is dirty (parked off-list), the list it returns
        #: to when cleaned; policies may retarget it on parked accesses.
        self.home: Optional["_DList"] = None
        #: CLOCK reference bit.
        self.ref = False
        #: LFU frequency (also reused as the array index by RandomPolicy).
        self.freq = 0
        self.index = -1

    @property
    def segment(self) -> Optional["_DList"]:
        """The list this node logically belongs to (even while parked)."""
        return self.owner if self.owner is not None else self.home

    @property
    def is_ghost(self) -> bool:
        return self.block is None


class _DList:
    """Intrusive doubly-linked list with a sentinel: every operation O(1).

    Convention: the *head* is the eviction end (LRU / FIFO-out) and the
    *tail* is the insertion end (MRU / FIFO-in).
    """

    __slots__ = ("tag", "_sentinel", "_size")

    def __init__(self, tag: str = ""):
        self.tag = tag
        sentinel = _Node(None)  # type: ignore[arg-type]
        sentinel.prev = sentinel
        sentinel.next = sentinel
        self._sentinel = sentinel
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def head(self) -> Optional[_Node]:
        node = self._sentinel.next
        return None if node is self._sentinel else node

    @property
    def tail(self) -> Optional[_Node]:
        node = self._sentinel.prev
        return None if node is self._sentinel else node

    def insert_before(self, node: _Node, anchor: _Node) -> None:
        if node.owner is not None:
            raise CacheError(f"node {node.key} is already on list {node.owner.tag!r}")
        node.prev = anchor.prev
        node.next = anchor
        anchor.prev.next = node
        anchor.prev = node
        node.owner = self
        self._size += 1

    def append(self, node: _Node) -> None:
        """Insert at the tail (the MRU / most-recently-inserted end)."""
        self.insert_before(node, self._sentinel)

    def remove(self, node: _Node) -> None:
        if node.owner is not self:
            raise CacheError(f"node {node.key} is not on list {self.tag!r}")
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = node.next = None
        node.owner = None
        self._size -= 1

    def move_to_tail(self, node: _Node) -> None:
        self.remove(node)
        self.append(node)

    def pop_head(self) -> Optional[_Node]:
        node = self.head
        if node is not None:
            self.remove(node)
        return node

    def next_wrapping(self, node: _Node) -> Optional[_Node]:
        """The successor of ``node``, wrapping over the sentinel (for CLOCK)."""
        if self._size == 0:
            return None
        nxt = node.next if node.next is not None else self._sentinel.next
        if nxt is self._sentinel:
            nxt = self._sentinel.next
        return nxt

    def __iter__(self) -> Iterator[_Node]:
        node = self._sentinel.next
        while node is not self._sentinel:
            nxt = node.next
            yield node
            node = nxt


def _evictable(block: Optional[CacheBlock]) -> bool:
    """Only clean, unpinned, idle blocks may be evicted."""
    return (
        block is not None
        and block.is_clean
        and not block.pinned
        and not block.busy
    )


class ReplacementPolicy(ABC):
    """Event-driven strategy deciding which resident block to evict.

    The owning cache reports residency changes and references::

        on_insert(block)   block became resident (a miss was filled)
        on_access(block)   a resident block was referenced again
        on_dirty(block)    block became dirty (not evictable until cleaned)
        on_clean(block)    a dirty block was written back
        on_evict(block)    block leaves the cache (eviction or invalidate)

    and asks ``victim()`` for the next block to evict.  ``victim`` returns a
    clean, unpinned, non-busy block or ``None``; with ``peek=True`` it must
    not mutate any policy state (used for "could an allocation succeed"
    queries).  ``incoming`` optionally names the block identity about to be
    inserted, which exact ARC uses to resolve its REPLACE tie-break.

    Dirty blocks are *parked*: removed from the eviction lists (they cannot
    be victims, and skipping them on every selection would make eviction
    O(dirty count)) while remembering their segment in ``node.home``.
    ``on_clean`` re-inserts the block at the MRU end of that segment —
    freshly cleaned data was written recently, which is exactly what the
    MRU position encodes.
    """

    name = "abstract"

    def __init__(
        self,
        capacity: int,
        rng: Optional[random.Random] = None,
        stats: Optional[object] = None,
    ):
        if capacity < 1:
            raise ConfigurationError("replacement policy capacity must be >= 1")
        self.capacity = capacity
        self.rng = rng if rng is not None else random.Random(0)
        self.stats = stats if stats is not None else PolicyCounters()
        self._nodes: Dict[BlockId, _Node] = {}

    # ------------------------------------------------------------------ events

    @abstractmethod
    def on_insert(self, block: CacheBlock) -> None:
        """``block`` became resident (counts as its first reference)."""

    @abstractmethod
    def on_access(self, block: CacheBlock) -> None:
        """A resident ``block`` was referenced again."""

    @abstractmethod
    def victim(
        self, incoming: Optional[BlockId] = None, peek: bool = False
    ) -> Optional[CacheBlock]:
        """The block to evict next, or ``None`` if nothing is evictable."""

    def on_dirty(self, block: CacheBlock) -> None:
        """``block`` became dirty: park it off the eviction lists."""
        node = self._node_of(block)
        if node is None or node.owner is None:
            return
        node.home = node.owner
        node.owner.remove(node)

    def on_clean(self, block: CacheBlock) -> None:
        """A dirty ``block`` was written back: restore it as evictable."""
        node = self._node_of(block)
        if node is None or node.owner is not None:
            return
        self._unpark(node)

    def _unpark(self, node: _Node) -> None:
        """Re-insert a parked node at the MRU end of its home segment."""
        home = node.home
        node.home = None
        if home is None:  # defensive: never seen on_dirty
            home = self._default_list()
        home.append(node)

    def _default_list(self) -> _DList:
        raise CacheError(f"policy {self.name} cannot restore an unparked block")

    def forget_file(self, file_id: int, from_block: int = 0) -> None:
        """Purge ghost entries for ``file_id`` (truncate/delete destroyed
        the data, so remembering those identities would turn future writes
        to the same blocks into spurious ghost hits).  No-op for policies
        without ghost lists."""

    def on_evict(self, block: CacheBlock, ghost: bool = True) -> None:
        """``block`` leaves the cache.

        ``ghost=True`` for replacement evictions (the identity may be
        remembered in a ghost list); ``ghost=False`` for invalidations
        (truncate/delete), where remembering the identity would be wrong.
        """
        node = self._nodes.pop(block.block_id, None)
        if node is None:
            return
        self._retire(node, ghost)

    def _retire(self, node: _Node, ghost: bool) -> None:
        """Unlink a resident node; subclasses hook this to create ghosts."""
        if node.owner is not None:
            node.owner.remove(node)

    # ------------------------------------------------------------------ helpers

    def _register(self, block: CacheBlock) -> _Node:
        key = block.block_id
        if key is None:
            raise CacheError("cannot track a block without an identity")
        if key in self._nodes:
            raise CacheError(f"block {key} is already tracked by {self.name}")
        node = _Node(key, block)
        self._nodes[key] = node
        return node

    def _node_of(self, block: CacheBlock) -> Optional[_Node]:
        if block.block_id is None:
            return None
        return self._nodes.get(block.block_id)

    def _scan(self, dlist: _DList, peek: bool) -> Optional[_Node]:
        """First evictable node from the eviction (head) end of ``dlist``.

        Ineligible blocks (pinned, busy, dirty) are skipped, not removed;
        they are expected to become eligible or leave the list soon, so the
        amortised work stays O(1).  Every node examined is counted.
        """
        steps = 0
        found = None
        for node in dlist:
            steps += 1
            if _evictable(node.block):
                found = node
                break
        if not peek:
            self.stats.victim_scan_steps += steps
        return found

    # ------------------------------------------------------------------ queries

    @property
    def resident_count(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: BlockId) -> bool:
        return key in self._nodes

    def snapshot(self) -> dict:
        """Policy-internal gauges, surfaced in simulation reports."""
        return {"resident": len(self._nodes)}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(capacity={self.capacity})"


class LruPolicy(ReplacementPolicy):
    """Least-recently-used over one intrusive recency list (the default)."""

    name = "lru"

    def __init__(self, capacity: int, rng=None, stats=None):
        super().__init__(capacity, rng, stats)
        self._list = _DList("lru")

    def on_insert(self, block: CacheBlock) -> None:
        self._list.append(self._register(block))

    def on_access(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is not None and node.owner is not None:
            self._list.move_to_tail(node)

    def victim(self, incoming=None, peek=False) -> Optional[CacheBlock]:
        node = self._scan(self._list, peek)
        return node.block if node else None

    def _default_list(self) -> _DList:
        return self._list


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random resident block (the paper's "RR").

    Residents live in an array with O(1) swap-removal; the victim is found
    by random probing with a bounded linear fallback, so selection does not
    scan the whole cache.
    """

    name = "random"
    _PROBES = 8

    def __init__(self, capacity: int, rng=None, stats=None):
        super().__init__(capacity, rng, stats)
        self._order: list[_Node] = []

    def on_insert(self, block: CacheBlock) -> None:
        node = self._register(block)
        node.index = len(self._order)
        self._order.append(node)

    def on_access(self, block: CacheBlock) -> None:
        pass  # random replacement ignores references

    def victim(self, incoming=None, peek=False) -> Optional[CacheBlock]:
        count = len(self._order)
        if count == 0:
            return None
        if peek:
            # Peek must not mutate policy state — and drawing from the
            # shared scheduler RNG *is* state: it would perturb thread
            # scheduling and later victim picks.  A plain scan answers
            # "is anything evictable" without touching the RNG.
            for node in self._order:
                if _evictable(node.block):
                    return node.block
            return None
        steps = 0
        for _ in range(self._PROBES):
            steps += 1
            node = self._order[self.rng.randrange(count)]
            if _evictable(node.block):
                self.stats.victim_scan_steps += steps
                return node.block
        # Dense ineligibility (most of the cache dirty or pinned): fall back
        # to one wrap-around sweep from a random start.
        start = self.rng.randrange(count)
        for offset in range(count):
            steps += 1
            node = self._order[(start + offset) % count]
            if _evictable(node.block):
                self.stats.victim_scan_steps += steps
                return node.block
        self.stats.victim_scan_steps += steps
        return None

    def on_dirty(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is not None and node.index >= 0:
            self._array_remove(node)

    def on_clean(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is not None and node.index < 0:
            node.index = len(self._order)
            self._order.append(node)

    def _retire(self, node: _Node, ghost: bool) -> None:
        if node.index >= 0:
            self._array_remove(node)

    def _array_remove(self, node: _Node) -> None:
        last = self._order[-1]
        self._order[node.index] = last
        last.index = node.index
        self._order.pop()
        node.index = -1


class LfuPolicy(ReplacementPolicy):
    """Least-frequently-used with O(1) frequency buckets.

    Each reference moves a block from its frequency bucket to the next one;
    the victim comes from the lowest-frequency bucket in LRU order, which
    also resolves ties by recency (matching the seed semantics).
    """

    name = "lfu"

    def __init__(self, capacity: int, rng=None, stats=None):
        super().__init__(capacity, rng, stats)
        self._buckets: Dict[int, _DList] = {}
        #: lower bound on the smallest occupied frequency (lazily advanced
        #: by ``victim`` — the classic O(1) LFU min-pointer).
        self._min_freq = 1

    def _bucket(self, freq: int) -> _DList:
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = self._buckets[freq] = _DList(f"lfu-{freq}")
        return bucket

    def on_insert(self, block: CacheBlock) -> None:
        node = self._register(block)
        node.freq = 1
        self._min_freq = 1
        self._bucket(1).append(node)

    def on_access(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is None:
            return
        if node.owner is None:  # parked (dirty): only the frequency advances
            node.freq += 1
            return
        old = node.owner
        old.remove(node)
        if len(old) == 0:
            self._buckets.pop(node.freq, None)
        node.freq += 1
        self._bucket(node.freq).append(node)

    def on_dirty(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is None or node.owner is None:
            return
        old = node.owner
        old.remove(node)
        if len(old) == 0:
            self._buckets.pop(node.freq, None)

    def victim(self, incoming=None, peek=False) -> Optional[CacheBlock]:
        if not self._buckets:
            return None
        # Advance the min-pointer to the smallest occupied frequency.  The
        # pointer only moves up between inserts (which reset it to 1), so
        # the walk is amortised against the accesses that emptied the
        # buckets below.
        steps = 0
        min_freq = self._min_freq
        while min_freq not in self._buckets:
            min_freq += 1
            steps += 1
        if not peek:
            self._min_freq = min_freq
            self.stats.victim_scan_steps += steps
        node = self._scan(self._buckets[min_freq], peek)
        if node is not None:
            return node.block
        # Rare: every minimum-frequency block is transiently pinned/busy.
        for freq in sorted(self._buckets):
            if freq == min_freq:
                continue
            node = self._scan(self._buckets[freq], peek)
            if node is not None:
                return node.block
        return None

    def _retire(self, node: _Node, ghost: bool) -> None:
        owner = node.owner
        super()._retire(node, ghost)
        if owner is not None and len(owner) == 0:
            self._buckets.pop(node.freq, None)

    def _unpark(self, node: _Node) -> None:
        # Frequency buckets are created and dropped on demand, so the home
        # pointer is resolved by frequency rather than by list identity.
        node.home = None
        self._min_freq = min(self._min_freq, node.freq)
        self._bucket(node.freq).append(node)

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["frequency_buckets"] = len(self._buckets)
        return snap


class SlruPolicy(ReplacementPolicy):
    """Segmented LRU: a probationary and a protected segment.

    New blocks enter the probationary segment; a re-reference promotes to
    the protected segment, whose size is capped at ``protected_fraction`` of
    the cache — overflow demotes the protected LRU block back to the MRU end
    of probation.  Victims come from probation first.
    """

    name = "slru"

    def __init__(self, capacity: int, rng=None, stats=None, protected_fraction: float = 0.5):
        super().__init__(capacity, rng, stats)
        if not (0.0 < protected_fraction < 1.0):
            raise ConfigurationError("SLRU protected fraction must be in (0, 1)")
        self.protected_capacity = max(1, int(capacity * protected_fraction))
        self._probation = _DList("probationary")
        self._protected = _DList("protected")

    def on_insert(self, block: CacheBlock) -> None:
        self._probation.append(self._register(block))

    def on_access(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is None:
            return
        if node.owner is None:
            # Parked (dirty): a re-reference earns protection once cleaned.
            node.home = self._protected
            return
        if node.owner is self._protected:
            self._protected.move_to_tail(node)
            return
        self._probation.remove(node)
        self._append_protected(node)

    def _append_protected(self, node: _Node) -> None:
        self._protected.append(node)
        if len(self._protected) > self.protected_capacity:
            demoted = self._protected.pop_head()
            if demoted is not None:
                self._probation.append(demoted)

    def _unpark(self, node: _Node) -> None:
        home = node.home
        node.home = None
        if home is self._protected:
            self._append_protected(node)
        else:
            self._probation.append(node)

    def victim(self, incoming=None, peek=False) -> Optional[CacheBlock]:
        node = self._scan(self._probation, peek)
        if node is None:
            node = self._scan(self._protected, peek)
        return node.block if node else None

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["probationary"] = len(self._probation)
        snap["protected"] = len(self._protected)
        return snap


class LruKPolicy(ReplacementPolicy):
    """O(1) approximation of LRU-K (O'Neil et al.).

    Blocks with fewer than K recorded references live in a *history* list
    and are evicted first, in LRU order — exactly the classic "backward
    K-distance is infinite" rule.  Mature blocks (>= K references) live in a
    second list that is maintained in reference-recency order; this
    approximates ordering by K-th-most-recent reference without the O(log n)
    priority queue of the exact algorithm.
    """

    name = "lru-k"

    def __init__(self, capacity: int, rng=None, stats=None, k: int = 2):
        super().__init__(capacity, rng, stats)
        if k < 1:
            raise ConfigurationError("LRU-K requires k >= 1")
        self.k = k
        self._history = _DList("history")
        self._mature = _DList("mature")

    def _target(self, block: CacheBlock) -> _DList:
        return self._mature if block.access_count >= self.k else self._history

    def on_insert(self, block: CacheBlock) -> None:
        self._target(block).append(self._register(block))

    def on_access(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is None:
            return
        if node.owner is None:  # parked: re-listed by _unpark when cleaned
            return
        target = self._target(block)
        if node.owner is target:
            target.move_to_tail(node)
        else:
            node.owner.remove(node)
            target.append(node)

    def victim(self, incoming=None, peek=False) -> Optional[CacheBlock]:
        node = self._scan(self._history, peek)
        if node is None:
            node = self._scan(self._mature, peek)
        return node.block if node else None

    def _unpark(self, node: _Node) -> None:
        # The block's reference count may have crossed K while it was
        # parked, so the destination list is recomputed.
        node.home = None
        target = self._target(node.block) if node.block is not None else self._history
        target.append(node)

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["history"] = len(self._history)
        snap["mature"] = len(self._mature)
        return snap

    def __repr__(self) -> str:
        return f"LruKPolicy(capacity={self.capacity}, k={self.k})"


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK: a circular list, a sweeping hand, reference bits.

    A reference sets the block's bit; the hand sweeps the ring clearing set
    bits and evicts the first eligible block whose bit is already clear.
    Each reference adds at most one future hand step, so victim selection is
    O(1) amortised.  New blocks are inserted just behind the hand (they get
    almost a full lap before first consideration) with their bit clear.
    """

    name = "clock"

    def __init__(self, capacity: int, rng=None, stats=None):
        super().__init__(capacity, rng, stats)
        self._ring = _DList("clock")
        self._hand: Optional[_Node] = None

    def on_insert(self, block: CacheBlock) -> None:
        node = self._register(block)
        node.ref = False
        if self._hand is None:
            self._ring.append(node)
            self._hand = node
        else:
            self._ring.insert_before(node, self._hand)

    def on_access(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is not None:
            node.ref = True

    def victim(self, incoming=None, peek=False) -> Optional[CacheBlock]:
        if self._hand is None:
            return None
        if peek:
            return self._peek_victim()
        # At most two laps: the first may clear reference bits, the second
        # must then find a clear eligible block if one exists.
        limit = 2 * len(self._ring) + 1
        steps = 0
        while steps < limit:
            steps += 1
            node = self._hand
            self._hand = self._ring.next_wrapping(node)
            if not _evictable(node.block):
                continue
            if node.ref:
                node.ref = False  # second chance
                continue
            self.stats.victim_scan_steps += steps
            return node.block
        self.stats.victim_scan_steps += steps
        return None

    def _peek_victim(self) -> Optional[CacheBlock]:
        """The block a sweep would evict, without clearing any bits."""
        fallback = None
        node = self._hand
        for _ in range(len(self._ring)):
            if _evictable(node.block):
                if not node.ref:
                    return node.block
                if fallback is None:
                    fallback = node.block
            node = self._ring.next_wrapping(node)
        return fallback

    def _retire(self, node: _Node, ghost: bool) -> None:
        if node is self._hand:
            self._hand = self._ring.next_wrapping(node)
            if self._hand is node:  # it was the only node
                self._hand = None
        super()._retire(node, ghost)

    def on_dirty(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is None or node.owner is None:
            return
        if node is self._hand:
            self._hand = self._ring.next_wrapping(node)
            if self._hand is node:
                self._hand = None
        self._ring.remove(node)

    def _unpark(self, node: _Node) -> None:
        # Rejoin the ring just behind the hand (a nearly full lap before
        # first consideration), keeping any reference bit set while parked.
        node.home = None
        if self._hand is None:
            self._ring.append(node)
            self._hand = node
        else:
            self._ring.insert_before(node, self._hand)

    @property
    def hand_key(self) -> Optional[BlockId]:
        """Identity currently under the hand (exposed for tests)."""
        return self._hand.key if self._hand is not None else None

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["referenced"] = sum(1 for node in self._ring if node.ref)
        return snap


class TwoQPolicy(ReplacementPolicy):
    """Full 2Q (Johnson & Shasha, VLDB '94).

    * ``A1in`` — a FIFO of first-time blocks (default 25% of the cache);
      re-references inside A1in are deliberately ignored (correlated
      references).
    * ``A1out`` — a ghost FIFO of identities evicted from A1in (default
      sized at 50% of the cache).  A miss that hits A1out is the signal of
      real reuse: the block is admitted straight into Am.
    * ``Am`` — the main LRU list of proven-hot blocks.

    One-shot scans stream through A1in and never displace Am, which is what
    makes 2Q scan-resistant.
    """

    name = "2q"

    def __init__(
        self,
        capacity: int,
        rng=None,
        stats=None,
        in_fraction: float = 0.25,
        out_fraction: float = 0.5,
    ):
        super().__init__(capacity, rng, stats)
        if not (0.0 < in_fraction < 1.0):
            raise ConfigurationError("2Q in_fraction must be in (0, 1)")
        if out_fraction <= 0.0:
            raise ConfigurationError("2Q out_fraction must be positive")
        self.k_in = max(1, int(capacity * in_fraction))
        self.k_out = max(1, int(capacity * out_fraction))
        self._a1in = _DList("a1in")
        self._am = _DList("am")
        self._a1out = _DList("a1out")
        self._ghosts: Dict[BlockId, _Node] = {}

    def on_insert(self, block: CacheBlock) -> None:
        key = block.block_id
        node = self._register(block)
        ghost = self._ghosts.pop(key, None)
        if ghost is not None:
            self._a1out.remove(ghost)
            self.stats.ghost_hits += 1
            self._am.append(node)
        else:
            self._a1in.append(node)

    def on_access(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is None:
            return
        if node.owner is self._am:
            self._am.move_to_tail(node)
        # References inside A1in are correlated; 2Q ignores them.

    def victim(self, incoming=None, peek=False) -> Optional[CacheBlock]:
        prefer_in = len(self._a1in) > self.k_in or len(self._am) == 0
        primary, secondary = (
            (self._a1in, self._am) if prefer_in else (self._am, self._a1in)
        )
        node = self._scan(primary, peek)
        if node is None:
            node = self._scan(secondary, peek)
        return node.block if node else None

    def _retire(self, node: _Node, ghost: bool) -> None:
        from_a1in = node.segment is self._a1in
        super()._retire(node, ghost)
        if ghost and from_a1in:
            # Remember the identity in A1out; only reuse *after* A1in counts.
            ghost_node = _Node(node.key)
            self._a1out.append(ghost_node)
            self._ghosts[node.key] = ghost_node
            while len(self._a1out) > self.k_out:
                dropped = self._a1out.pop_head()
                if dropped is not None:
                    self._ghosts.pop(dropped.key, None)

    def forget_file(self, file_id: int, from_block: int = 0) -> None:
        for key in [
            k for k in self._ghosts if k.file_id == file_id and k.block_no >= from_block
        ]:
            ghost = self._ghosts.pop(key)
            self._a1out.remove(ghost)

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["a1in"] = len(self._a1in)
        snap["am"] = len(self._am)
        snap["a1out_ghosts"] = len(self._a1out)
        return snap


class ArcPolicy(ReplacementPolicy):
    """Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

    Resident blocks live in ``T1`` (seen once recently) or ``T2`` (seen at
    least twice); evicted identities are remembered in the ghost lists
    ``B1``/``B2``.  A miss that hits B1 says "T1 deserved more room" and
    grows the adaptation target ``p``; a B2 ghost hit shrinks it.  ARC
    therefore tunes itself between recency (LRU-like) and frequency
    (LFU-like) behaviour online, and one-shot scans — whose identities die
    in B1 unreferenced — cannot displace the frequent working set in T2.
    """

    name = "arc"

    def __init__(self, capacity: int, rng=None, stats=None):
        super().__init__(capacity, rng, stats)
        self._t1 = _DList("t1")
        self._t2 = _DList("t2")
        self._b1 = _DList("b1")
        self._b2 = _DList("b2")
        self._ghosts: Dict[BlockId, _Node] = {}
        #: adaptation target: desired size of T1, in blocks.
        self.p = 0.0

    # -- events ---------------------------------------------------------------

    def on_insert(self, block: CacheBlock) -> None:
        key = block.block_id
        node = self._register(block)
        ghost = self._ghosts.pop(key, None)
        if ghost is not None:
            in_b1 = ghost.owner is self._b1
            ghost.owner.remove(ghost)
            self.stats.ghost_hits += 1
            self._adapt(hit_in_b1=in_b1)
            self._t2.append(node)  # proven reuse goes straight to T2
        else:
            self._t1.append(node)
        self._trim_ghosts()

    def on_access(self, block: CacheBlock) -> None:
        node = self._node_of(block)
        if node is None:
            return
        if node.owner is None:
            # Parked (dirty): a re-reference proves reuse, so the block
            # re-enters in T2 once it is cleaned.
            node.home = self._t2
            return
        if node.owner is self._t1:
            self._t1.remove(node)
            self._t2.append(node)
        elif node.owner is self._t2:
            self._t2.move_to_tail(node)

    def victim(self, incoming=None, peek=False) -> Optional[CacheBlock]:
        incoming_in_b2 = (
            incoming is not None
            and (ghost := self._ghosts.get(incoming)) is not None
            and ghost.owner is self._b2
        )
        t1_len = len(self._t1)
        prefer_t1 = t1_len >= 1 and (
            t1_len > self.p or (incoming_in_b2 and t1_len == int(self.p))
        )
        primary, secondary = (
            (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        )
        node = self._scan(primary, peek)
        if node is None:
            node = self._scan(secondary, peek)
        return node.block if node else None

    def _retire(self, node: _Node, ghost: bool) -> None:
        from_t1 = node.segment is self._t1
        super()._retire(node, ghost)
        if not ghost:
            return
        ghost_node = _Node(node.key)
        if from_t1:
            self._b1.append(ghost_node)
        else:
            self._b2.append(ghost_node)
        self._ghosts[node.key] = ghost_node
        self._trim_ghosts()

    # -- ARC internals --------------------------------------------------------

    def _adapt(self, hit_in_b1: bool) -> None:
        """Move the target ``p`` toward the list that proved too small."""
        b1, b2 = len(self._b1), len(self._b2)
        if hit_in_b1:
            delta = 1.0 if b1 >= b2 else b2 / max(b1, 1)
            self.p = min(float(self.capacity), self.p + delta)
        else:
            delta = 1.0 if b2 >= b1 else b1 / max(b2, 1)
            self.p = max(0.0, self.p - delta)
        self.stats.policy_adaptations += 1

    def _trim_ghosts(self) -> None:
        """Enforce |T1|+|B1| <= c and |T1|+|T2|+|B1|+|B2| <= 2c."""
        while self._b1 and len(self._t1) + len(self._b1) > self.capacity:
            self._drop_ghost(self._b1)
        total = len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
        while total > 2 * self.capacity and (self._b1 or self._b2):
            self._drop_ghost(self._b2 if self._b2 else self._b1)
            total -= 1

    def _drop_ghost(self, dlist: _DList) -> None:
        dropped = dlist.pop_head()
        if dropped is not None:
            self._ghosts.pop(dropped.key, None)

    # -- introspection --------------------------------------------------------

    def forget_file(self, file_id: int, from_block: int = 0) -> None:
        for key in [
            k for k in self._ghosts if k.file_id == file_id and k.block_no >= from_block
        ]:
            ghost = self._ghosts.pop(key)
            ghost.owner.remove(ghost)

    def ghost_lists(self) -> tuple[list[BlockId], list[BlockId]]:
        """(B1, B2) identities, eviction end first (exposed for tests)."""
        return [n.key for n in self._b1], [n.key for n in self._b2]

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap.update(
            t1=len(self._t1),
            t2=len(self._t2),
            b1_ghosts=len(self._b1),
            b2_ghosts=len(self._b2),
            target_t1=round(self.p, 3),
        )
        return snap


#: every recognised policy name, in the order reports show them.
POLICY_NAMES = ("lru", "random", "lfu", "slru", "lru-k", "clock", "2q", "arc")


# "replacement" factories take (capacity, rng=None, stats=None) plus any of
# the CacheConfig policy knobs they care about, by name; the factory below
# only forwards the knobs a factory's signature declares, so a plain policy
# class (capacity, rng, stats) registers directly without adapter noise.
for _cls in (LruPolicy, RandomPolicy, LfuPolicy, ClockPolicy, ArcPolicy):
    registry.register("replacement", _cls.name, _cls)
registry.register(
    "replacement",
    "slru",
    lambda capacity, rng=None, stats=None, slru_fraction=0.5: SlruPolicy(
        capacity, rng, stats, protected_fraction=slru_fraction
    ),
)
registry.register(
    "replacement",
    "lru-k",
    lambda capacity, rng=None, stats=None, k=2: LruKPolicy(capacity, rng, stats, k=k),
)
registry.register(
    "replacement",
    "2q",
    lambda capacity, rng=None, stats=None, twoq_in_fraction=0.25,
    twoq_out_fraction=0.5: TwoQPolicy(
        capacity, rng, stats, in_fraction=twoq_in_fraction, out_fraction=twoq_out_fraction
    ),
)


def _accepted_kwargs(factory, kwargs: dict) -> dict:
    """The subset of ``kwargs`` that ``factory``'s signature accepts (all
    of them when it declares ``**kwargs``)."""
    import inspect

    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return kwargs
    if any(p.kind is p.VAR_KEYWORD for p in parameters.values()):
        return kwargs
    return {key: value for key, value in kwargs.items() if key in parameters}


def make_replacement_policy(
    name: str,
    capacity: int,
    *,
    rng: Optional[random.Random] = None,
    stats: Optional[object] = None,
    slru_fraction: float = 0.5,
    k: int = 2,
    twoq_in_fraction: float = 0.25,
    twoq_out_fraction: float = 0.5,
) -> ReplacementPolicy:
    """Factory used by :class:`repro.core.cache.BlockCache` from configuration.

    Thin wrapper over ``registry.create("replacement", ...)``: every policy
    knob is offered as a keyword, but only the ones a factory's signature
    declares are actually passed, so a third-party policy class registered
    directly (``registry.register("replacement", "mru", MruPolicy)``) is
    constructible from a :class:`~repro.config.CacheConfig` too.
    """
    factory = registry.get("replacement", name)
    kwargs = _accepted_kwargs(
        factory,
        {
            "rng": rng,
            "stats": stats,
            "slru_fraction": slru_fraction,
            "k": k,
            "twoq_in_fraction": twoq_in_fraction,
            "twoq_out_fraction": twoq_out_fraction,
        },
    )
    return registry.create("replacement", name, capacity, **kwargs)
