"""Higher-level synchronisation primitives built on scheduler events.

The scheduler itself only knows about events (block / signal).  The
components in the framework need a few richer primitives:

* :class:`Semaphore` / :class:`Mutex` — mutual exclusion (e.g. serialising
  access to the partial LFS segment buffer).
* :class:`Resource` — a counted resource with a FIFO wait queue and queue
  length statistics; the SCSI bus and NVRAM drain logic are built on it.
* :class:`Channel` — an unbounded producer/consumer message queue; simulated
  disks wait on a channel for work to arrive, and the in-process NFS
  transport is a pair of channels.

All ``acquire``/``get``-style operations are generator helpers used with
``yield from`` inside scheduler threads.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.core.scheduler import Event, Scheduler
from repro.errors import SchedulerError

__all__ = ["Event", "Semaphore", "Mutex", "Resource", "Channel"]


class Semaphore:
    """A counting semaphore with FIFO wake-up order."""

    def __init__(self, scheduler: Scheduler, value: int = 1, name: str = "semaphore"):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.scheduler = scheduler
        self.name = name
        self._wait_name = f"{name}-wait"
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator[Any, Any, None]:
        """``yield from sem.acquire()``: block until a unit is available."""
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return
        gate = self.scheduler.new_event(self._wait_name)
        self._waiters.append(gate)
        yield from gate.wait()

    def release(self) -> None:
        """Release one unit, waking the longest-waiting acquirer if any."""
        if self._waiters:
            gate = self._waiters.popleft()
            gate.signal()
        else:
            self._value += 1

    def __repr__(self) -> str:
        return f"Semaphore({self.name!r}, value={self._value}, waiting={len(self._waiters)})"


class Mutex(Semaphore):
    """A binary semaphore."""

    def __init__(self, scheduler: Scheduler, name: str = "mutex"):
        super().__init__(scheduler, value=1, name=name)

    def locked(self) -> bool:
        return self._value == 0


class Resource:
    """A shared resource with ``capacity`` concurrent users and a FIFO queue.

    This models contention points such as the SCSI-2 bus ("if the connection
    is already in use, the disk driver waits until the connection is released
    again").  The resource keeps running aggregates of the queue lengths seen
    by arrivals so statistics plug-ins can report on contention.
    """

    def __init__(self, scheduler: Scheduler, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("resource capacity must be >= 1")
        self.scheduler = scheduler
        self.capacity = capacity
        self.name = name
        self._wait_name = f"{name}-wait"
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self.queue_length_sum = 0
        self.max_queue_length = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator[Any, Any, None]:
        """``yield from resource.acquire()``: wait for a free slot."""
        queued = len(self._waiters)
        self.queue_length_sum += queued
        if queued > self.max_queue_length:
            self.max_queue_length = queued
        if self._in_use < self.capacity and not queued:
            # Uncontended: no yield happens, so no simulated time can pass
            # and the wait contribution is exactly zero.
            self._in_use += 1
            self.total_acquisitions += 1
            return
        arrived = self.scheduler.now
        gate = self.scheduler.new_event(self._wait_name)
        self._waiters.append(gate)
        yield from gate.wait()
        self._in_use += 1
        self.total_acquisitions += 1
        self.total_wait_time += self.scheduler.now - arrived

    def release(self) -> None:
        if self._in_use <= 0:
            raise SchedulerError(f"release of resource {self.name!r} that is not held")
        self._in_use -= 1
        if self._waiters and self._in_use < self.capacity:
            gate = self._waiters.popleft()
            gate.signal()

    def use(self, duration: float) -> Generator[Any, Any, None]:
        """Acquire, hold for ``duration`` of scheduler time, release."""
        yield from self.acquire()
        try:
            yield from self.scheduler.sleep(duration)
        finally:
            self.release()

    @property
    def mean_wait_time(self) -> float:
        if self.total_acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.total_acquisitions

    @property
    def mean_queue_length(self) -> float:
        if self.total_acquisitions == 0:
            return 0.0
        return self.queue_length_sum / self.total_acquisitions

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, capacity={self.capacity}, "
            f"in_use={self._in_use}, queued={len(self._waiters)})"
        )


class Channel:
    """An unbounded FIFO message queue between threads.

    ``put`` never blocks; ``get`` blocks until a message is available.
    Used by simulated disks (the controller thread waits for I/O requests)
    and by the loop-back NFS transport.
    """

    def __init__(self, scheduler: Scheduler, name: str = "channel"):
        self.scheduler = scheduler
        self.name = name
        self._get_name = f"{name}-get"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_puts = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    def put(self, item: Any) -> None:
        self._items.append(item)
        self.total_puts += 1
        depth = len(self._items)
        if depth > self.max_depth:
            self.max_depth = depth
        if self._getters:
            gate = self._getters.popleft()
            gate.signal()

    def get(self) -> Generator[Any, Any, Any]:
        """``item = yield from channel.get()``."""
        while not self._items:
            gate = self.scheduler.new_event(self._get_name)
            self._getters.append(gate)
            yield from gate.wait()
        return self._items.popleft()

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns ``None`` when the channel is empty."""
        if self._items:
            return self._items.popleft()
        return None

    def __repr__(self) -> str:
        return f"Channel({self.name!r}, depth={len(self._items)})"
