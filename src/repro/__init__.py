"""Cut-and-Paste File-Systems — a Python reproduction.

This package reproduces "Cut-and-Paste file-systems: integrating simulators
and file-systems" (Bosch & Mullender, USENIX 1996): a component library from
which both an on-line file system (PFS) and a trace-driven off-line
simulator (Patsy) are instantiated from the *same* code.

Quick start::

    from repro import PegasusFileSystem
    pfs = PegasusFileSystem()
    pfs.format()
    pfs.mkdir("/home")
    pfs.write_file("/home/hello.txt", b"hello, cut-and-paste world")
    print(pfs.read_file("/home/hello.txt"))

    from repro import run_policy_comparison
    results = run_policy_comparison("1a")           # Figure 2 data
    for policy, result in results.items():
        print(policy, result.mean_latency)
"""

from repro.assembly import (
    ClusterBinding,
    OnlineBinding,
    SimulatedBinding,
    StackSpec,
    StorageStack,
    build_stack,
    registry,
    spec_diff,
)
from repro.config import (
    ArrayConfig,
    CacheConfig,
    ClusterConfig,
    FlushConfig,
    HostConfig,
    LayoutConfig,
    SimulationConfig,
    cluster_config,
    small_test_config,
    sprite_server_config,
    sun4_280_config,
)
from repro.patsy.experiments import (
    EXPERIMENT_POLICIES,
    DelayedWriteExperiment,
    mean_latency_table,
    run_delayed_write_experiment,
    run_policy_comparison,
)
from repro.patsy.simulator import PatsySimulator, SimulationResult
from repro.patsy.synthetic import SPRITE_TRACE_NAMES, sprite_like_trace
from repro.patsy.traces import TraceRecord, load_trace, save_trace
from repro.patsy.workload import SyntheticWorkloadGenerator, WorkloadProfile
from repro.pfs.filesystem import PegasusFileSystem
from repro.pfs.nfs import NfsLoopbackClient, NfsServer

__version__ = "1.0.0"

__all__ = [
    "ClusterBinding",
    "OnlineBinding",
    "SimulatedBinding",
    "StackSpec",
    "StorageStack",
    "build_stack",
    "registry",
    "spec_diff",
    "ArrayConfig",
    "CacheConfig",
    "FlushConfig",
    "ClusterConfig",
    "HostConfig",
    "LayoutConfig",
    "SimulationConfig",
    "cluster_config",
    "small_test_config",
    "sprite_server_config",
    "sun4_280_config",
    "EXPERIMENT_POLICIES",
    "DelayedWriteExperiment",
    "mean_latency_table",
    "run_delayed_write_experiment",
    "run_policy_comparison",
    "PatsySimulator",
    "SimulationResult",
    "SPRITE_TRACE_NAMES",
    "sprite_like_trace",
    "TraceRecord",
    "load_trace",
    "save_trace",
    "SyntheticWorkloadGenerator",
    "WorkloadProfile",
    "PegasusFileSystem",
    "NfsLoopbackClient",
    "NfsServer",
    "__version__",
]
