"""The component registry: one ``register``/``create`` API for every policy.

The paper organises the framework as a taxonomy of *base*, *derived* and
*helper* components, each replaceable at start-up ("the log-cleaner can be
replaced and is plugged into the LFS component when the system starts up").
Before this module existed, every pluggable family had its own ad-hoc
factory function (``make_flush_policy``, ``make_io_scheduler``,
``make_placement_policy``, ``make_cleaner``, ``make_replacement_policy``)
and adding a policy meant editing the module that owned the ``if``-chain.

The registry replaces those chains with a single two-level namespace of
named factories, keyed first by component *kind* and then by policy *name*.
Built-in policies self-register when their module is imported; third-party
code registers the same way, without touching any core module::

    from repro.assembly import registry

    class EagerFlushPolicy(FlushPolicy):
        name = "eager"
        ...

    registry.register("flush", "eager", EagerFlushPolicy)
    FlushConfig(policy="eager")          # now a valid configuration

The legacy ``make_*`` functions survive as thin wrappers over
:meth:`ComponentRegistry.create`, so existing call sites (and the paper's
vocabulary of "the factory for X") keep working.

This module deliberately has no dependencies beyond ``repro.errors``: every
core module imports it to self-register, so it must sit below all of them
in the import graph.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import ConfigurationError

__all__ = ["ComponentRegistry", "registry"]

#: the component kinds the built-in modules populate; purely documentary —
#: registering a brand-new kind is allowed and creates the namespace.
KNOWN_KINDS = (
    "replacement",  # cache replacement policies        (core.replacement)
    "flush",        # delayed-write / persistency       (core.flush)
    "iosched",      # disk-queue scheduling             (core.iosched)
    "layout",       # storage layouts (LFS / FFS)       (core.storage.lfs/ffs)
    "placement",    # array file/block placement        (core.storage.array)
    "cleaner",      # LFS segment cleaners              (core.storage.cleaner)
    "wal",          # metadata write-ahead logs         (core.metadata.wal)
    "manifest",     # metadata manifest stores          (core.metadata.manifest)
)


class ComponentRegistry:
    """Named, pluggable component factories, keyed by (kind, name).

    A *factory* is any callable returning a component instance; its
    signature is whatever the kind's call sites pass (documented per kind
    in the module that owns the built-ins).  ``create`` forwards all
    positional and keyword arguments verbatim.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Dict[str, Callable[..., Any]]] = {}

    def register(
        self,
        kind: str,
        name: str,
        factory: Callable[..., Any],
        replace: bool = False,
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``(kind, name)``.

        Re-registering an existing name raises unless ``replace=True`` —
        silently shadowing a built-in is almost always an accident.
        Returns the factory so the call can be used as a decorator.
        """
        if not callable(factory):
            raise ConfigurationError(f"factory for {kind}/{name} must be callable")
        family = self._factories.setdefault(kind, {})
        if name in family and not replace:
            raise ConfigurationError(
                f"{kind} component {name!r} is already registered "
                f"(pass replace=True to shadow it)"
            )
        family[name] = factory
        return factory

    def unregister(self, kind: str, name: str) -> None:
        """Remove a registration (mostly for tests un-shadowing built-ins)."""
        family = self._factories.get(kind, {})
        if name not in family:
            raise ConfigurationError(f"no {kind} component named {name!r}")
        del family[name]

    def get(self, kind: str, name: str) -> Callable[..., Any]:
        """The factory registered under ``(kind, name)``."""
        factory = self._factories.get(kind, {}).get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown {kind} component {name!r}; "
                f"registered: {self.names(kind) or 'none'}"
            )
        return factory

    def create(self, kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component registered under ``(kind, name)``."""
        return self.get(kind, name)(*args, **kwargs)

    def has(self, kind: str, name: str) -> bool:
        return name in self._factories.get(kind, {})

    def names(self, kind: str) -> List[str]:
        """Registered component names for one kind, sorted."""
        return sorted(self._factories.get(kind, {}))

    def kinds(self) -> List[str]:
        """Component kinds with at least one registration, sorted."""
        return sorted(kind for kind, family in self._factories.items() if family)

    def __repr__(self) -> str:
        families = ", ".join(
            f"{kind}={len(self._factories[kind])}" for kind in self.kinds()
        )
        return f"ComponentRegistry({families})"


#: the process-wide registry all built-in modules populate.
registry = ComponentRegistry()
