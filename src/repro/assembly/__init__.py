"""The assembly layer: one declarative way to build a storage stack.

The paper's thesis is that the simulator and the file system are the *same
components* under different helper bindings — "the difference between a
simulated cache and a real cache is the lack of a data pointer."  This
package is where that thesis lives in code:

* :mod:`repro.assembly.registry` — named, pluggable factories for every
  policy family (replacement, flush, I/O scheduling, layout, placement,
  cleaner), populated by the built-in modules and open to third parties.
* :mod:`repro.assembly.spec` — :class:`StackSpec`, a frozen, serialisable
  description of a full storage stack (cache + shards, flush + governor,
  layouts, array/placement, cleaner) independent of which world runs it.
* :mod:`repro.assembly.bindings` — the helper-component bundles that *do*
  pick a world: :class:`SimulatedBinding` (simulated disks and buses, no
  data buffers) and :class:`OnlineBinding` (memory- or file-backed drivers
  moving real bytes).
* :mod:`repro.assembly.builder` — :func:`build_stack`, which assembles a
  :class:`StorageStack` from a spec and a binding.  Both
  :class:`~repro.patsy.simulator.PatsySimulator` and
  :class:`~repro.pfs.filesystem.PegasusFileSystem` are thin consumers of
  this one builder.

Everything except the registry is imported lazily (PEP 562): core modules
import ``repro.assembly.registry`` at import time to self-register their
built-in policies, so this ``__init__`` must not import anything that
imports those modules back.
"""

from __future__ import annotations

from repro.assembly.registry import ComponentRegistry, registry

__all__ = [
    "ComponentRegistry",
    "registry",
    "StackSpec",
    "spec_diff",
    "Binding",
    "SimulatedBinding",
    "OnlineBinding",
    "ClusterBinding",
    "StorageStack",
    "build_stack",
]

_LAZY = {
    "StackSpec": "repro.assembly.spec",
    "spec_diff": "repro.assembly.spec",
    "Binding": "repro.assembly.bindings",
    "SimulatedBinding": "repro.assembly.bindings",
    "OnlineBinding": "repro.assembly.bindings",
    "ClusterBinding": "repro.assembly.bindings",
    "StorageStack": "repro.assembly.builder",
    "build_stack": "repro.assembly.builder",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
