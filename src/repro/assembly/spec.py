"""``StackSpec``: a world-independent description of a full storage stack.

A spec says *what* the stack is — cache geometry and replacement policy,
flush policy and governor marks, storage layout(s), array shape and
placement, cleaner policy — without saying *where* it runs.  The same spec
builds the off-line simulator (PATSY) under a
:class:`~repro.assembly.bindings.SimulatedBinding` and the on-line file
system (PFS) under an :class:`~repro.assembly.bindings.OnlineBinding`;
that is the paper's cut-and-paste claim made into an object.

Specs are frozen (hashable, safe to share between runs) and serialise to
plain dicts, so an experiment manifest can carry the exact stack it ran —
``StackSpec.from_dict(json.load(f))`` rebuilds it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional

from repro.config import (
    ArrayConfig,
    CacheConfig,
    ClusterConfig,
    FlushConfig,
    HostConfig,
    LayoutConfig,
    SimulationConfig,
)
from repro.errors import ConfigurationError

__all__ = ["StackSpec", "spec_diff"]

#: sub-config dataclass per StackSpec field, for (de)serialisation.
_SECTION_TYPES = {
    "cache": CacheConfig,
    "flush": FlushConfig,
    "layout": LayoutConfig,
    "host": HostConfig,
    "array": ArrayConfig,
    "cluster": ClusterConfig,
}


@dataclass(frozen=True)
class StackSpec:
    """Declarative description of one storage stack.

    The fields mirror :class:`~repro.config.SimulationConfig`'s sub-configs
    — they *are* those dataclasses, so every knob documented there applies
    unchanged.  ``host`` describes the hardware complement: the simulated
    binding builds exactly that machine (disk model, buses, I/O scheduler);
    the on-line binding keeps the disk/volume counts and the I/O scheduler
    and ignores the performance model underneath.
    """

    cache: CacheConfig = field(default_factory=CacheConfig)
    flush: FlushConfig = field(default_factory=FlushConfig)
    layout: LayoutConfig = field(default_factory=LayoutConfig)
    host: HostConfig = field(default_factory=HostConfig)
    #: multi-volume storage array; None = the classic single-volume stack.
    array: Optional[ArrayConfig] = None
    #: multi-machine cluster tier; None (or one node) = a single machine.
    cluster: Optional[ClusterConfig] = None
    #: seed for the scheduler and any synthesised parameters.
    seed: int = 0

    # ------------------------------------------------------------------ derived shape

    @property
    def num_nodes(self) -> int:
        return self.cluster.nodes if self.cluster is not None else 1

    @property
    def volumes_per_node(self) -> int:
        """One node's volume complement (the per-node array shape)."""
        return self.array.volumes if self.array is not None else 1

    @property
    def effective_array(self) -> ArrayConfig:
        """The per-node array shape, synthesised from the host when no
        ``array`` section is configured (a single-volume node over the
        host's disks, with every array knob at its dataclass default).
        The one source of truth for placement/shard/governor defaults on
        cluster stacks built without an explicit array."""
        if self.array is not None:
            return self.array
        return ArrayConfig(
            volumes=1,
            buses=self.host.num_buses,
            disks_per_bus=-(-self.host.num_disks // self.host.num_buses),
            num_disks=self.host.num_disks,
        )

    @property
    def num_volumes(self) -> int:
        return self.num_nodes * self.volumes_per_node

    @property
    def disks_per_node(self) -> int:
        """One node's disk complement."""
        return self.array.total_disks if self.array is not None else self.host.num_disks

    @property
    def num_disks(self) -> int:
        """Total disk complement over every node of the cluster."""
        return self.num_nodes * self.disks_per_node

    @property
    def buses_per_node(self) -> int:
        return self.array.buses if self.array is not None else self.host.num_buses

    @property
    def num_buses(self) -> int:
        """Total bus complement (each node carries its own buses)."""
        return self.num_nodes * self.buses_per_node

    def node_of_volume(self, volume_index: int) -> int:
        """Cluster node one volume belongs to (volumes never span nodes)."""
        return volume_index // self.volumes_per_node

    def node_of_disk(self, disk_index: int) -> int:
        """Cluster node one disk belongs to (disks never span nodes)."""
        return disk_index // self.disks_per_node

    def bus_for_disk(self, disk_index: int) -> int:
        """Global bus index of one disk (buses never span nodes)."""
        owner = self.array if self.array is not None else self.host
        node, local = divmod(disk_index, self.disks_per_node)
        return node * self.buses_per_node + owner.bus_for_disk(local)

    def disks_of_volume(self, volume_index: int) -> range:
        """Global disk indices of one volume (a node-local contiguous run)."""
        if not (0 <= volume_index < self.num_volumes):
            raise ConfigurationError(
                f"no volume {volume_index} in a {self.num_volumes}-volume stack"
            )
        node, local = divmod(volume_index, self.volumes_per_node)
        offset = node * self.disks_per_node
        if self.array is not None:
            local_range = self.array.disks_of_volume(local)
        else:
            local_range = range(self.disks_per_node)
        return range(offset + local_range.start, offset + local_range.stop)

    # ------------------------------------------------------------------ conversions

    @classmethod
    def from_config(cls, config: SimulationConfig) -> "StackSpec":
        """The stack described by a full simulation configuration."""
        return cls(
            cache=config.cache,
            flush=config.flush,
            layout=config.layout,
            host=config.host,
            array=config.array,
            cluster=config.cluster,
            seed=config.seed,
        )

    def to_config(self, **overrides: Any) -> SimulationConfig:
        """A :class:`~repro.config.SimulationConfig` running this stack.

        ``overrides`` forwards any of the run-scoped knobs the spec does
        not carry (``report_interval``, ``max_simulated_time``,
        ``streaming``).
        """
        return SimulationConfig(
            cache=self.cache,
            flush=self.flush,
            layout=self.layout,
            host=self.host,
            array=self.array,
            cluster=self.cluster,
            seed=self.seed,
            **overrides,
        )

    def with_array(self, array: Optional[ArrayConfig]) -> "StackSpec":
        """A copy of this spec on a different array shape (None removes it)."""
        return replace(self, array=array)

    def with_cluster(self, cluster: Optional[ClusterConfig]) -> "StackSpec":
        """A copy of this spec on a different cluster shape (None removes it)."""
        return replace(self, cluster=cluster)

    # ------------------------------------------------------------------ serialisation

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form (JSON-safe) for experiment manifests."""
        data: Dict[str, Any] = {}
        for name, section_type in _SECTION_TYPES.items():
            value = getattr(self, name)
            data[name] = None if value is None else asdict(value)
        data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StackSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Missing sections take their defaults; unknown keys (inside a
        section or at the top level) are rejected so a typo in a manifest
        fails loudly instead of silently running the default stack.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown StackSpec keys: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for name, section_type in _SECTION_TYPES.items():
            if name not in data:
                continue
            section = data[name]
            if section is None:
                kwargs[name] = None
                continue
            if not isinstance(section, dict):
                raise ConfigurationError(f"StackSpec section {name!r} must be a dict")
            valid = {f.name for f in fields(section_type)}
            bad = set(section) - valid
            if bad:
                raise ConfigurationError(
                    f"unknown keys in StackSpec section {name!r}: {sorted(bad)}"
                )
            kwargs[name] = section_type(**section)
        if "seed" in data:
            kwargs["seed"] = int(data["seed"])
        return cls(**kwargs)


def spec_diff(a: StackSpec, b: StackSpec) -> Dict[str, Any]:
    """The fields on which two specs differ, as a nested dict.

    Returns ``{section: {field: (a_value, b_value)}}`` for every differing
    sub-config field, ``{section: (a_section_or_None, b_section_or_None)}``
    when a whole section is present on one side only, and
    ``{"seed": (a, b)}`` for the top-level seed.  An empty dict means the
    specs describe the same stack.  Experiments use this to print manifest
    deltas — the exact knobs that separate two runs — instead of two full
    specs.
    """
    diff: Dict[str, Any] = {}
    for name in _SECTION_TYPES:
        section_a = getattr(a, name)
        section_b = getattr(b, name)
        if section_a == section_b:
            continue
        if section_a is None or section_b is None:
            diff[name] = (
                None if section_a is None else asdict(section_a),
                None if section_b is None else asdict(section_b),
            )
            continue
        fields_diff = {
            f.name: (getattr(section_a, f.name), getattr(section_b, f.name))
            for f in fields(section_a)
            if getattr(section_a, f.name) != getattr(section_b, f.name)
        }
        if fields_diff:
            diff[name] = fields_diff
    if a.seed != b.seed:
        diff["seed"] = (a.seed, b.seed)
    return diff
