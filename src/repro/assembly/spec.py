"""``StackSpec``: a world-independent description of a full storage stack.

A spec says *what* the stack is — cache geometry and replacement policy,
flush policy and governor marks, storage layout(s), array shape and
placement, cleaner policy — without saying *where* it runs.  The same spec
builds the off-line simulator (PATSY) under a
:class:`~repro.assembly.bindings.SimulatedBinding` and the on-line file
system (PFS) under an :class:`~repro.assembly.bindings.OnlineBinding`;
that is the paper's cut-and-paste claim made into an object.

Specs are frozen (hashable, safe to share between runs) and serialise to
plain dicts, so an experiment manifest can carry the exact stack it ran —
``StackSpec.from_dict(json.load(f))`` rebuilds it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional

from repro.config import (
    ArrayConfig,
    CacheConfig,
    FlushConfig,
    HostConfig,
    LayoutConfig,
    SimulationConfig,
)
from repro.errors import ConfigurationError

__all__ = ["StackSpec"]

#: sub-config dataclass per StackSpec field, for (de)serialisation.
_SECTION_TYPES = {
    "cache": CacheConfig,
    "flush": FlushConfig,
    "layout": LayoutConfig,
    "host": HostConfig,
    "array": ArrayConfig,
}


@dataclass(frozen=True)
class StackSpec:
    """Declarative description of one storage stack.

    The fields mirror :class:`~repro.config.SimulationConfig`'s sub-configs
    — they *are* those dataclasses, so every knob documented there applies
    unchanged.  ``host`` describes the hardware complement: the simulated
    binding builds exactly that machine (disk model, buses, I/O scheduler);
    the on-line binding keeps the disk/volume counts and the I/O scheduler
    and ignores the performance model underneath.
    """

    cache: CacheConfig = field(default_factory=CacheConfig)
    flush: FlushConfig = field(default_factory=FlushConfig)
    layout: LayoutConfig = field(default_factory=LayoutConfig)
    host: HostConfig = field(default_factory=HostConfig)
    #: multi-volume storage array; None = the classic single-volume stack.
    array: Optional[ArrayConfig] = None
    #: seed for the scheduler and any synthesised parameters.
    seed: int = 0

    # ------------------------------------------------------------------ derived shape

    @property
    def num_volumes(self) -> int:
        return self.array.volumes if self.array is not None else 1

    @property
    def num_disks(self) -> int:
        """Total disk complement (the array owns it when present)."""
        return self.array.total_disks if self.array is not None else self.host.num_disks

    @property
    def num_buses(self) -> int:
        return self.array.buses if self.array is not None else self.host.num_buses

    def bus_for_disk(self, disk_index: int) -> int:
        owner = self.array if self.array is not None else self.host
        return owner.bus_for_disk(disk_index)

    def disks_of_volume(self, volume_index: int) -> range:
        """Global disk indices of one volume (all disks for a non-array)."""
        if self.array is not None:
            return self.array.disks_of_volume(volume_index)
        if volume_index != 0:
            raise ConfigurationError("a single-volume stack only has volume 0")
        return range(self.num_disks)

    # ------------------------------------------------------------------ conversions

    @classmethod
    def from_config(cls, config: SimulationConfig) -> "StackSpec":
        """The stack described by a full simulation configuration."""
        return cls(
            cache=config.cache,
            flush=config.flush,
            layout=config.layout,
            host=config.host,
            array=config.array,
            seed=config.seed,
        )

    def to_config(self, **overrides: Any) -> SimulationConfig:
        """A :class:`~repro.config.SimulationConfig` running this stack.

        ``overrides`` forwards any of the run-scoped knobs the spec does
        not carry (``report_interval``, ``max_simulated_time``,
        ``streaming``).
        """
        return SimulationConfig(
            cache=self.cache,
            flush=self.flush,
            layout=self.layout,
            host=self.host,
            array=self.array,
            seed=self.seed,
            **overrides,
        )

    def with_array(self, array: Optional[ArrayConfig]) -> "StackSpec":
        """A copy of this spec on a different array shape (None removes it)."""
        return replace(self, array=array)

    # ------------------------------------------------------------------ serialisation

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form (JSON-safe) for experiment manifests."""
        data: Dict[str, Any] = {}
        for name, section_type in _SECTION_TYPES.items():
            value = getattr(self, name)
            data[name] = None if value is None else asdict(value)
        data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StackSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Missing sections take their defaults; unknown keys (inside a
        section or at the top level) are rejected so a typo in a manifest
        fails loudly instead of silently running the default stack.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown StackSpec keys: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for name, section_type in _SECTION_TYPES.items():
            if name not in data:
                continue
            section = data[name]
            if section is None:
                kwargs[name] = None
                continue
            if not isinstance(section, dict):
                raise ConfigurationError(f"StackSpec section {name!r} must be a dict")
            valid = {f.name for f in fields(section_type)}
            bad = set(section) - valid
            if bad:
                raise ConfigurationError(
                    f"unknown keys in StackSpec section {name!r}: {sorted(bad)}"
                )
            kwargs[name] = section_type(**section)
        if "seed" in data:
            kwargs["seed"] = int(data["seed"])
        return cls(**kwargs)
