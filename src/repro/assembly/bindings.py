"""Bindings: the helper-component bundles that pick a world for a stack.

In the paper's taxonomy, *helper components* are the pieces the portable
algorithms rest on — the clock, the disk drivers, the data movers.  A
binding packages one consistent choice of helpers:

* :class:`SimulatedBinding` — PATSY's world: a virtual clock, simulated
  SCSI buses and HP 97560-style disks built from the spec's
  :class:`~repro.config.HostConfig`, cache blocks with **no data
  pointers** ("the difference between a simulated cache and a real cache
  is the lack of a data pointer"), and a data mover that only *charges
  time* for copies it never performs.
* :class:`OnlineBinding` — PFS's world: memory- or file-backed drivers
  that move real bytes, cache blocks with real buffers, a data mover that
  really copies, and a virtual clock by default (the same code runs, but
  tests finish instantly) or the wall clock on request.

:func:`~repro.assembly.builder.build_stack` asks the binding for the
scheduler, the drivers and the data mover; everything above the drivers is
assembled identically for both worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.assembly.spec import StackSpec
from repro.core.clock import RealClock, VirtualClock
from repro.core.datamover import DataMover
from repro.core.iosched import make_io_scheduler
from repro.core.scheduler import NodeMergeSchedulingPolicy, Scheduler, ShardedScheduler
from repro.units import MB

__all__ = ["Hardware", "Binding", "SimulatedBinding", "OnlineBinding", "ClusterBinding"]


@dataclass
class Hardware:
    """What a binding builds below the volume layer.

    ``drivers`` always has one entry per disk of the spec's complement;
    ``buses`` and ``disks`` are populated only by the simulated world
    (an on-line machine's buses are not modelled).  ``nics`` holds one
    network interface per cluster node — empty for single-machine stacks,
    where no network exists at all.
    """

    drivers: List[Any]
    buses: List[Any] = field(default_factory=list)
    disks: List[Any] = field(default_factory=list)
    nics: List[Any] = field(default_factory=list)


class Binding:
    """Base class for helper-component bundles.

    ``simulated`` selects the world: it flows into the layouts (which
    synthesise block contents instead of reading them) and, negated, into
    the cache's ``with_data``.
    """

    simulated: bool = True
    #: whether the client interface materialises files named by a trace
    #: on first touch (trace replay) or insists they really exist (PFS).
    auto_materialize: bool = True

    @property
    def with_data(self) -> bool:
        return not self.simulated

    def make_scheduler(self, seed: int, cluster: Optional[Any] = None) -> Scheduler:
        raise NotImplementedError

    def _cluster_scheduler(self, clock: Any, seed: int, cluster: Optional[Any]) -> Scheduler:
        """The shared scheduler-selection rule.

        Multi-node stacks run under the deterministic node-merge order so the
        interleaving is a pure function of the workload (the premise of the
        sharded and parallel executors); ``cluster.sharded_loop`` picks the
        per-node sub-queue implementation of that same order.  Single-machine
        stacks keep the paper's seeded random policy, byte-for-byte.
        """
        if cluster is None or cluster.nodes <= 1:
            return Scheduler(clock=clock, seed=seed)
        if cluster.sharded_loop:
            return ShardedScheduler(clock=clock, seed=seed, nodes=cluster.nodes)
        return Scheduler(clock=clock, seed=seed, policy=NodeMergeSchedulingPolicy())

    def build_hardware(self, spec: StackSpec, scheduler: Scheduler) -> Hardware:
        raise NotImplementedError

    def make_datamover(self, spec: StackSpec) -> DataMover:
        raise NotImplementedError

    def build_network(self, spec: StackSpec, scheduler: Scheduler) -> List[Any]:
        """One NIC per cluster node, from the spec's cluster section.

        Both worlds share this default: the NIC only charges (virtual or
        real) scheduler time, exactly like the data mover.  A one-node
        cluster — or no cluster at all — builds nothing, which is what
        keeps the single-machine assembly untouched by the cluster tier.
        """
        cluster = spec.cluster
        if cluster is None or cluster.nodes <= 1:
            return []
        from repro.core.cluster.network import Nic

        return [
            Nic(
                scheduler,
                name=f"nic{node}",
                bandwidth=cluster.network_bandwidth,
                latency=cluster.network_latency,
                overhead=cluster.nic_overhead,
            )
            for node in range(cluster.nodes)
        ]

    def make_metadata_device(self, spec: StackSpec, scheduler: Scheduler) -> Any:
        """The device the durable metadata tier (WAL + manifest) lives on.

        Only consulted when ``spec.cluster.metadata`` is enabled; each
        binding picks its world's back-end.
        """
        raise NotImplementedError


class SimulatedBinding(Binding):
    """PATSY's helpers: virtual time, simulated buses/disks, no data.

    ``metadata_store`` optionally carries a
    :class:`~repro.core.metadata.device.DurableStore` between stack builds —
    the crash-recovery harness's "journal disk that survives the reboot".
    The store actually used is published back on the binding after
    :meth:`make_metadata_device` runs.
    """

    simulated = True
    auto_materialize = True

    def __init__(self, metadata_store: Optional[Any] = None):
        self.metadata_store = metadata_store

    def make_scheduler(self, seed: int, cluster: Optional[Any] = None) -> Scheduler:
        return self._cluster_scheduler(VirtualClock(), seed, cluster)

    def make_metadata_device(self, spec: StackSpec, scheduler: Scheduler) -> Any:
        from repro.core.metadata.device import MemoryMetadataDevice

        cluster = spec.cluster
        device = MemoryMetadataDevice(
            scheduler,
            store=self.metadata_store,
            latency=cluster.metadata_latency if cluster else 0.0,
            bandwidth=cluster.metadata_bandwidth if cluster else 0.0,
        )
        self.metadata_store = device.store
        return device

    def build_hardware(self, spec: StackSpec, scheduler: Scheduler) -> Hardware:
        # Imported here so the assembly layer does not hard-depend on the
        # patsy package when only the on-line world is used.
        from repro.patsy.bus import ScsiBus
        from repro.patsy.diskspec import disk_spec_by_name
        from repro.patsy.simdisk import SimulatedDisk
        from repro.patsy.simdriver import SimulatedDiskDriver

        host = spec.host
        disk_spec = disk_spec_by_name(host.disk_model)
        buses = [
            ScsiBus(
                scheduler,
                name=f"scsi{i}",
                bandwidth=host.bus_bandwidth,
                arbitration_overhead=host.bus_overhead,
            )
            for i in range(spec.num_buses)
        ]
        disks: List[Any] = []
        drivers: List[Any] = []
        for index in range(spec.num_disks):
            bus = buses[spec.bus_for_disk(index)]
            node = spec.node_of_disk(index)
            disk = SimulatedDisk(scheduler, disk_spec, bus, name=f"disk{index}", node=node)
            driver = SimulatedDiskDriver(
                scheduler,
                disk,
                bus,
                name=f"sim-disk{index}",
                io_scheduler=make_io_scheduler(host.io_scheduler),
                node=node,
            )
            disks.append(disk)
            drivers.append(driver)
        return Hardware(drivers=drivers, buses=buses, disks=disks)

    def make_datamover(self, spec: StackSpec) -> DataMover:
        # The simulator cannot perform the buffer copies, so it charges
        # time for them at the host's memory bandwidth.
        return DataMover(charge_time=True, bandwidth=spec.host.memory_copy_bandwidth)


class ClusterBinding(SimulatedBinding):
    """PATSY's helpers for a multi-machine stack, with per-node NIC knobs.

    The plain :class:`SimulatedBinding` already builds the cluster's
    hardware (every node's buses and disks) and its NICs from the spec's
    cluster section; this binding exists for experiments that want
    *heterogeneous* interconnects — e.g. one slow uplink — without growing
    the serialisable :class:`~repro.config.ClusterConfig`.

    Parameters
    ----------
    bandwidth_overrides:
        Mapping of node index to that node's NIC bandwidth (bytes/s);
        nodes not listed keep the spec's ``network_bandwidth``.
    latency_overrides:
        Mapping of node index to that node's one-way latency (seconds).
    """

    def __init__(
        self,
        bandwidth_overrides: Optional[dict] = None,
        latency_overrides: Optional[dict] = None,
        metadata_store: Optional[Any] = None,
    ):
        super().__init__(metadata_store=metadata_store)
        self.bandwidth_overrides = dict(bandwidth_overrides or {})
        self.latency_overrides = dict(latency_overrides or {})

    def build_network(self, spec: StackSpec, scheduler: Scheduler) -> List[Any]:
        nics = super().build_network(spec, scheduler)
        for node, nic in enumerate(nics):
            if node in self.bandwidth_overrides:
                nic.bandwidth = float(self.bandwidth_overrides[node])
            if node in self.latency_overrides:
                nic.latency = float(self.latency_overrides[node])
        return nics


class OnlineBinding(Binding):
    """PFS's helpers: real bytes on memory- or file-backed drivers.

    Parameters
    ----------
    backing:
        ``None`` for in-memory disks, or the path used as the disk
        back-end.  A single-disk spec uses the bare path (compatible with
        existing images); a multi-disk spec stores disk ``i`` in
        ``<backing>.d<i>`` for *every* disk, so a pre-existing single-disk
        image is never silently adopted as one member of a fresh array.
    size_bytes:
        Total capacity, split evenly over the spec's disk complement.
    real_time:
        Use the wall clock instead of virtual time.
    """

    simulated = False
    auto_materialize = False

    def __init__(
        self,
        backing: Optional[Union[str, Path]] = None,
        size_bytes: int = 64 * MB,
        real_time: bool = False,
        metadata_store: Optional[Any] = None,
    ):
        self.backing = None if backing is None else Path(backing)
        self.size_bytes = size_bytes
        self.real_time = real_time
        #: DurableStore for the metadata tier when running in memory (file
        #: backing persists metadata in real files next to the disk image).
        self.metadata_store = metadata_store

    def make_scheduler(self, seed: int, cluster: Optional[Any] = None) -> Scheduler:
        clock = RealClock() if self.real_time else VirtualClock()
        return self._cluster_scheduler(clock, seed, cluster)

    def make_metadata_device(self, spec: StackSpec, scheduler: Scheduler) -> Any:
        from repro.core.metadata.device import FileMetadataDevice, MemoryMetadataDevice

        if self.backing is None:
            device = MemoryMetadataDevice(scheduler, store=self.metadata_store)
            self.metadata_store = device.store
            return device
        return FileMetadataDevice(scheduler, Path(f"{self.backing}.meta"))

    def build_hardware(self, spec: StackSpec, scheduler: Scheduler) -> Hardware:
        from repro.pfs.diskfile import FileBackedDiskDriver, MemoryBackedDiskDriver

        num_disks = spec.num_disks
        per_disk = self.size_bytes // num_disks
        drivers: List[Any] = []
        for index in range(num_disks):
            io_scheduler = make_io_scheduler(spec.host.io_scheduler)
            if self.backing is None:
                drivers.append(
                    MemoryBackedDiskDriver(
                        scheduler,
                        size_bytes=per_disk,
                        name=f"memdisk{index}",
                        io_scheduler=io_scheduler,
                    )
                )
            else:
                path = self.backing if num_disks == 1 else Path(f"{self.backing}.d{index}")
                drivers.append(
                    FileBackedDiskDriver(
                        scheduler,
                        path,
                        size_bytes=per_disk,
                        name=f"filedisk{index}",
                        io_scheduler=io_scheduler,
                    )
                )
        return Hardware(drivers=drivers)

    def make_datamover(self, spec: StackSpec) -> DataMover:
        # Real copies happen in real code; virtual time charges nothing.
        return DataMover(charge_time=False)
