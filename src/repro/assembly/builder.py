"""``build_stack``: the one place a storage stack is assembled.

Both instantiations of the framework — the PATSY simulator and the Pegasus
file system — used to hand-assemble their component stacks in their
constructors, and the two copies drifted (PFS never gained the multi-volume
array).  This builder is now the only assembly path: a world-independent
:class:`~repro.assembly.spec.StackSpec` plus a world-picking
:class:`~repro.assembly.bindings.Binding` yields a fully wired
:class:`StorageStack`, and the two front-ends are thin facades over it.

The construction order below is load-bearing: scheduler interactions during
assembly (thread spawns, RNG wiring) must be identical across worlds and
identical to the historical order, so that a one-volume array stays
byte-identical to the legacy single-volume assembly (pinned by
``tests/test_array.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Union

from repro.assembly.bindings import Binding, Hardware
from repro.assembly.registry import registry
from repro.assembly.spec import StackSpec
from repro.core.cache import BlockCache
from repro.core.client import AbstractClientInterface
from repro.core.datamover import DataMover
from repro.core.filesystem import FileSystem
from repro.core.flush import FlushPolicy, ShardedFlushPolicy, make_flush_policy
from repro.core.scheduler import Scheduler
from repro.core.storage.array import (
    PlacementPolicy,
    RoutedLayout,
    ShardedCache,
    VolumeSet,
    make_placement_policy,
)
from repro.core.storage.cleaner import CleanerDaemon, CleanerSet, make_cleaner
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import Volume

# Imported for their registry side effects: the built-in layouts register
# themselves under the "layout" kind when their module loads (lfs does so
# via the import above).
import repro.core.storage.ffs  # noqa: E402,F401  (registers "ffs")

__all__ = ["StorageStack", "build_stack"]


def _route_to_shard_zero(file_id: int, block_no: int) -> int:
    """Cache router for the "unified" shard policy: one cache, N volumes."""
    return 0


@dataclass
class StorageStack:
    """Everything :func:`build_stack` assembled, ready to mount.

    The same shape comes back for both worlds; the only differences are the
    hardware lists (buses/disks are simulator-only) and what the components
    were parameterised with (``with_data``, clocks, data movers).
    """

    spec: StackSpec
    binding: Binding
    scheduler: Scheduler
    #: simulated SCSI buses (empty for the on-line world).
    buses: List[Any]
    #: simulated disk mechanisms (empty for the on-line world).
    disks: List[Any]
    #: one disk driver per disk of the spec's complement.
    drivers: List[Any]
    #: a Volume, or a VolumeSet for an array stack.
    volume: Union[Volume, VolumeSet]
    #: a single layout, or a RoutedLayout over per-volume sub-layouts.
    layout: Any
    #: a BlockCache, or a ShardedCache for an array stack.
    cache: Union[BlockCache, ShardedCache]
    datamover: DataMover
    flush_policy: FlushPolicy
    #: a CleanerDaemon, a CleanerSet (array of LFS volumes), or None.
    cleaner: Optional[Union[CleanerDaemon, CleanerSet]]
    #: the placement policy (array stacks only).
    placement: Optional[PlacementPolicy]
    fs: FileSystem = field(init=False)
    client: AbstractClientInterface = field(init=False)

    def __post_init__(self) -> None:
        self.fs = FileSystem(
            self.scheduler,
            self.cache,
            self.layout,
            self.datamover,
            flush_policy=self.flush_policy,
            cleaner=self.cleaner,
        )
        self.client = AbstractClientInterface(
            self.fs, auto_materialize=self.binding.auto_materialize
        )


def _build_layout(
    spec: StackSpec,
    scheduler: Scheduler,
    volume: Volume,
    simulated: bool,
    seed: int,
    inode_base: int = 0,
    inode_stride: int = 1,
):
    """One storage layout over one volume (a whole single-volume system,
    or member ``inode_base`` of an ``inode_stride``-volume array), created
    through the "layout" component registry."""
    return registry.create(
        "layout",
        spec.layout.kind,
        scheduler,
        volume,
        block_size=spec.cache.block_size,
        simulated=simulated,
        seed=seed,
        layout_config=spec.layout,
        inode_base=inode_base,
        inode_stride=inode_stride,
    )


def _make_cleaner_daemon(
    spec: StackSpec, scheduler: Scheduler, layout: LogStructuredLayout
) -> CleanerDaemon:
    return CleanerDaemon(
        scheduler,
        layout,
        make_cleaner(spec.layout.cleaner_policy, spec.layout.cleaner_age_scale),
        low_water=spec.layout.cleaner_low_water,
        high_water=spec.layout.cleaner_high_water,
    )


def build_stack(
    spec: StackSpec,
    binding: Binding,
    scheduler: Optional[Scheduler] = None,
) -> StorageStack:
    """Assemble a full storage stack from a spec and a binding.

    ``scheduler`` lets a caller share an existing scheduler (e.g. to embed
    a stack in a larger simulation); by default the binding creates the
    world's own (virtual- or real-clocked) scheduler from ``spec.seed``.
    """
    if scheduler is None:
        scheduler = binding.make_scheduler(spec.seed)
    hardware: Hardware = binding.build_hardware(spec, scheduler)
    drivers = hardware.drivers

    array = spec.array
    simulated = binding.simulated
    with_data = binding.with_data
    placement: Optional[PlacementPolicy] = None
    cleaner: Optional[Union[CleanerDaemon, CleanerSet]] = None

    if array is None:
        volume: Union[Volume, VolumeSet] = Volume(
            drivers, block_size=spec.cache.block_size
        )
        layout = _build_layout(spec, scheduler, volume, simulated, spec.seed)
        cache: Union[BlockCache, ShardedCache] = BlockCache(
            scheduler, spec.cache, with_data=with_data
        )
        datamover = binding.make_datamover(spec)
        flush_policy: FlushPolicy = make_flush_policy(spec.flush)
        if isinstance(layout, LogStructuredLayout):
            cleaner = _make_cleaner_daemon(spec, scheduler, layout)
    else:
        placement = make_placement_policy(
            array.placement, array.volumes, stripe_unit=array.stripe_unit_blocks
        )
        volumes = [
            Volume(
                [drivers[i] for i in array.disks_of_volume(v)],
                block_size=spec.cache.block_size,
            )
            for v in range(array.volumes)
        ]
        volume = VolumeSet(volumes)
        sublayouts = [
            _build_layout(
                spec,
                scheduler,
                volumes[v],
                simulated,
                spec.seed + v,
                inode_base=v,
                inode_stride=array.volumes,
            )
            for v in range(array.volumes)
        ]
        layout = RoutedLayout(
            scheduler,
            volume,
            sublayouts,
            placement,
            block_size=spec.cache.block_size,
            seed=spec.seed,
        )
        if array.shard == "per-volume":
            shard_config = replace(
                spec.cache,
                size_bytes=max(
                    spec.cache.size_bytes // array.volumes, spec.cache.block_size
                ),
            )
            shards = [
                BlockCache(scheduler, shard_config, with_data=with_data)
                for _ in range(array.volumes)
            ]
            router = placement.volume_for_block
        else:  # "unified": one cache over all volumes
            shards = [BlockCache(scheduler, spec.cache, with_data=with_data)]
            router = _route_to_shard_zero
        cache = ShardedCache(shards, router)
        datamover = binding.make_datamover(spec)
        flush_policy = ShardedFlushPolicy(
            spec.flush,
            high_water=array.governor_high_water,
            low_water=array.governor_low_water,
            check_interval=array.governor_interval,
        )
        lfs_daemons = [
            _make_cleaner_daemon(spec, scheduler, sub)
            for sub in sublayouts
            if isinstance(sub, LogStructuredLayout)
        ]
        if lfs_daemons:
            cleaner = CleanerSet(lfs_daemons)

    return StorageStack(
        spec=spec,
        binding=binding,
        scheduler=scheduler,
        buses=hardware.buses,
        disks=hardware.disks,
        drivers=drivers,
        volume=volume,
        layout=layout,
        cache=cache,
        datamover=datamover,
        flush_policy=flush_policy,
        cleaner=cleaner,
        placement=placement,
    )
