"""``build_stack``: the one place a storage stack is assembled.

Both instantiations of the framework — the PATSY simulator and the Pegasus
file system — used to hand-assemble their component stacks in their
constructors, and the two copies drifted (PFS never gained the multi-volume
array).  This builder is now the only assembly path: a world-independent
:class:`~repro.assembly.spec.StackSpec` plus a world-picking
:class:`~repro.assembly.bindings.Binding` yields a fully wired
:class:`StorageStack`, and the two front-ends are thin facades over it.

The multi-volume branch covers both the single-machine array and the
multi-machine cluster: a cluster is the same per-node sub-stack (volumes,
layouts, cache shards, flush daemons) built once per node, with every
non-front-end node's volumes wrapped in a
:class:`~repro.core.cluster.remote.RemoteVolume` so their block I/O crosses
the simulated network, and a
:class:`~repro.core.cluster.placement.ClusterPlacement` routing tier on top.

The construction order below is load-bearing: scheduler interactions during
assembly (thread spawns, RNG wiring) must be identical across worlds and
identical to the historical order, so that a one-volume array stays
byte-identical to the legacy single-volume assembly and a one-node cluster
stays byte-identical to the bare array (pinned by ``tests/test_array.py``
and ``tests/test_cluster.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Union

from repro.assembly.bindings import Binding, Hardware
from repro.assembly.registry import registry
from repro.assembly.spec import StackSpec
from repro.core.cache import BlockCache
from repro.core.client import AbstractClientInterface
from repro.core.cluster.node import ClusterNode, ClusterTopology
from repro.core.cluster.placement import ClusterPlacement
from repro.core.cluster.rebalance import ClusterRebalancer
from repro.core.cluster.remote import RemoteVolume
from repro.core.datamover import DataMover
from repro.core.filesystem import FileSystem
from repro.core.flush import FlushPolicy, ShardedFlushPolicy, make_flush_policy
from repro.core.scheduler import Scheduler
from repro.core.storage.array import (
    PlacementPolicy,
    RoutedLayout,
    ShardedCache,
    VolumeSet,
    make_placement_policy,
)
from repro.core.storage.cleaner import CleanerDaemon, CleanerSet, make_cleaner
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import LocalVolume, Volume
from repro.errors import ConfigurationError

# Imported for their registry side effects: the built-in layouts register
# themselves under the "layout" kind when their module loads (lfs does so
# via the import above).
import repro.core.storage.ffs  # noqa: E402,F401  (registers "ffs")

__all__ = ["StorageStack", "build_stack"]


def _route_to_shard_zero(file_id: int, block_no: int) -> int:
    """Cache router for the "unified" shard policy: one cache, N volumes."""
    return 0


@dataclass
class StorageStack:
    """Everything :func:`build_stack` assembled, ready to mount.

    The same shape comes back for both worlds; the only differences are the
    hardware lists (buses/disks are simulator-only) and what the components
    were parameterised with (``with_data``, clocks, data movers).
    """

    spec: StackSpec
    binding: Binding
    scheduler: Scheduler
    #: simulated SCSI buses (empty for the on-line world).
    buses: List[Any]
    #: simulated disk mechanisms (empty for the on-line world).
    disks: List[Any]
    #: one disk driver per disk of the spec's complement.
    drivers: List[Any]
    #: a Volume, or a VolumeSet for an array/cluster stack.
    volume: Volume
    #: a single layout, or a RoutedLayout over per-volume sub-layouts.
    layout: Any
    #: a BlockCache, or a ShardedCache for an array/cluster stack.
    cache: Union[BlockCache, ShardedCache]
    datamover: DataMover
    flush_policy: FlushPolicy
    #: a CleanerDaemon, a CleanerSet (array of LFS volumes), or None.
    cleaner: Optional[Union[CleanerDaemon, CleanerSet]]
    #: the placement policy (array/cluster stacks only).
    placement: Optional[PlacementPolicy]
    #: the cluster topology (multi-machine stacks only).
    cluster: Optional[ClusterTopology] = None
    #: the durable metadata tier (cluster stacks with ``metadata=True``).
    metadata: Optional[Any] = None
    #: crash-injection hooks threaded through the stack (tests only).
    crashpoints: Optional[Any] = None
    fs: FileSystem = field(init=False)
    client: AbstractClientInterface = field(init=False)

    def __post_init__(self) -> None:
        self.fs = FileSystem(
            self.scheduler,
            self.cache,
            self.layout,
            self.datamover,
            flush_policy=self.flush_policy,
            cleaner=self.cleaner,
            metadata=self.metadata,
        )
        self.client = AbstractClientInterface(
            self.fs, auto_materialize=self.binding.auto_materialize
        )
        # The skew monitor exists only for real multi-node clusters with
        # rebalancing enabled; a one-node cluster spawns nothing, keeping
        # it byte-identical to the bare array assembly.
        cluster_config = self.spec.cluster
        if (
            self.cluster is not None
            and cluster_config is not None
            and cluster_config.nodes > 1
            and cluster_config.rebalance
        ):
            rebalancer = ClusterRebalancer(
                self.fs,
                self.cluster.placement,
                cluster_config,
                metadata=self.metadata,
                crashpoints=self.crashpoints,
            )
            self.cluster.rebalancer = rebalancer
            rebalancer.start()
        # The repair loop exists only for replicated clusters (replicas=0
        # spawns nothing — the byte-identity pin against the pre-replication
        # stack).
        if (
            self.cluster is not None
            and cluster_config is not None
            and cluster_config.replicas > 0
            and self.cluster.replication is not None
            and cluster_config.repair
        ):
            from repro.core.cluster.replication import ReplicationRepairer

            repairer = ReplicationRepairer(
                self.scheduler,
                self.layout,
                self.cluster.placement,
                self.cluster.replication,
                self.cluster.faults,
                self.cache,
                fs=self.fs,
                metadata=self.metadata,
                interval=cluster_config.repair_interval,
                workers=cluster_config.repair_workers,
                crashpoints=self.crashpoints,
            )
            self.cluster.repairer = repairer
            self.scheduler.spawn(
                repairer.run, name="replication-repairer", daemon=True, node=0
            )


def _build_layout(
    spec: StackSpec,
    scheduler: Scheduler,
    volume: Volume,
    simulated: bool,
    seed: int,
    inode_base: int = 0,
    inode_stride: int = 1,
    crashpoints: Optional[Any] = None,
):
    """One storage layout over one volume (a whole single-volume system,
    or member ``inode_base`` of an ``inode_stride``-volume array), created
    through the "layout" component registry."""
    layout = registry.create(
        "layout",
        spec.layout.kind,
        scheduler,
        volume,
        block_size=spec.cache.block_size,
        simulated=simulated,
        seed=seed,
        layout_config=spec.layout,
        inode_base=inode_base,
        inode_stride=inode_stride,
    )
    if crashpoints is not None and isinstance(layout, LogStructuredLayout):
        # The recovery harness crashes inside the LFS index/summary write.
        layout.crashpoints = crashpoints
    return layout


def _make_cleaner_daemon(
    spec: StackSpec, scheduler: Scheduler, layout: LogStructuredLayout, node: int = 0
) -> CleanerDaemon:
    return CleanerDaemon(
        scheduler,
        layout,
        make_cleaner(spec.layout.cleaner_policy, spec.layout.cleaner_age_scale),
        low_water=spec.layout.cleaner_low_water,
        high_water=spec.layout.cleaner_high_water,
        node=node,
    )


def build_stack(
    spec: StackSpec,
    binding: Binding,
    scheduler: Optional[Scheduler] = None,
    crashpoints: Optional[Any] = None,
) -> StorageStack:
    """Assemble a full storage stack from a spec and a binding.

    ``scheduler`` lets a caller share an existing scheduler (e.g. to embed
    a stack in a larger simulation); by default the binding creates the
    world's own (virtual- or real-clocked) scheduler from ``spec.seed``.
    ``crashpoints`` threads crash-injection hooks through the metadata tier
    and the rebalancer (the recovery test harness).
    """
    if scheduler is None:
        scheduler = binding.make_scheduler(spec.seed, spec.cluster)
    if crashpoints is not None:
        crashpoints.bind(scheduler)
    hardware: Hardware = binding.build_hardware(spec, scheduler)
    drivers = hardware.drivers

    array = spec.array
    cluster = spec.cluster
    simulated = binding.simulated
    with_data = binding.with_data
    placement: Optional[PlacementPolicy] = None
    cleaner: Optional[Union[CleanerDaemon, CleanerSet]] = None
    topology: Optional[ClusterTopology] = None
    metadata: Optional[Any] = None

    if array is None and cluster is None:
        volume: Volume = LocalVolume(drivers, block_size=spec.cache.block_size)
        layout = _build_layout(
            spec, scheduler, volume, simulated, spec.seed, crashpoints=crashpoints
        )
        cache: Union[BlockCache, ShardedCache] = BlockCache(
            scheduler, spec.cache, with_data=with_data
        )
        datamover = binding.make_datamover(spec)
        flush_policy: FlushPolicy = make_flush_policy(spec.flush)
        if isinstance(layout, LogStructuredLayout):
            cleaner = _make_cleaner_daemon(spec, scheduler, layout)
    else:
        total_volumes = spec.num_volumes
        # The per-node shape; synthesised defaults when no array section
        # is configured, so cluster-without-array stacks track ArrayConfig's
        # dataclass defaults from one place.
        node_array = spec.effective_array
        placement = make_placement_policy(
            node_array.placement,
            total_volumes,
            stripe_unit=node_array.stripe_unit_blocks,
        )
        if cluster is not None:
            if hasattr(placement, "bind_cluster"):
                # Node-affine policies resolve the creator's node from the
                # scheduler's current thread at allocation time.
                def _creator_node(scheduler: Scheduler = scheduler) -> int:
                    current = scheduler.current_thread
                    return current.node if current is not None else 0

                placement.bind_cluster(spec.volumes_per_node, _creator_node)
            placement = ClusterPlacement(
                placement,
                cluster.nodes,
                spec.volumes_per_node,
                replicas=cluster.replicas,
            )
        nics = hardware.nics or binding.build_network(spec, scheduler)
        volumes: List[Volume] = []
        remote_volumes: dict = {}
        for v in range(total_volumes):
            local = LocalVolume(
                [drivers[i] for i in spec.disks_of_volume(v)],
                block_size=spec.cache.block_size,
            )
            node = spec.node_of_volume(v)
            if nics and (node != 0 or cluster is not None and cluster.client_entry == "home"):
                # Node-aware wrapper: accesses from the owner's own threads
                # (daemons, homed clients) stay off the network; foreign
                # accesses cross the accessor's NIC out and the owner's back.
                # Under the default front-end entry, node-0 volumes stay bare
                # LocalVolumes — node 0 is where every client runs.
                assert cluster is not None
                remote = RemoteVolume(
                    local,
                    local_nic=nics[0],
                    remote_nic=nics[node],
                    request_bytes=cluster.request_bytes,
                    scheduler=scheduler,
                    node=node,
                    nics=nics,
                )
                remote_volumes[v] = remote
                volumes.append(remote)
            else:
                volumes.append(local)
        volume = VolumeSet(volumes)
        sublayouts = [
            _build_layout(
                spec,
                scheduler,
                volumes[v],
                simulated,
                spec.seed + v,
                inode_base=v,
                inode_stride=total_volumes,
                crashpoints=crashpoints,
            )
            for v in range(total_volumes)
        ]
        layout = RoutedLayout(
            scheduler,
            volume,
            sublayouts,
            placement,
            block_size=spec.cache.block_size,
            seed=spec.seed,
        )
        if node_array.shard == "per-volume":
            shard_config = replace(
                spec.cache,
                size_bytes=max(
                    spec.cache.size_bytes // total_volumes, spec.cache.block_size
                ),
            )
            shards = [
                BlockCache(scheduler, shard_config, with_data=with_data)
                for _ in range(total_volumes)
            ]
            router = placement.volume_for_block
        else:  # "unified": one cache over all volumes
            shards = [BlockCache(scheduler, spec.cache, with_data=with_data)]
            router = _route_to_shard_zero
        cache = ShardedCache(shards, router)
        datamover = binding.make_datamover(spec)
        flush_policy = ShardedFlushPolicy(
            spec.flush,
            high_water=node_array.governor_high_water,
            low_water=node_array.governor_low_water,
            check_interval=node_array.governor_interval,
        )
        if cluster is not None and cluster.nodes > 1:
            # Home each cache shard's flush daemons (and the governors) on
            # the node that owns the shard's volume(s).
            if len(shards) == total_volumes:
                flush_policy.shard_nodes = [
                    spec.node_of_volume(v) for v in range(total_volumes)
                ]
            else:
                flush_policy.shard_nodes = [0]
        lfs_daemons = [
            _make_cleaner_daemon(spec, scheduler, sublayouts[v], node=spec.node_of_volume(v))
            for v in range(total_volumes)
            if isinstance(sublayouts[v], LogStructuredLayout)
        ]
        if lfs_daemons:
            cleaner = CleanerSet(lfs_daemons)
        if cluster is not None:
            assert isinstance(placement, ClusterPlacement)
            nodes = []
            vpn = spec.volumes_per_node
            for n in range(cluster.nodes):
                vol_indices = list(range(n * vpn, (n + 1) * vpn))
                node_disks = [
                    drivers[i]
                    for v in vol_indices
                    for i in spec.disks_of_volume(v)
                ]
                nodes.append(
                    ClusterNode(
                        index=n,
                        nic=nics[n] if nics else None,
                        volume_indices=vol_indices,
                        drivers=node_disks,
                        volumes=[volumes[v] for v in vol_indices],
                        sublayouts=[sublayouts[v] for v in vol_indices],
                        cache_shards=(
                            [shards[v] for v in vol_indices]
                            if len(shards) == total_volumes
                            else []
                        ),
                    )
                )
            topology = ClusterTopology(
                nodes=nodes,
                nics=nics,
                placement=placement,
                remote_volumes=remote_volumes,
            )
            # Every cluster stack carries a fault board; it stays inert (one
            # attribute check per I/O) until a schedule applies an event.
            from repro.core.faults import FaultState

            faults = FaultState(volumes_per_node=spec.volumes_per_node)
            topology.faults = faults
            layout.faults = faults
            if cluster.replicas > 0:
                from repro.core.cluster.replication import ReplicaManager

                if any(not hasattr(sub, "inode_map") for sub in sublayouts):
                    raise ConfigurationError(
                        "replication needs sub-layouts that can host foreign "
                        "inode numbers (LFS); slot-mapped layouts cannot hold "
                        "shadow inodes"
                    )
                layout.replication = ReplicaManager(scheduler, layout, placement, faults)
                topology.replication = layout.replication
            if cluster.metadata:
                # Imported here for their registry side effects ("wal" and
                # "manifest" kinds) and to keep the metadata package out of
                # non-cluster assemblies entirely.
                import repro.core.metadata.manifest  # noqa: F401
                import repro.core.metadata.wal  # noqa: F401
                from repro.core.metadata.tier import MetadataTier

                device = binding.make_metadata_device(spec, scheduler)
                wal = registry.create(
                    "wal",
                    cluster.wal_kind,
                    scheduler,
                    device,
                    commit_records=cluster.wal_commit_records,
                    commit_bytes=cluster.wal_commit_bytes,
                    commit_interval=cluster.wal_commit_interval,
                    group_commit=cluster.wal_group_commit,
                    crashpoints=crashpoints,
                )
                manifest_store = registry.create(
                    "manifest",
                    cluster.manifest_kind,
                    scheduler,
                    device,
                    crashpoints=crashpoints,
                )
                metadata = MetadataTier(
                    scheduler,
                    placement,
                    wal,
                    manifest_store,
                    cluster,
                    crashpoints=crashpoints,
                )
                topology.metadata = metadata
                if topology.replication is not None:
                    # Creation-time replica re-homing (dead default volume
                    # at first write) journals RSETs like a repair does.
                    topology.replication.metadata = metadata

    return StorageStack(
        spec=spec,
        binding=binding,
        scheduler=scheduler,
        buses=hardware.buses,
        disks=hardware.disks,
        drivers=drivers,
        volume=volume,
        layout=layout,
        cache=cache,
        datamover=datamover,
        flush_policy=flush_policy,
        cleaner=cleaner,
        placement=placement,
        cluster=topology,
        metadata=metadata,
        crashpoints=crashpoints,
    )
